"""Exact optimal pricing oracles for tiny instances.

Finding the revenue-maximizing item pricing is NP-hard (the k-hypergraph
pricing problem; see Section 2 of the paper), and the optimal monotone
subadditive pricing may take exponential space. Neither is usable at market
scale — but at toy scale both are computable exactly, which makes them
invaluable as *ground truth*:

- they turn approximation claims into checkable inequalities
  (``heuristic <= exact item OPT <= exact subadditive OPT <= sum of
  valuations``), used heavily by the property-based tests, and
- they quantify, on small instances, how much revenue the succinct families
  of Section 3.4 leave on the table relative to the unrestricted optimum.

Both oracles enumerate the *sold set* ``F`` (which buyers end up purchasing)
and solve one LP per candidate ``F``. Correctness rests on a simple exchange
argument, spelled out in :func:`exact_optimal_item_pricing`: the optimum's
own sold set appears in the enumeration, and for that ``F`` the LP revenue is
at least the optimum while every LP solution's realized revenue is at most
the optimum.

Running time is ``O(2^m)`` LPs (and the subadditive oracle additionally uses
``2^n`` variables per LP), so both classes refuse instances above small,
explicit caps rather than silently hanging.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import combinations

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.hypergraph import PricingInstance
from repro.core.pricing import Bundle, ItemPricing, PricingFunction
from repro.core.revenue import PRICE_TOLERANCE, compute_revenue
from repro.exceptions import LPError, PricingError
from repro.lp import LinExpr, LPModel, Sense


class TabularSetPricing(PricingFunction):
    """A pricing function stored explicitly as a table over item subsets.

    This is the exponential-size representation that Section 3.4 of the paper
    argues *against* for production use; it exists here purely as the output
    of the exact subadditive oracle. The table covers every subset of
    ``universe`` (the items the oracle saw); bundles containing items outside
    the universe are priced by their restriction to it, which keeps the
    function monotone and subadditive over the full item space.
    """

    family = "tabular"

    def __init__(self, universe: Sequence[int], table: dict[frozenset[int], float]):
        self.universe = frozenset(universe)
        expected = 2 ** len(self.universe)
        if len(table) != expected:
            raise PricingError(
                f"table has {len(table)} entries, expected {expected} "
                f"(every subset of the universe)"
            )
        self.table = dict(table)

    def price(self, bundle: Bundle) -> float:
        return self.table[frozenset(bundle) & self.universe]

    def description(self) -> str:
        return f"tabular(|universe|={len(self.universe)})"


def _sold_set_candidates(
    edges: Sequence[frozenset[int]],
    valuations: np.ndarray,
    eligible: Sequence[int],
) -> Iterable[tuple[int, ...]]:
    """Enumerate candidate sold sets, pruning dominated ones.

    If two buyers want the *same* bundle, any pricing that sells to the
    cheaper buyer also sells to the more expensive one (identical bundles get
    identical prices). A candidate ``F`` containing the cheaper buyer but not
    the more expensive one is therefore dominated by ``F + {expensive}``:
    same feasible region, strictly larger objective. Skip it.
    """
    eligible = list(eligible)
    for size in range(1, len(eligible) + 1):
        for subset in combinations(eligible, size):
            chosen = set(subset)
            dominated = False
            for index in subset:
                for other in eligible:
                    if (
                        other not in chosen
                        and edges[other] == edges[index]
                        and valuations[other] >= valuations[index]
                    ):
                        dominated = True
                        break
                if dominated:
                    break
            if not dominated:
                yield subset


class ExactItemPricing(PricingAlgorithm):
    """Exact optimal additive (item) pricing by sold-set enumeration.

    For every candidate sold set ``F`` solve

        maximize   sum_{e in F} sum_{j in e} w_j
        subject to sum_{j in e} w_j <= v_e    for all e in F,   w >= 0

    and keep the realized-revenue maximum. Exponential in ``m``; refuses
    instances with more than ``max_edges`` non-empty positive-value edges.
    """

    name = "exact-item"

    def __init__(self, max_edges: int = 12):
        if max_edges < 1:
            raise PricingError("max_edges must be at least 1")
        self.max_edges = max_edges

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        edges = instance.edges
        valuations = instance.valuations
        # Empty edges always cost 0 under item pricing, and zero-value edges
        # can only contribute revenue 0: neither affects the optimum.
        eligible = [
            index
            for index in range(instance.num_edges)
            if edges[index] and valuations[index] > 0
        ]
        if len(eligible) > self.max_edges:
            raise PricingError(
                f"exact item pricing enumerates 2^m sold sets; instance has "
                f"m={len(eligible)} eligible edges > max_edges={self.max_edges}"
            )

        best_weights = np.zeros(instance.num_items)
        best_revenue = 0.0
        programs = 0
        for subset in _sold_set_candidates(edges, valuations, eligible):
            weights = self._solve_sold_set(instance, subset)
            if weights is None:
                continue
            programs += 1
            revenue = compute_revenue(ItemPricing(weights), instance).revenue
            if revenue > best_revenue:
                best_revenue = revenue
                best_weights = weights
        return ItemPricing(best_weights), {
            "num_programs": programs,
            "exact_revenue": best_revenue,
        }

    def _solve_sold_set(
        self, instance: PricingInstance, sold: Sequence[int]
    ) -> np.ndarray | None:
        items = sorted({item for index in sold for item in instance.edges[index]})
        model = LPModel(name="exact-item", sense=Sense.MAXIMIZE)
        weight_vars = {item: model.add_variable(f"w{item}") for item in items}
        objective_terms = []
        for index in sold:
            bundle_price = LinExpr.sum_of(
                [weight_vars[item] for item in instance.edges[index]]
            )
            model.add_constraint(bundle_price <= float(instance.valuations[index]))
            objective_terms.append(bundle_price)
        model.set_objective(LinExpr.sum_of(objective_terms))
        try:
            solution = model.solve()
        except LPError:
            return None
        weights = np.zeros(instance.num_items)
        for item, variable in weight_vars.items():
            weights[item] = max(0.0, solution.value(variable))
        return weights


class ExactSubadditivePricing(PricingAlgorithm):
    """Exact optimal monotone subadditive pricing for tiny instances.

    One LP per candidate sold set ``F``, with a variable ``f_T`` for every
    subset ``T`` of the used items:

        maximize   sum_{e in F} f_{e}
        subject to f_T <= f_{T + j}        (monotonicity)
                   f_{A u B} <= f_A + f_B  for disjoint non-empty A, B
                   f_{e} <= v_e            for e in F,     f >= 0

    Monotonicity plus *disjoint* subadditivity implies full subadditivity:
    for overlapping ``A, B``, ``f(A u B) <= f(A) + f(B \\ A) <= f(A) + f(B)``.
    Unlike item pricing, the empty bundle may carry a positive price (uniform
    bundle pricing does exactly that), so empty edges participate.

    Exponential in both ``m`` and ``n``; refuses instances above the caps.
    """

    name = "exact-subadditive"

    def __init__(self, max_edges: int = 10, max_items: int = 8):
        if max_edges < 1 or max_items < 0:
            raise PricingError("caps must be positive")
        self.max_edges = max_edges
        self.max_items = max_items

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        edges = instance.edges
        valuations = instance.valuations
        eligible = [
            index for index in range(instance.num_edges) if valuations[index] > 0
        ]
        used_items = sorted({item for index in eligible for item in edges[index]})
        if len(eligible) > self.max_edges:
            raise PricingError(
                f"exact subadditive pricing enumerates 2^m sold sets; "
                f"m={len(eligible)} > max_edges={self.max_edges}"
            )
        if len(used_items) > self.max_items:
            raise PricingError(
                f"exact subadditive pricing uses 2^n LP variables; "
                f"n={len(used_items)} > max_items={self.max_items}"
            )

        best_table = {
            frozenset(subset): 0.0 for subset in _powerset(used_items)
        }
        best_revenue = 0.0
        programs = 0
        for subset in _sold_set_candidates(edges, valuations, eligible):
            table = self._solve_sold_set(instance, subset, used_items)
            if table is None:
                continue
            programs += 1
            pricing = TabularSetPricing(used_items, table)
            revenue = compute_revenue(pricing, instance).revenue
            if revenue > best_revenue:
                best_revenue = revenue
                best_table = table
        return TabularSetPricing(used_items, best_table), {
            "num_programs": programs,
            "exact_revenue": best_revenue,
        }

    def _solve_sold_set(
        self,
        instance: PricingInstance,
        sold: Sequence[int],
        used_items: Sequence[int],
    ) -> dict[frozenset[int], float] | None:
        subsets = [frozenset(subset) for subset in _powerset(used_items)]
        model = LPModel(name="exact-subadditive", sense=Sense.MAXIMIZE)
        f = {subset: model.add_variable(f"f{sorted(subset)}") for subset in subsets}

        for subset in subsets:
            for item in used_items:
                if item not in subset:
                    model.add_constraint(
                        LinExpr.of(f[subset]) <= f[subset | {item}]
                    )
        for first, second in _disjoint_pairs(subsets):
            model.add_constraint(
                LinExpr.of(f[first | second]) <= f[first] + f[second]
            )

        objective_terms = []
        for index in sold:
            bundle = frozenset(instance.edges[index])
            model.add_constraint(
                LinExpr.of(f[bundle]) <= float(instance.valuations[index])
            )
            objective_terms.append(LinExpr.of(f[bundle]))
        model.set_objective(LinExpr.sum_of(objective_terms))
        try:
            solution = model.solve()
        except LPError:
            return None
        return {subset: max(0.0, solution.value(var)) for subset, var in f.items()}


def _powerset(items: Sequence[int]) -> Iterable[tuple[int, ...]]:
    """All subsets of ``items``, smallest first (includes the empty tuple)."""
    for size in range(len(items) + 1):
        yield from combinations(items, size)


def _disjoint_pairs(
    subsets: Sequence[frozenset[int]],
) -> Iterable[tuple[frozenset[int], frozenset[int]]]:
    """Unordered pairs of disjoint non-empty subsets."""
    nonempty = [subset for subset in subsets if subset]
    for i, first in enumerate(nonempty):
        for second in nonempty[i:]:
            if not (first & second):
                yield first, second


def exact_optimal_item_pricing(
    instance: PricingInstance, max_edges: int = 12
) -> tuple[ItemPricing, float]:
    """The revenue-optimal item pricing and its revenue (tiny instances only).

    The enumeration is exact: the true optimum sells some set ``F*`` of
    buyers, and ``LP(F*)`` maximizes exactly the revenue collected from
    ``F*`` subject to the same sale constraints the optimum satisfies — so
    its objective is at least the optimal revenue. Conversely every LP
    solution is a feasible item pricing, so its realized revenue is at most
    the optimum. Taking the realized-revenue maximum over all ``F`` closes
    the sandwich.
    """
    result = ExactItemPricing(max_edges=max_edges).run(instance)
    pricing = result.pricing
    assert isinstance(pricing, ItemPricing)
    return pricing, result.revenue


def exact_optimal_subadditive_revenue(
    instance: PricingInstance, max_edges: int = 10, max_items: int = 8
) -> float:
    """OPT — the best monotone subadditive revenue (tiny instances only).

    This is the quantity the paper's greedy LP (Section 6.1) upper-bounds;
    on instances small enough for this oracle the greedy bound can be
    validated against the exact value.
    """
    algorithm = ExactSubadditivePricing(max_edges=max_edges, max_items=max_items)
    return algorithm.run(instance).revenue


def price_table_is_monotone_subadditive(
    pricing: TabularSetPricing, tolerance: float = PRICE_TOLERANCE
) -> bool:
    """Check monotonicity + subadditivity of a tabular pricing exhaustively."""
    universe = sorted(pricing.universe)
    subsets = [frozenset(subset) for subset in _powerset(universe)]
    for subset in subsets:
        for item in universe:
            if item not in subset:
                grown = subset | {item}
                if pricing.table[subset] > pricing.table[grown] + tolerance:
                    return False
    for first, second in _disjoint_pairs(subsets):
        combined = pricing.table[first | second]
        if combined > pricing.table[first] + pricing.table[second] + tolerance:
            return False
    return True
