"""Figure 4: hyperedge size distributions of the four workloads.

The paper's qualitative shapes: skewed/TPC-H/SSB have most edges tiny with a
long tail (log-scale histograms), while the uniform workload concentrates
around a large mean.
"""

import numpy as np
import pytest

from repro.experiments.figures import figure4_edge_distribution, workload_hypergraph

from benchmarks.conftest import save_artifact


@pytest.mark.parametrize("workload_name", ["skewed", "uniform", "tpch", "ssb"])
def test_fig4_edge_size_distribution(benchmark, workload_name):
    artifact = benchmark.pedantic(
        figure4_edge_distribution, args=(workload_name,), rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    sizes = np.asarray(artifact.data["sizes"])
    assert len(sizes) > 0

    if workload_name == "uniform":
        # Concentrated around the mean: small coefficient of variation.
        assert sizes.std() < 0.5 * sizes.mean()
    else:
        # Skewed: the median is well below the maximum.
        assert np.median(sizes) < 0.25 * sizes.max()


def test_fig4_uniform_edges_overlap_heavily(benchmark):
    _, _, hypergraph = benchmark.pedantic(
        workload_hypergraph, args=("uniform",), rounds=1, iterations=1
    )
    # High max degree relative to m = heavy overlap (paper: B=400 of m=1000).
    assert hypergraph.max_degree > 0.2 * hypergraph.num_edges
