"""Core pricing abstractions: hypergraphs, pricing functions, revenue, bounds.

This package implements Sections 3–5 of the paper. The central object is a
:class:`PricingInstance` — a hypergraph over the support set together with one
buyer valuation per hyperedge — and the six pricing algorithms live in
:mod:`repro.core.algorithms`.
"""

from repro.core.evaluator import (
    RevenueEvaluator,
    available_revenue_strategies,
    use_strategy,
)
from repro.core.hypergraph import Hypergraph, HypergraphStats, PricingInstance
from repro.core.pricing import (
    ItemPricing,
    PricingFunction,
    UniformBundlePricing,
    XOSPricing,
)
from repro.core.revenue import RevenueReport, compute_revenue
from repro.core.bounds import subadditive_upper_bound, sum_of_valuations

__all__ = [
    "Hypergraph",
    "HypergraphStats",
    "ItemPricing",
    "PricingFunction",
    "PricingInstance",
    "RevenueEvaluator",
    "RevenueReport",
    "UniformBundlePricing",
    "XOSPricing",
    "available_revenue_strategies",
    "compute_revenue",
    "subadditive_upper_bound",
    "sum_of_valuations",
    "use_strategy",
]
