"""Synthetic traffic generation against a pricing service.

Serving-tier behavior — cache hit rates, micro-batch coalescing, tail
latency, overload shedding — only shows up under a realistic *request
stream*, not a workload list. The load generator turns any workload's
queries into such a stream:

- **Zipfian repetition**: request ``i`` asks query ``rank_i`` drawn with
  probability proportional to ``1 / rank^s`` (per-buyer query traffic is
  heavily repeated in practice; repetition is what exercises the canonical
  quote cache).
- **Closed loop**: ``num_clients`` threads each issue their share of
  requests back-to-back — the throughput-oriented mode ("how fast can N
  buyers drain the stream").
- **Open loop**: requests arrive on a Poisson process at ``arrival_rate``
  requests/second regardless of completions — the latency-oriented mode
  (queueing delay shows up in p99 instead of being hidden by back-pressure,
  and overload shows up as shed requests instead of an unbounded queue).

Requests shed by admission control
(:class:`~repro.exceptions.ServiceOverloadError`) are counted separately
from errors — a shed is the service *working as configured* under overload.
Latencies are recorded per request (:mod:`repro.service.metrics`) and
reduced to a :class:`LoadReport` carrying throughput, percentiles, shed
counts, the service's cache/batch counters, and — when the service is
sharded — a per-home-shard latency breakdown. The report is the payload
``BENCH_service.json`` tracks across revisions.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ServiceError, ServiceOverloadError
from repro.service.metrics import LatencySummary, ShardLatencyRecorder


@dataclass(frozen=True)
class LoadProfile:
    """Shape of a synthetic request stream."""

    num_requests: int = 500
    num_clients: int = 4
    zipf_s: float = 1.1
    mode: str = "closed"
    arrival_rate: float | None = None  # requests/second, open loop only
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ServiceError(f"unknown loadgen mode {self.mode!r}")
        if self.num_requests < 1:
            raise ServiceError("num_requests must be >= 1")
        if self.num_clients < 1:
            raise ServiceError("num_clients must be >= 1")
        if self.mode == "open" and not self.arrival_rate:
            raise ServiceError("open-loop load needs an arrival_rate")


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str
    requests: int
    errors: int
    duration_seconds: float
    throughput_rps: float
    latency: LatencySummary
    service: dict = field(default_factory=dict)
    offered_rate_rps: float | None = None
    shed: int = 0
    per_shard: dict | None = None

    @property
    def completed(self) -> int:
        """Requests actually served (offered minus shed minus errors)."""
        return self.requests - self.shed - self.errors

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def as_dict(self) -> dict:
        payload = {
            "mode": self.mode,
            "requests": self.requests,
            "completed": self.completed,
            "errors": self.errors,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "duration_seconds": self.duration_seconds,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency.as_dict(),
            "service": self.service,
        }
        if self.offered_rate_rps is not None:
            payload["offered_rate_rps"] = self.offered_rate_rps
        if self.per_shard is not None:
            payload["per_shard_latency"] = {
                str(shard): summary.as_dict()
                for shard, summary in self.per_shard.items()
            }
        return payload

    def __str__(self) -> str:
        lines = [
            f"{self.mode}-loop load: {self.completed}/{self.requests} requests "
            f"served ({self.shed} shed, {self.errors} errors) in "
            f"{self.duration_seconds:.3f}s = {self.throughput_rps:,.0f} req/s",
            f"latency: {self.latency}",
        ]
        if self.offered_rate_rps is not None:
            lines.append(f"offered rate: {self.offered_rate_rps:,.0f} req/s")
        cache = self.service.get("quote_cache")
        if cache:
            lines.append(
                f"quote cache: hit rate {cache['hit_rate']:.1%} "
                f"({cache['hits']} hits / {cache['misses']} misses, "
                f"{cache['evictions']} evictions)"
            )
        if self.service.get("batches"):
            lines.append(
                f"micro-batches: {self.service['batches']} flushed, "
                f"mean size {self.service['mean_batch_size']:.1f}, "
                f"max {self.service['max_batch_size']}"
            )
        if self.per_shard:
            for shard, summary in self.per_shard.items():
                lines.append(f"shard {shard}: {summary}")
        return "\n".join(lines)


def zipf_schedule(
    num_choices: int, num_requests: int, s: float, rng: np.random.Generator
) -> np.ndarray:
    """Request schedule: ``num_requests`` indices drawn Zipf(s) over ranks.

    Rank ``k`` (0-based) is drawn with probability proportional to
    ``1 / (k + 1) ** s``; ``s = 0`` degenerates to uniform traffic.
    """
    if num_choices < 1:
        raise ServiceError("zipf_schedule needs at least one query to choose")
    weights = 1.0 / np.arange(1, num_choices + 1, dtype=float) ** s
    probabilities = weights / weights.sum()
    return rng.choice(num_choices, size=num_requests, p=probabilities)


def run_load(
    service,
    texts: list[str],
    profile: LoadProfile = LoadProfile(),
) -> LoadReport:
    """Drive ``service.quote`` with a synthetic stream and measure it.

    ``service`` is a :class:`~repro.service.server.PricingService` or a
    :class:`~repro.service.sharding.ShardedPricingService`; for the latter
    the report additionally breaks latency down by home shard (attribution
    happens after the timed run, so it never distorts the measurement).
    """
    rng = np.random.default_rng(profile.seed)
    schedule = zipf_schedule(len(texts), profile.num_requests, profile.zipf_s, rng)
    recorder = ShardLatencyRecorder()
    count_lock = threading.Lock()
    error_count = [0]
    shed_count = [0]

    def issue(index: int) -> None:
        begin = time.perf_counter()
        try:
            service.quote(texts[index])
        except ServiceOverloadError:
            # Admission control working as configured: counted, not timed —
            # a shed's fast-fail latency would flatter the percentiles.
            with count_lock:
                shed_count[0] += 1
            return
        except Exception:
            # Any other failure counts as an errored request — a narrower
            # catch would kill the client thread and silently understate
            # the run. Not timed, for the same reason sheds are not: only
            # *served* requests belong in the percentiles, and
            # latency.count must agree with the report's completed count.
            with count_lock:
                error_count[0] += 1
            return
        recorder.record(index, time.perf_counter() - begin)

    start = time.perf_counter()
    if profile.mode == "closed":
        # Each client drains a round-robin slice of the schedule
        # back-to-back; wall time ends when the last client finishes.
        def client_loop(client: int) -> None:
            for index in schedule[client :: profile.num_clients]:
                issue(int(index))

        threads = [
            threading.Thread(target=client_loop, args=(client,), daemon=True)
            for client in range(profile.num_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        offered = None
    else:
        # Open loop: Poisson arrivals at the offered rate, dispatched to a
        # worker pool; latency includes any queueing behind slow requests.
        gaps = rng.exponential(1.0 / profile.arrival_rate, size=profile.num_requests)
        arrivals = np.cumsum(gaps)
        with ThreadPoolExecutor(max_workers=profile.num_clients) as pool:
            submitted = []
            for position, index in enumerate(schedule):
                due = start + arrivals[position]
                delay = due - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                submitted.append(pool.submit(issue, int(index)))
            for task in submitted:
                task.result()
        offered = float(profile.arrival_rate)
    duration = time.perf_counter() - start

    per_shard = None
    if hasattr(service, "home_shard"):
        # Attribute each sample to its home shard now that the run is over
        # (the plan memo is warm, so this re-derivation is miss-free).
        shard_of_index = {
            index: service.home_shard(texts[index])
            for index in sorted(set(int(i) for i in schedule))
        }
        recorder.relabel(shard_of_index)
        # Idle shards (a narrow working set can leave some without a single
        # request) report the zero summary instead of vanishing.
        per_shard = recorder.by_label(
            expected=range(getattr(service, "num_shards", 0))
        )

    completed = profile.num_requests - shed_count[0] - error_count[0]
    # An HTTPServiceClient has no stats() — its counters live on the far
    # side of the wire (scrape /metrics for them).
    stats = getattr(service, "stats", None)
    return LoadReport(
        mode=profile.mode,
        requests=profile.num_requests,
        errors=error_count[0],
        duration_seconds=duration,
        throughput_rps=completed / duration if duration > 0 else 0.0,
        latency=recorder.summary(),
        service=stats().as_dict() if callable(stats) else {},
        offered_rate_rps=offered,
        shed=shed_count[0],
        per_shard=per_shard,
    )


@dataclass(frozen=True)
class HTTPQuote:
    """A quote as it came over the wire."""

    query_text: str
    price: float
    bundle_size: int


class HTTPServiceClient:
    """Drive a :class:`~repro.service.http.PricingHTTPServer` like a service.

    Exposes the same ``quote(text)`` surface :func:`run_load` drives, so
    the identical zipf stream can be replayed in-process and over real
    sockets and the two reports compared like for like. Each client thread
    keeps one persistent ``http.client.HTTPConnection`` (keep-alive, the
    way a real frontend pools connections); a ``429`` is re-raised as
    :class:`~repro.exceptions.ServiceOverloadError` so admission control
    counts as shed traffic, any other non-200 as
    :class:`~repro.exceptions.ServiceError` (an errored request).
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0):
        self.host = host
        self.port = port
        self.timeout = timeout
        self._local = threading.local()
        self._connections: list[http.client.HTTPConnection] = []
        self._connections_lock = threading.Lock()

    def _connection(self) -> http.client.HTTPConnection:
        connection = getattr(self._local, "connection", None)
        if connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            self._local.connection = connection
            with self._connections_lock:
                self._connections.append(connection)
        return connection

    def request(self, method: str, path: str, payload=None, headers=None):
        """One HTTP round-trip; returns ``(status, parsed-or-raw body)``."""
        connection = self._connection()
        body = None if payload is None else json.dumps(payload).encode()
        all_headers = {"Content-Type": "application/json", **(headers or {})}
        connection.request(method, path, body=body, headers=all_headers)
        response = connection.getresponse()
        raw = response.read()
        content_type = response.getheader("Content-Type", "")
        parsed = json.loads(raw) if "json" in content_type else raw.decode()
        return response.status, parsed

    def quote(self, text: str, buyer: str | None = None) -> HTTPQuote:
        headers = {"X-Buyer": buyer} if buyer else None
        status, payload = self.request(
            "POST", "/quote", {"query": text}, headers=headers
        )
        if status == 429:
            raise ServiceOverloadError(payload.get("error", "shed"))
        if status != 200:
            raise ServiceError(
                f"/quote returned {status}: {payload!r}"
            )
        return HTTPQuote(
            query_text=payload["query"],
            price=float(payload["price"]),
            bundle_size=int(payload.get("bundle_size", 0)),
        )

    def purchase(self, text: str, buyer: str, valuation: float | None = None):
        body = {"query": text, "buyer": buyer}
        if valuation is not None:
            body["valuation"] = valuation
        status, payload = self.request("POST", "/purchase", body)
        if status == 429:
            raise ServiceOverloadError(payload.get("error", "shed"))
        if status != 200:
            raise ServiceError(f"/purchase returned {status}: {payload!r}")
        return payload

    def metrics(self) -> str:
        """The raw Prometheus exposition text from ``/metrics``."""
        status, payload = self.request("GET", "/metrics")
        if status != 200:
            raise ServiceError(f"/metrics returned {status}")
        return payload

    def ready(self) -> bool:
        status, _ = self.request("GET", "/readyz")
        return status == 200

    def close(self) -> None:
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for connection in connections:
            connection.close()

    def __enter__(self) -> "HTTPServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
