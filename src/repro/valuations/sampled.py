"""Structure-independent sampled valuations (Figures 5a / 6a)."""

from __future__ import annotations

import numpy as np

from repro.core.hypergraph import Hypergraph
from repro.exceptions import PricingError
from repro.valuations.base import ValuationModel


class UniformValuations(ValuationModel):
    """``v_e ~ Uniform[1, k]`` i.i.d. across hyperedges."""

    def __init__(self, k: float = 100.0):
        if k < 1:
            raise PricingError("Uniform[1, k] requires k >= 1")
        self.k = float(k)
        self.name = f"uniform[1,{k:g}]"

    def generate(self, hypergraph: Hypergraph, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(1.0, self.k, size=hypergraph.num_edges)


class ZipfValuations(ValuationModel):
    """``v_e ~ Zipf(a)`` i.i.d. — heavy-tailed valuations.

    For exponents ``a < 2`` the distribution has infinite variance and a few
    edges dominate total value, the regime where the paper observes Layering
    performing surprisingly well. ``max_value`` truncates astronomically
    large draws so a single sample cannot overflow float accumulation
    (numpy's sampler already rejects values above ~2^63).
    """

    def __init__(self, a: float = 2.0, max_value: float = 1e9):
        if a <= 1:
            raise PricingError("zipf exponent must be > 1")
        self.a = float(a)
        self.max_value = float(max_value)
        self.name = f"zipf(a={a:g})"

    def generate(self, hypergraph: Hypergraph, rng: np.random.Generator) -> np.ndarray:
        draws = rng.zipf(self.a, size=hypergraph.num_edges).astype(np.float64)
        return np.minimum(draws, self.max_value)
