"""Extension experiment: SAA sample-efficiency for Bayesian posted pricing.

Not a paper figure — the paper assumes exact valuations. This bench measures
how many sampled valuation profiles are needed before the SAA uniform bundle
price matches the distribution-optimal one, and what fraction of the
hindsight (reprice-after-seeing-valuations) revenue an ex-ante price can
capture at all. Series: true expected revenue of the SAA price vs N.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesian import (
    BayesianInstance,
    ExpectedRevenueUBP,
    ExponentialValuation,
    UniformValuation,
    average_realized_revenue,
    saa_uniform_bundle_price,
)
from repro.core.algorithms import UBP
from repro.experiments.report import format_table
from repro.workloads.world import world_workload

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow


SAMPLE_SIZES = (1, 4, 16, 64, 256)


@pytest.fixture(scope="module")
def bayesian_instance() -> BayesianInstance:
    workload = world_workload(scale=0.15, expanded=False)
    support = workload.support(size=300, seed=0, cells_per_instance=2)
    hypergraph = workload.hypergraph(support)
    distributions = []
    for edge in hypergraph.edges:
        size = len(edge)
        if size <= 10:
            distributions.append(UniformValuation(1.0, 4.0 + size))
        else:
            distributions.append(ExponentialValuation(float(max(size, 1)) ** 0.75))
    return BayesianInstance(hypergraph, distributions, name="skewed-bayesian")


def test_saa_sample_efficiency(benchmark, bayesian_instance):
    instance = bayesian_instance
    _, ev_optimal = ExpectedRevenueUBP().run(instance)

    def sweep():
        rows = []
        for num_samples in SAMPLE_SIZES:
            # Average over several seeds so a lucky draw doesn't flatter
            # small N.
            fractions = [
                saa_uniform_bundle_price(
                    instance, num_samples, rng=1000 * seed + num_samples
                ).true_expected_revenue
                / ev_optimal
                for seed in range(5)
            ]
            rows.append((num_samples, float(np.mean(fractions))))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["N (sampled profiles)", "E[revenue] / EV-optimal"], rows
    ))
    fractions = dict(rows)
    # More samples should help overall (first vs last), and a modest budget
    # should already be near-optimal.
    assert fractions[SAMPLE_SIZES[-1]] >= fractions[SAMPLE_SIZES[0]] - 0.02
    assert fractions[256] >= 0.95


def test_ex_ante_vs_hindsight(benchmark, bayesian_instance):
    instance = bayesian_instance
    _, ev_optimal = ExpectedRevenueUBP().run(instance)

    hindsight = benchmark.pedantic(
        average_realized_revenue,
        args=(UBP(), instance, 30),
        kwargs={"rng": 3},
        rounds=1,
        iterations=1,
    )
    fraction = ev_optimal / hindsight
    print(
        f"\nex-ante EV-optimal UBP = {ev_optimal:.1f}, "
        f"hindsight UBP = {hindsight:.1f} "
        f"(ex-ante captures {fraction:.1%})"
    )
    # Hindsight repricing can only help; but an ex-ante price should still
    # capture a meaningful share on this instance.
    assert fraction <= 1.0 + 1e-9
    assert fraction >= 0.3
