"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can catch
everything raised by this package with a single ``except`` clause while still
being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class LPError(ReproError):
    """Base class for errors raised by the linear-programming layer."""


class LPInfeasibleError(LPError):
    """The linear program has no feasible solution."""


class LPUnboundedError(LPError):
    """The linear program is unbounded in the direction of the objective."""


class LPSolverError(LPError):
    """The backend solver failed for a reason other than infeasible/unbounded."""


class SchemaError(ReproError):
    """A relation or database schema was malformed or violated."""


class QueryError(ReproError):
    """A logical query plan is invalid or cannot be evaluated."""


class SQLSyntaxError(QueryError):
    """The SQL text could not be tokenized or parsed."""


class UnsupportedSQLError(QueryError):
    """The SQL text parses but uses a feature outside the supported fragment."""


class SupportError(ReproError):
    """Support-set generation failed (e.g. no perturbable cells)."""


class PricingError(ReproError):
    """A pricing function or pricing algorithm was misused."""


class ArbitrageViolation(PricingError):
    """A pricing function violated monotonicity or subadditivity."""


class WorkloadError(ReproError):
    """A workload/dataset generator received invalid parameters."""


class ExperimentError(ReproError):
    """An experiment configuration is invalid or failed to run."""


class ServiceError(ReproError):
    """The pricing service was misconfigured or refused a request."""


class DeltaError(ReproError):
    """A market delta could not be staged, applied, or cancelled."""


class DeltaValidationError(DeltaError):
    """A staged delta failed validation and must not be applied.

    Raised by the validate stage of the delta log (e.g. a base patch that
    would turn a support instance's delta into a no-op, an out-of-range row
    index, or a retire of an already-retired instance). The delta stays in
    the log in ``rejected`` state; the market is untouched.
    """


class SnapshotError(ReproError):
    """A persisted market-state snapshot could not be read or parsed.

    Raised (naming the offending path) instead of the bare ``KeyError`` /
    ``JSONDecodeError`` / ``OSError`` a truncated or corrupt snapshot file
    would otherwise surface. A failed :meth:`restore` leaves the serving
    tier exactly as it was: the state is parsed in full *before* anything
    is mutated.
    """


class SharedMemoryError(ServiceError):
    """A shared-memory segment could not be created, attached, or mapped.

    Raised by :mod:`repro.service.shm` instead of the bare
    ``FileNotFoundError`` / ``ValueError`` the stdlib surfaces — most
    importantly for the attach-after-unlink race: a worker attaching a
    segment its coordinator already released gets this error (naming the
    segment) rather than a cryptic ENOENT from ``shm_open``.
    """


class WorkerCrashError(ServiceError):
    """A shard's worker process died while a request was in flight.

    Raised on the coordinator when the pipe to a worker breaks or a
    heartbeat goes unanswered. The coordinator's supervision loop re-forks
    the shard from its own (current) partition state and replays the pinned
    bundle seeds, then retries; callers only see this error when the
    replacement worker fails too.
    """


class ServiceOverloadError(ServiceError):
    """A bounded service queue was full and the request was shed.

    Raised by the admission-control path instead of queueing unboundedly
    under open-loop overload; callers are expected to back off and retry.
    The request was *not* partially applied: no quote was cached and no
    transaction was recorded.
    """
