"""Revenue-maximization algorithms (Section 5 of the paper).

Six algorithms, each returning a :class:`~repro.core.algorithms.base.PricingResult`:

- :class:`UBP` — optimal uniform bundle price (folklore sweep),
- :class:`UIP` — optimal *uniform* item price [Guruswami et al. 2005],
- :class:`LPIP` — LP-refined item pricing on top of UIP's thresholds,
- :class:`CIP` — capacity-constrained primal-dual item pricing
  [Cheung & Swamy 2008],
- :class:`Layering` — the paper's fast B-approximation (Algorithm 1),
- :class:`XOSCombiner` — XOS pricing taking the max of LPIP and CIP vectors,

plus :class:`UBPRefine` — the LP post-processing step from Section 6.3 that
upgrades the best uniform bundle price into an item pricing — and several
additions of our own:

- :class:`CoordinateAscent` — exact per-item line search from any seed,
- :class:`GeometricGridItemPricing` — Balcan–Blum oblivious price grid,
- :class:`ExactItemPricing` / :class:`ExactSubadditivePricing` — exponential
  ground-truth oracles for tiny instances (used by tests and gap studies).
"""

from repro.core.algorithms.base import PricingAlgorithm, PricingResult
from repro.core.algorithms.ubp import UBP, UBPRefine
from repro.core.algorithms.uip import UIP
from repro.core.algorithms.lpip import LPIP
from repro.core.algorithms.cip import CIP
from repro.core.algorithms.exact import (
    ExactItemPricing,
    ExactSubadditivePricing,
    TabularSetPricing,
    exact_optimal_item_pricing,
    exact_optimal_subadditive_revenue,
    price_table_is_monotone_subadditive,
)
from repro.core.algorithms.layering import Layering
from repro.core.algorithms.local_search import CoordinateAscent
from repro.core.algorithms.powers import GeometricGridItemPricing
from repro.core.algorithms.xos import XOSCombiner
from repro.core.algorithms.registry import (
    available_algorithms,
    default_algorithm_suite,
    get_algorithm,
    register_algorithm,
)

__all__ = [
    "CIP",
    "CoordinateAscent",
    "ExactItemPricing",
    "ExactSubadditivePricing",
    "GeometricGridItemPricing",
    "Layering",
    "LPIP",
    "PricingAlgorithm",
    "PricingResult",
    "TabularSetPricing",
    "UBP",
    "UBPRefine",
    "UIP",
    "XOSCombiner",
    "available_algorithms",
    "default_algorithm_suite",
    "exact_optimal_item_pricing",
    "exact_optimal_subadditive_revenue",
    "get_algorithm",
    "price_table_is_monotone_subadditive",
    "register_algorithm",
]
