"""Buyer-valuation generative models (Section 6.3 of the paper).

Three families, each a :class:`~repro.valuations.base.ValuationModel`:

- **sampled** (:mod:`repro.valuations.sampled`) — valuations drawn i.i.d.
  from ``Uniform[1, k]`` or a zipfian with exponent ``a``, independent of
  bundle structure,
- **scaled** (:mod:`repro.valuations.scaled`) — valuations correlated with
  hyperedge size: ``Exponential(mean=|e|^k)`` or ``Normal(|e|^k, 10)``,
- **additive** (:mod:`repro.valuations.additive`) — an item-level generative
  model: each item draws a price level from an assignment distribution
  (uniform or binomial) and the edge valuation is the sum over its items.
"""

from repro.valuations.base import ValuationModel
from repro.valuations.sampled import UniformValuations, ZipfValuations
from repro.valuations.scaled import ExponentialScaledValuations, NormalScaledValuations
from repro.valuations.additive import AdditiveValuations

__all__ = [
    "AdditiveValuations",
    "ExponentialScaledValuations",
    "NormalScaledValuations",
    "UniformValuations",
    "ValuationModel",
    "ZipfValuations",
]
