"""Capacity item pricing (CIP) — Cheung & Swamy [2008].

The primal-dual scheme: for a per-item capacity ``k``, solve the fractional
welfare-maximization LP

    max  sum_e v_e x_e
    s.t. sum_{e contains j} x_e <= k     (one constraint per used item j)
         0 <= x_e <= 1

The optimal *duals* of the capacity constraints are item prices under which
(by complementary slackness) any item with a positive price is sold ``k``
times fractionally. Sweeping ``k`` geometrically — ``k = 1, (1+eps),
(1+eps)^2, ... , B`` — and keeping the realized-revenue-maximizing price
vector yields an ``O((1+eps) log B)`` approximation in theory.

Matching the paper's experimental setup, ``epsilon`` trades approximation for
running time (they use values between 0.2 and 4 depending on workload size).
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.hypergraph import PricingInstance, csr_take_rows
from repro.core.pricing import ItemPricing, PricingFunction
from repro.core.revenue import revenue_of_item_weights
from repro.exceptions import LPError, PricingError
from repro.lp import LPModel, Sense


def solve_capacity_duals(
    instance: PricingInstance,
    capacities_by_item: np.ndarray,
    name: str,
) -> np.ndarray | None:
    """Capacity duals of the fractional welfare LP, assembled in bulk.

    Solves ``max sum_e v_e x_e`` s.t. ``sum_{e ∋ j} x_e <= cap_j`` (one row
    per used item), ``0 <= x_e <= 1`` over the non-empty edges, and returns
    the item-price vector read off the capacity duals (full length, zeros
    elsewhere), or ``None`` when the LP is degenerate/unsolvable. The
    constraint matrix is exactly the used-item rows of the hypergraph's
    item → edge CSR block — shared by classic CIP (constant ``cap``) and
    the limited-supply variant (``min(k, c_j)``).
    """
    hypergraph = instance.hypergraph
    nonempty = np.flatnonzero(hypergraph.edge_sizes() > 0)
    used_items = np.flatnonzero(hypergraph.degrees > 0)
    if len(nonempty) == 0 or len(used_items) == 0:
        return None
    # Incidence rows reference edge ids; every edge incident to an item is
    # non-empty by definition, so the column remap below is total.
    column_of_edge = np.full(hypergraph.num_edges, -1, dtype=np.int64)
    column_of_edge[nonempty] = np.arange(len(nonempty), dtype=np.int64)
    item_indptr, item_edges = hypergraph.incidence_csr()
    sub_indptr, sub_edges = csr_take_rows(item_indptr, item_edges, used_items)
    model = LPModel.from_arrays(
        num_variables=len(nonempty),
        objective=instance.valuations[nonempty],
        indptr=sub_indptr,
        indices=column_of_edge[sub_edges],
        rhs=np.asarray(capacities_by_item, dtype=np.float64)[used_items],
        name=name,
        sense=Sense.MAXIMIZE,
        upper=1.0,
    )
    try:
        solution = model.solve()
    except LPError:
        return None
    # The block rows are the model's only constraints, so row r of the block
    # is constraint position r: read the capacity duals positionally instead
    # of routing each row through a name string.
    duals = np.zeros(instance.num_items)
    duals[used_items] = np.maximum(
        0.0,
        np.fromiter(
            (solution.dual_by_index(row) for row in range(len(used_items))),
            dtype=np.float64,
            count=len(used_items),
        ),
    )
    return duals


def capacity_schedule(max_degree: int, epsilon: float) -> list[float]:
    """Geometric capacity sweep ``1, (1+eps), ... , >= B``."""
    if epsilon <= 0:
        raise PricingError("epsilon must be positive")
    if max_degree <= 0:
        return [1.0]
    capacities: list[float] = []
    capacity = 1.0
    while capacity < max_degree:
        capacities.append(capacity)
        capacity *= 1.0 + epsilon
    capacities.append(float(max_degree))
    return capacities


class CIP(PricingAlgorithm):
    """Capacity-constrained primal-dual item pricing."""

    name = "cip"

    def __init__(self, epsilon: float = 0.5):
        if epsilon <= 0:
            raise PricingError("epsilon must be positive")
        self.epsilon = epsilon

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        hypergraph = instance.hypergraph
        if hypergraph.max_degree == 0:
            return ItemPricing(np.zeros(instance.num_items)), {"num_programs": 0}

        best_weights = np.zeros(instance.num_items)
        best_revenue = 0.0
        best_capacity: float | None = None
        solved = 0

        for capacity in capacity_schedule(hypergraph.max_degree, self.epsilon):
            weights = solve_capacity_duals(
                instance,
                np.full(instance.num_items, capacity),
                name=f"cip-k{capacity:g}",
            )
            if weights is None:
                continue
            solved += 1
            revenue = revenue_of_item_weights(weights, instance)
            if revenue > best_revenue:
                best_revenue = revenue
                best_weights = weights
                best_capacity = capacity

        return ItemPricing(best_weights), {
            "num_programs": solved,
            "best_capacity": best_capacity,
            "epsilon": self.epsilon,
        }
