"""Conflict-set backends: pluggable strategies for computing ``CS(Q, D)``.

A :class:`ConflictBackend` decides, for every candidate support instance,
whether it changes a query's answer. Backends share the table/column pruning
of :func:`referenced_columns` and differ only in how candidates are decided:

- ``naive`` — re-run the query on every candidate's materialized neighbor,
- ``incremental`` — the delta checkers of :mod:`repro.qirana.incremental`,
- ``vectorized`` — columnar batch evaluation over a NumPy delta tensor
  (:mod:`repro.qirana.vectorized`), falling back per query when the plan
  shape is not vectorizable,
- ``auto`` — per-query choice between ``vectorized`` and ``incremental``.

The registry mirrors :mod:`repro.core.algorithms.registry`: backends are
addressed by name from the engine, the broker, the experiment harness, and
the CLI, and downstream code can plug in new ones via
:func:`register_backend`.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.db.database import Database
from repro.db.expr import Expr
from repro.db.plan import (
    Aggregate,
    Filter,
    HashJoin,
    PlanNode,
    Project,
    Sort,
    TableScan,
)
from repro.db.query import Query
from repro.exceptions import PricingError
from repro.qirana.incremental import build_incremental_checker
from repro.support.generator import SupportSet


def referenced_columns(query: Query, catalog: Database) -> set[tuple[str, str]]:
    """Lowercased (table, column) pairs the query's answer may depend on.

    Unqualified references are resolved against every table in the query;
    when ambiguous, all matches are kept (conservative, still sound).
    """
    alias_to_table: dict[str, str] = {}
    expressions: list[Expr] = []

    stack: list[PlanNode] = [query.plan]
    while stack:
        node = stack.pop()
        if isinstance(node, TableScan):
            alias_to_table[node.effective_alias] = node.table.lower()
        elif isinstance(node, Filter):
            expressions.append(node.predicate)
        elif isinstance(node, Project):
            expressions.extend(item.expr for item in node.items)
        elif isinstance(node, Aggregate):
            expressions.extend(item.expr for item in node.group_items)
            expressions.extend(
                spec.arg for spec in node.aggregates if spec.arg is not None
            )
        elif isinstance(node, HashJoin):
            expressions.extend(node.left_keys)
            expressions.extend(node.right_keys)
        elif isinstance(node, Sort):
            expressions.extend(key.expr for key in node.keys)
        stack.extend(node.children())

    tables = set(alias_to_table.values())
    pairs: set[tuple[str, str]] = set()
    for expression in expressions:
        for qualifier, column in expression.referenced_columns():
            if qualifier is not None and qualifier in alias_to_table:
                pairs.add((alias_to_table[qualifier], column))
                continue
            # Unqualified (or derived-scope qualifier): match every base
            # table of the query that has such a column.
            matched = False
            for table in tables:
                if catalog.has_table(table) and catalog.table(table).schema.has_column(column):
                    pairs.add((table, column))
                    matched = True
            if not matched:
                # Reference to a derived column (aggregate output); its
                # inputs were collected from the node that computed it.
                continue
    return pairs


@dataclass(frozen=True)
class ConflictComputation:
    """A conflict set plus backend/pruning/timing diagnostics.

    ``wall_time_seconds`` covers candidate evaluation only; one-time
    per-query setup (incremental-checker construction, batch-plan
    compilation, baseline runs) is reported separately in ``setup_seconds``
    so per-backend timings are comparable.
    """

    conflict_set: frozenset[int]
    num_candidates: int
    num_pruned: int
    wall_time_seconds: float
    incremental: bool = False
    backend: str = ""
    setup_seconds: float = 0.0
    num_reexecuted: int = 0
    #: Why a dispatching backend routed this query off the batch path
    #: (e.g. ``unmatched-shape``, ``distinct-agg``, ``below-threshold``);
    #: ``None`` when the reporting backend was the first choice.
    fallback_reason: str | None = None
    #: The batch kernel that decided the query (``flat``, ``grouped_join3``,
    #: ...); ``None`` for non-batch backends.
    kernel: str | None = None


class ConflictBackend:
    """Base class: shared candidate pruning + the per-query compute hook."""

    name = "abstract"

    def __init__(self, support: SupportSet):
        self.support = support
        self.base = support.base

    def candidate_instances(self, query: Query) -> list[int]:
        """Instance ids that could possibly conflict with ``query``.

        Column pruning: the answer of our plans is a function of the
        referenced (table, column) cells only — support deltas never insert
        or delete rows — so an instance must patch a referenced column.
        """
        pairs = referenced_columns(query, self.base)
        candidates: set[int] = set()
        for table, column in pairs:
            candidates.update(self.support.instances_touching_column(table, column))
        return sorted(candidates)

    def prepare(self, queries: list[Query]) -> None:
        """Warm per-workload caches before a batch of computations.

        Backends that amortize setup across a workload (delta tensors per
        table/join side, columnar base tables, compiled plans) override
        this; the default is a no-op. Called by
        :meth:`ConflictSetEngine.build_hypergraph`.
        """

    def invalidate_tables(self, tables: Iterable[str]) -> None:
        """Drop any cached state derived from the given base tables.

        Called by the delta subsystem after the shared base database is
        mutated in place. Backends that rebuild all state per compute (the
        naive and incremental checkers) need nothing; columnar backends
        override this to drop per-table batches, join indexes, and compiled
        plans that embed base-derived masks.
        """

    def compute(
        self, query: Query, candidates: list[int] | None = None
    ) -> ConflictComputation:
        """Conflict set of ``query`` with diagnostics.

        ``candidates`` (sorted instance ids) skips the pruning walk when the
        caller — e.g. a dispatching backend — already computed it.
        """
        raise NotImplementedError


class NaiveBackend(ConflictBackend):
    """Definition-level evaluation: re-run the query on every candidate."""

    name = "naive"

    def compute(
        self, query: Query, candidates: list[int] | None = None
    ) -> ConflictComputation:
        setup_start = time.perf_counter()
        if candidates is None:
            candidates = self.candidate_instances(query)
        baseline = query.run(self.base)
        setup = time.perf_counter() - setup_start

        start = time.perf_counter()
        conflicting = [
            instance_id
            for instance_id in candidates
            if query.run(self.support.materialize(instance_id)) != baseline
        ]
        elapsed = time.perf_counter() - start
        return ConflictComputation(
            conflict_set=frozenset(conflicting),
            num_candidates=len(candidates),
            num_pruned=len(self.support) - len(candidates),
            wall_time_seconds=elapsed,
            incremental=False,
            backend=self.name,
            setup_seconds=setup,
            num_reexecuted=len(candidates),
        )


class IncrementalBackend(ConflictBackend):
    """Per-candidate delta checkers, with full re-execution as the escape
    hatch for plans (or individual patches) the checkers cannot decide."""

    name = "incremental"

    def compute(
        self, query: Query, candidates: list[int] | None = None
    ) -> ConflictComputation:
        setup_start = time.perf_counter()
        if candidates is None:
            candidates = self.candidate_instances(query)
        checker = build_incremental_checker(query, self.base)
        setup = time.perf_counter() - setup_start

        start = time.perf_counter()
        baseline = None
        baseline_seconds = 0.0
        reexecuted = 0
        conflicting = []
        for instance_id in candidates:
            decision: bool | None = None
            if checker is not None:
                decision = checker(self.support.instance(instance_id))
            if decision is None:
                # Full evaluation: either no checker exists for this plan
                # shape, or this particular patch is outside the checker's
                # decidable cases (e.g. it touches both sides of a join).
                if baseline is None:
                    # The one-time baseline run counts as setup, as in
                    # NaiveBackend, so per-candidate timings stay comparable.
                    baseline_start = time.perf_counter()
                    baseline = query.run(self.base)
                    baseline_seconds = time.perf_counter() - baseline_start
                decision = (
                    query.run(self.support.materialize(instance_id)) != baseline
                )
                reexecuted += 1
            if decision:
                conflicting.append(instance_id)
        elapsed = time.perf_counter() - start - baseline_seconds
        return ConflictComputation(
            conflict_set=frozenset(conflicting),
            num_candidates=len(candidates),
            num_pruned=len(self.support) - len(candidates),
            wall_time_seconds=elapsed,
            incremental=checker is not None,
            backend=self.name,
            setup_seconds=setup + baseline_seconds,
            num_reexecuted=reexecuted,
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[..., ConflictBackend]] = {}


def register_backend(name: str, factory: Callable[..., ConflictBackend]) -> None:
    """Register a backend ``factory(support, **params)`` under ``name``."""
    key = name.lower()
    if key in _REGISTRY:
        raise PricingError(f"conflict backend {name!r} is already registered")
    _REGISTRY[key] = factory


def _ensure_builtin_backends() -> None:
    # The vectorized/auto backends live in their own module (they pull in the
    # columnar machinery); importing it registers them.
    import repro.qirana.vectorized  # noqa: F401


def get_backend(name: str, support: SupportSet, **params) -> ConflictBackend:
    """Instantiate a registered backend by name over ``support``."""
    _ensure_builtin_backends()
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise PricingError(
            f"unknown conflict backend {name!r} (known: {known})"
        ) from None
    return factory(support, **params)


def available_backends() -> list[str]:
    """Sorted names of every registered conflict backend."""
    _ensure_builtin_backends()
    return sorted(_REGISTRY)


register_backend(NaiveBackend.name, NaiveBackend)
register_backend(IncrementalBackend.name, IncrementalBackend)
