"""Designing the support set — the paper's Section 7.2 open problem, solved
greedily.

"If we can create the support set in such a way that every hyperedge contains
a unique item, then we can extract the full revenue from the buyers."

Two regimes are shown:

1. The 34-query base workload contains broad queries (``select * from
   Country``) that *subsume* the selective ones — any cell flip that changes
   a selective query also changes them, so strict separation is provably
   impossible for most queries. The designer reports this honestly.
2. A workload of selective per-country lookups separates almost completely,
   and Layering/LPIP then extract (nearly) the full demand — versus a random
   support of the same size.

Run:  python examples/support_design.py
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms import Layering, LPIP, UBP
from repro.core.hypergraph import PricingInstance
from repro.db.query import sql_query
from repro.qirana.conflict import ConflictSetEngine
from repro.support.designer import designed_support
from repro.workloads.world import world_workload


def compare(base, queries, report, seed):
    random_support = None
    from repro.workloads.base import build_support

    random_support = build_support(base, len(report.support), seed=seed)
    rng = np.random.default_rng(seed + 1)
    valuations = rng.uniform(1, 100, size=len(queries))

    print(f"{'support':10s} {'algorithm':10s} {'revenue':>9s} {'normalized':>11s}")
    for label, support in (("designed", report.support), ("random", random_support)):
        hypergraph = ConflictSetEngine(support).build_hypergraph(queries)
        instance = PricingInstance(hypergraph, valuations)
        for algorithm in (LPIP(), Layering(), UBP()):
            result = algorithm.run(instance)
            print(
                f"{label:10s} {result.algorithm:10s} {result.revenue:9.1f} "
                f"{result.revenue / valuations.sum():11.3f}"
            )
        print()


def main() -> None:
    workload = world_workload(scale=0.15, expanded=False)
    base = workload.database

    # --- regime 1: broad + selective queries mixed -------------------------
    print("=== base 34-query workload (contains SELECT * queries) ===")
    report = designed_support(base, workload.queries, rng=0, padding=10)
    print(
        f"separated {report.num_dedicated}/{len(workload.queries)} queries — "
        "broad queries subsume the selective ones, so most cannot own a "
        "private item.\n"
    )

    # --- regime 2: selective lookups ---------------------------------------
    codes = base.table("Country").column_values("Code")[:25]
    selective = [
        sql_query(f"select Population from Country where Code = '{code}'", base)
        for code in codes
    ]
    print(f"=== {len(selective)} selective per-country lookups ===")
    report = designed_support(base, selective, rng=3, padding=5)
    print(
        f"separated {report.num_dedicated}/{len(selective)} queries, "
        f"|S| = {len(report.support)}\n"
    )
    compare(base, selective, report, seed=7)

    print(
        "With dedicated items, Layering and LPIP price each query's unique "
        "item at the buyer's valuation and extract (almost) all demand; the "
        "random support leaves much of it on the table."
    )


if __name__ == "__main__":
    main()
