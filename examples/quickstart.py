"""Quickstart: price a tiny query workload end to end.

Builds a 4-row database, samples a support set of neighboring instances,
maps six SQL queries to conflict-set bundles, runs every pricing algorithm,
and quotes prices — including for a query that was never in the workload.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms import default_algorithm_suite
from repro.db import Column, ColumnType, Database, Relation, TableSchema
from repro.qirana import QueryMarket
from repro.support import NeighborSampler


def build_database() -> Database:
    """The running example of the paper: a tiny User-like relation."""
    country = Relation(
        TableSchema(
            "Country",
            (
                Column("Code", ColumnType.TEXT),
                Column("Name", ColumnType.TEXT),
                Column("Continent", ColumnType.TEXT),
                Column("Population", ColumnType.INT),
            ),
            primary_key=("Code",),
        )
    )
    country.insert_many(
        [
            ("USA", "United States", "North America", 278357000),
            ("GRC", "Greece", "Europe", 10545700),
            ("FRA", "France", "Europe", 59225700),
            ("IND", "India", "Asia", 1013662000),
        ]
    )
    return Database("quickstart", [country])


def main() -> None:
    database = build_database()

    # 1. The support set: neighboring databases the buyer cannot rule out.
    support = NeighborSampler(database, rng=np.random.default_rng(0)).generate(200)
    market = QueryMarket(support)

    # 2. The buyers: queries plus what each buyer is willing to pay.
    queries = [
        "select count(Name) from Country where Continent = 'Asia'",
        "select Continent, max(Population) from Country group by Continent",
        "select avg(Population) from Country",
        "select * from Country",
        "select Name from Country where Population between 10000000 and 60000000",
    ]
    valuations = [10.0, 35.0, 20.0, 100.0, 15.0]

    # 3. Compare every pricing algorithm on this market.
    instance = market.build_instance(queries, valuations)
    print(f"market: {instance.num_edges} buyers over {instance.num_items} items")
    print(f"sum of valuations: {instance.total_valuation():.1f}\n")
    print(f"{'algorithm':10s} {'revenue':>8s} {'normalized':>11s} {'sold':>5s}")
    best = None
    for algorithm in default_algorithm_suite():
        result = algorithm.run(instance)
        normalized = result.revenue / instance.total_valuation()
        print(
            f"{result.algorithm:10s} {result.revenue:8.1f} "
            f"{normalized:11.3f} {result.report.num_sold:5d}"
        )
        if best is None or result.revenue > best.revenue:
            best = result

    # 4. Install the best pricing and serve buyers.
    market.set_pricing(best.pricing)
    print(f"\ninstalled pricing: {best.algorithm} ({best.pricing.description()})")

    answer, quote = market.purchase(queries[0], buyer="alice", valuation=10.0)
    print(f"alice buys {quote.query_text!r} for {quote.price:.2f}: {answer.rows}")

    # Arbitrage-free prices extend to queries outside the workload:
    fresh = market.quote("select max(Population) from Country")
    print(f"ad-hoc query priced at {fresh.price:.2f} (bundle size {len(fresh.bundle)})")
    print(f"total ledger revenue: {market.revenue:.2f}")


if __name__ == "__main__":
    main()
