"""Tests for the public differential-testing utilities."""

import numpy as np

from repro.db.query import sql_query
from repro.db.testing import GROUPS, random_query_text, random_star_database


class TestRandomStarDatabase:
    def test_schema(self):
        db = random_star_database(0)
        assert db.has_table("F") and db.has_table("D")
        assert db.table("F").schema.has_column("x")
        assert len(db.table("D")) == len(GROUPS)

    def test_deterministic(self):
        a = random_star_database(3)
        b = random_star_database(3)
        assert a.table("F").rows == b.table("F").rows

    def test_row_count(self):
        assert len(random_star_database(0, fact_rows=40).table("F")) == 40


class TestRandomQueryText:
    def test_all_kinds_parse_and_run(self):
        db = random_star_database(1)
        rng = np.random.default_rng(2)
        seen = set()
        for _ in range(60):
            sql = random_query_text(rng)
            seen.add(sql.split(" from ")[0])
            result = sql_query(sql, db).run(db)
            assert result is not None
        # the generator exercises several distinct query shapes
        assert len(seen) >= 4

    def test_deterministic_given_seed(self):
        assert random_query_text(5) == random_query_text(5)
