"""Serialization of pricing functions and market state.

A broker re-optimizes prices offline and ships the result to the serving
tier; these helpers round-trip the three pricing families (and the broker's
bundle cache) through plain JSON — no pickle, no code execution on load.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.algorithms.exact import TabularSetPricing
from repro.core.pricing import (
    ItemPricing,
    PricingFunction,
    UniformBundlePricing,
    XOSPricing,
)
from repro.exceptions import PricingError


def pricing_to_dict(pricing: PricingFunction) -> dict:
    """JSON-serializable representation of a pricing function."""
    if isinstance(pricing, UniformBundlePricing):
        return {"family": "uniform-bundle", "price": pricing.bundle_price}
    if isinstance(pricing, XOSPricing):
        return {
            "family": "xos",
            "components": [component.weights.tolist() for component in pricing.components],
        }
    if isinstance(pricing, ItemPricing):
        return {"family": "item", "weights": pricing.weights.tolist()}
    if isinstance(pricing, TabularSetPricing):
        return {
            "family": "tabular",
            "universe": sorted(pricing.universe),
            # JSON keys must be strings; encode each subset as a sorted
            # comma-separated item list ("" for the empty set).
            "table": {
                ",".join(str(item) for item in sorted(subset)): price
                for subset, price in pricing.table.items()
            },
        }
    raise PricingError(
        f"cannot serialize pricing family {type(pricing).__name__!r}"
    )


def pricing_from_dict(payload: dict) -> PricingFunction:
    """Inverse of :func:`pricing_to_dict`."""
    family = payload.get("family")
    if family == "uniform-bundle":
        return UniformBundlePricing(float(payload["price"]))
    if family == "item":
        return ItemPricing(np.asarray(payload["weights"], dtype=float))
    if family == "xos":
        return XOSPricing([np.asarray(w, dtype=float) for w in payload["components"]])
    if family == "tabular":
        table = {}
        for key, price in payload["table"].items():
            items = [int(item) for item in key.split(",")] if key else []
            table[frozenset(items)] = float(price)
        return TabularSetPricing(payload["universe"], table)
    raise PricingError(f"unknown pricing family in payload: {family!r}")


def save_pricing(pricing: PricingFunction, path: str | Path) -> None:
    """Write a pricing function to a JSON file."""
    Path(path).write_text(json.dumps(pricing_to_dict(pricing), indent=2))


def load_pricing(path: str | Path) -> PricingFunction:
    """Read a pricing function from a JSON file."""
    return pricing_from_dict(json.loads(Path(path).read_text()))


def bundles_to_dict(bundles: dict[str, frozenset[int]]) -> dict:
    """Serialize a query-text -> conflict-set cache."""
    return {text: sorted(bundle) for text, bundle in bundles.items()}


def bundles_from_dict(payload: dict) -> dict[str, frozenset[int]]:
    """Inverse of :func:`bundles_to_dict`."""
    return {text: frozenset(items) for text, items in payload.items()}


def save_market_state(
    pricing: PricingFunction,
    bundles: dict[str, frozenset[int]],
    path: str | Path,
) -> None:
    """Persist everything the serving tier needs: prices + known bundles."""
    payload = {
        "pricing": pricing_to_dict(pricing),
        "bundles": bundles_to_dict(bundles),
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_market_state(
    path: str | Path,
) -> tuple[PricingFunction, dict[str, frozenset[int]]]:
    """Inverse of :func:`save_market_state`."""
    payload = json.loads(Path(path).read_text())
    return pricing_from_dict(payload["pricing"]), bundles_from_dict(payload["bundles"])
