"""Uniform item pricing (UIP) — Guruswami et al. [2005].

Every item gets the same weight ``w``, so edge ``e`` costs ``w * |e|``. The
optimal uniform weight is one of the candidates ``q_e = v_e / |e|``: sort
edges by ``q_e`` descending; at ``w = q_(i)`` exactly the first ``i`` edges
are sold (ties included), so revenue is ``q_(i) * sum_{j<=i} |e_j|`` — a
prefix sum. ``O(m log m)`` total, ``O(log n + log m)``-approximate.

Empty edges always sell at price 0 under any item pricing and contribute no
revenue, so they are ignored when choosing ``w``.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.hypergraph import PricingInstance
from repro.core.pricing import ItemPricing, PricingFunction


def best_uniform_item_price(instance: PricingInstance) -> tuple[float, float]:
    """Return ``(weight, revenue)`` of the best uniform item price."""
    sizes = instance.hypergraph.edge_sizes().astype(np.float64)
    valuations = instance.valuations
    nonempty = sizes > 0
    if not np.any(nonempty):
        return 0.0, 0.0
    sizes = sizes[nonempty]
    quality = valuations[nonempty] / sizes

    order = np.argsort(quality)[::-1]
    sorted_quality = quality[order]
    size_prefix = np.cumsum(sizes[order])
    revenues = sorted_quality * size_prefix
    best = int(np.argmax(revenues))
    return float(sorted_quality[best]), float(revenues[best])


class UIP(PricingAlgorithm):
    """Optimal uniform item pricing via the prefix-sum sweep."""

    name = "uip"

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        weight, sweep_revenue = best_uniform_item_price(instance)
        pricing = ItemPricing.uniform(instance.num_items, weight)
        return pricing, {"uniform_weight": weight, "sweep_revenue": sweep_revenue}
