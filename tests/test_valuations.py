"""Unit tests for the valuation generative models."""

import numpy as np
import pytest

from repro.core.hypergraph import Hypergraph
from repro.exceptions import PricingError
from repro.valuations import (
    AdditiveValuations,
    ExponentialScaledValuations,
    NormalScaledValuations,
    UniformValuations,
    ZipfValuations,
)


@pytest.fixture
def hypergraph():
    rng = np.random.default_rng(0)
    edges = [set(rng.choice(40, size=size, replace=False)) for size in
             [1, 2, 4, 8, 16, 1, 3, 9, 27, 5]]
    edges.append(set())
    return Hypergraph(40, edges)


class TestUniform:
    def test_range(self, hypergraph):
        values = UniformValuations(100).generate(hypergraph, np.random.default_rng(1))
        assert values.shape == (hypergraph.num_edges,)
        assert np.all(values >= 1.0) and np.all(values <= 100.0)

    def test_deterministic_given_rng(self, hypergraph):
        a = UniformValuations(50).generate(hypergraph, np.random.default_rng(2))
        b = UniformValuations(50).generate(hypergraph, np.random.default_rng(2))
        assert np.array_equal(a, b)

    def test_invalid_k(self):
        with pytest.raises(PricingError):
            UniformValuations(0.5)

    def test_name(self):
        assert UniformValuations(200).name == "uniform[1,200]"


class TestZipf:
    def test_minimum_one(self, hypergraph):
        values = ZipfValuations(2.0).generate(hypergraph, np.random.default_rng(3))
        assert np.all(values >= 1.0)

    def test_heavier_tail_for_smaller_a(self):
        rng = np.random.default_rng(4)
        big = Hypergraph(10, [{0}] * 4000)
        heavy = ZipfValuations(1.5).generate(big, np.random.default_rng(4))
        light = ZipfValuations(2.5).generate(big, np.random.default_rng(4))
        assert heavy.max() > light.max()

    def test_truncation(self, hypergraph):
        values = ZipfValuations(1.2, max_value=10.0).generate(
            hypergraph, np.random.default_rng(5)
        )
        assert np.all(values <= 10.0)

    def test_invalid_exponent(self):
        with pytest.raises(PricingError):
            ZipfValuations(1.0)


class TestScaled:
    def test_exponential_scales_with_size(self, hypergraph):
        model = ExponentialScaledValuations(k=1.0)
        rng = np.random.default_rng(6)
        # average many draws: mean should grow with |e|
        totals = np.zeros(hypergraph.num_edges)
        for _ in range(300):
            totals += model.generate(hypergraph, rng)
        means = totals / 300
        sizes = hypergraph.edge_sizes()
        big = means[sizes >= 16].mean()
        small = means[(sizes >= 1) & (sizes <= 2)].mean()
        assert big > small * 3

    def test_exponential_empty_edge_zero(self, hypergraph):
        model = ExponentialScaledValuations(k=1.0)
        values = model.generate(hypergraph, np.random.default_rng(7))
        assert values[-1] == 0.0  # the empty edge

    def test_normal_nonnegative(self, hypergraph):
        model = NormalScaledValuations(k=0.25)
        values = model.generate(hypergraph, np.random.default_rng(8))
        assert np.all(values >= 0.0)

    def test_normal_mean_tracks_size_power(self, hypergraph):
        model = NormalScaledValuations(k=2.0, variance=1.0)
        rng = np.random.default_rng(9)
        totals = np.zeros(hypergraph.num_edges)
        for _ in range(200):
            totals += model.generate(hypergraph, rng)
        means = totals / 200
        sizes = hypergraph.edge_sizes()
        index = int(np.argmax(sizes))
        assert means[index] == pytest.approx(sizes[index] ** 2.0, rel=0.1)

    def test_invalid_variance(self):
        with pytest.raises(PricingError):
            NormalScaledValuations(k=1.0, variance=0.0)


class TestAdditive:
    def test_edge_value_is_sum_of_item_prices(self, hypergraph):
        model = AdditiveValuations(k=10, assigner="uniform")
        rng = np.random.default_rng(10)
        prices = model.item_prices(hypergraph.num_items, rng)
        values = np.array(
            [sum(prices[j] for j in edge) for edge in hypergraph.edges]
        )
        regenerated = model.generate(hypergraph, np.random.default_rng(10))
        assert np.allclose(values, regenerated)

    def test_item_price_ranges_uniform(self):
        model = AdditiveValuations(k=5, assigner="uniform")
        prices = model.item_prices(5000, np.random.default_rng(11))
        assert prices.min() >= 1.0
        assert prices.max() <= 6.0

    def test_item_price_ranges_binomial(self):
        model = AdditiveValuations(k=10, assigner="binomial")
        prices = model.item_prices(5000, np.random.default_rng(12))
        assert prices.min() >= 0.0
        assert prices.max() <= 11.0
        # binomial(10, .5) concentrates near 5
        assert 4.5 < np.median(prices) < 6.5

    def test_empty_edge_zero(self, hypergraph):
        values = AdditiveValuations(k=3).generate(hypergraph, np.random.default_rng(13))
        assert values[-1] == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(PricingError):
            AdditiveValuations(k=0)
        with pytest.raises(PricingError):
            AdditiveValuations(k=5, assigner="gamma")


class TestInstanceHelper:
    def test_instance_builds_and_names(self, hypergraph):
        instance = UniformValuations(10).instance(hypergraph, rng=0)
        assert instance.num_edges == hypergraph.num_edges
        assert instance.name == "uniform[1,10]"
