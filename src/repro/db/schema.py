"""Table schemas: typed, named columns with an optional primary key."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import SchemaError

#: Scalar value stored in a cell. ``None`` encodes SQL NULL.
Value = int | float | str | None


class ColumnType(enum.Enum):
    """Logical column type. Python values are validated on insert."""

    INT = "int"
    FLOAT = "float"
    TEXT = "text"

    def accepts(self, value: Value) -> bool:
        """Whether ``value`` may be stored in a column of this type."""
        if value is None:
            return True
        if self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        return isinstance(value, str)


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    dtype: ColumnType = ColumnType.TEXT

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class TableSchema:
    """Schema of a single relation.

    Column lookup is case-insensitive, matching the workload queries which mix
    e.g. ``Code`` and ``code``.
    """

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False, default=None)

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            key = column.name.lower()
            if key in index:
                raise SchemaError(f"duplicate column {column.name!r} in table {self.name!r}")
            index[key] = position
        object.__setattr__(self, "_index", index)
        for key_column in self.primary_key:
            if key_column.lower() not in index:
                raise SchemaError(
                    f"primary key column {key_column!r} not in table {self.name!r}"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    @property
    def arity(self) -> int:
        return len(self.columns)

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index

    def column_index(self, name: str) -> int:
        """Position of ``name`` (case-insensitive); raises SchemaError if absent."""
        try:
            return self._index[name.lower()]
        except KeyError:
            raise SchemaError(f"no column {name!r} in table {self.name!r}") from None

    def column(self, name: str) -> Column:
        return self.columns[self.column_index(name)]

    def validate_row(self, row: tuple[Value, ...]) -> None:
        """Check arity and per-column types; raise SchemaError on mismatch."""
        if len(row) != self.arity:
            raise SchemaError(
                f"row arity {len(row)} does not match table {self.name!r} "
                f"arity {self.arity}"
            )
        for column, value in zip(self.columns, row):
            if not column.dtype.accepts(value):
                raise SchemaError(
                    f"value {value!r} is not valid for column "
                    f"{self.name}.{column.name} of type {column.dtype.value}"
                )
