"""Unit tests for relations and copy-on-write patching."""

import pytest

from repro.db.relation import Relation
from repro.db.schema import Column, ColumnType, TableSchema
from repro.exceptions import SchemaError


@pytest.fixture
def simple():
    schema = TableSchema(
        "T", (Column("a", ColumnType.INT), Column("b", ColumnType.TEXT))
    )
    relation = Relation(schema)
    relation.insert_many([(1, "x"), (2, "y"), (3, "z")])
    return relation


class TestInsert:
    def test_insert_and_len(self, simple):
        assert len(simple) == 3

    def test_insert_validates_arity(self, simple):
        with pytest.raises(SchemaError):
            simple.insert((1,))

    def test_insert_validates_type(self, simple):
        with pytest.raises(SchemaError):
            simple.insert(("no", "x"))

    def test_insert_list_coerced_to_tuple(self, simple):
        simple.insert([4, "w"])
        assert simple.rows[-1] == (4, "w")

    def test_iteration_order(self, simple):
        assert [row[0] for row in simple] == [1, 2, 3]


class TestAccessors:
    def test_cell_by_name(self, simple):
        assert simple.cell(1, "b") == "y"

    def test_cell_by_index(self, simple):
        assert simple.cell(0, 0) == 1

    def test_column_values(self, simple):
        assert simple.column_values("a") == [1, 2, 3]

    def test_num_rows(self, simple):
        assert simple.num_rows == 3


class TestCopyOnWrite:
    def test_with_cell_replaced_changes_clone_only(self, simple):
        clone = simple.with_cell_replaced(0, "b", "CHANGED")
        assert clone.cell(0, "b") == "CHANGED"
        assert simple.cell(0, "b") == "x"

    def test_with_cell_replaced_shares_untouched_rows(self, simple):
        clone = simple.with_cell_replaced(0, "a", 99)
        assert clone.rows[1] is simple.rows[1]

    def test_with_cell_replaced_validates_type(self, simple):
        with pytest.raises(SchemaError):
            simple.with_cell_replaced(0, "a", "not-int")

    def test_with_cell_replaced_bad_row(self, simple):
        with pytest.raises(SchemaError, match="out of range"):
            simple.with_cell_replaced(10, "a", 1)

    def test_with_row_deleted(self, simple):
        clone = simple.with_row_deleted(1)
        assert len(clone) == 2
        assert len(simple) == 3
        assert clone.rows == [(1, "x"), (3, "z")]

    def test_with_row_deleted_bad_index(self, simple):
        with pytest.raises(SchemaError):
            simple.with_row_deleted(-1)

    def test_with_row_inserted(self, simple):
        clone = simple.with_row_inserted((9, "q"))
        assert len(clone) == 4
        assert len(simple) == 3

    def test_with_row_inserted_validates(self, simple):
        with pytest.raises(SchemaError):
            simple.with_row_inserted(("bad", "q"))
