"""Bayesian pricing instances and expected-revenue evaluation.

A :class:`BayesianInstance` is the stochastic counterpart of
:class:`~repro.core.hypergraph.PricingInstance`: the hypergraph (which
queries conflict with which support databases) is fixed and known — it is
derived from the data, not the buyers — while each buyer's valuation is a
distribution. Because buyers are single-minded and supply is unlimited,
expected revenue decomposes per edge:

    E[R(p)] = sum_e  p(e) * P(v_e >= p(e))

so any deterministic pricing function can be scored *exactly* against the
distributions (no Monte Carlo needed), and the expected-revenue-optimal
uniform bundle price can be found by optimizing the summed revenue curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayesian.distributions import ValuationDistribution
from repro.core.algorithms.base import PricingAlgorithm
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import PricingFunction, UniformBundlePricing
from repro.exceptions import PricingError


@dataclass
class BayesianInstance:
    """A hypergraph plus one valuation distribution per edge."""

    hypergraph: Hypergraph
    distributions: list[ValuationDistribution]
    name: str = "bayesian-instance"

    def __post_init__(self):
        if len(self.distributions) != self.hypergraph.num_edges:
            raise PricingError(
                f"{len(self.distributions)} distributions for "
                f"{self.hypergraph.num_edges} edges"
            )

    @property
    def num_edges(self) -> int:
        return self.hypergraph.num_edges

    @property
    def num_items(self) -> int:
        return self.hypergraph.num_items

    def realize(
        self, rng: np.random.Generator | int | None = None
    ) -> PricingInstance:
        """Sample one valuation per edge, yielding a deterministic instance."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        valuations = np.array(
            [float(dist.sample(rng)) for dist in self.distributions]
        )
        return PricingInstance(self.hypergraph, valuations, name=f"{self.name}:sample")

    def expected_welfare(self) -> float:
        """``sum_e E[v_e]`` — the Bayesian analogue of sum-of-valuations."""
        return float(sum(dist.mean() for dist in self.distributions))

    def expected_revenue(self, pricing: PricingFunction) -> float:
        """Exact expected revenue of a deterministic pricing function."""
        return expected_revenue(pricing, self)


def expected_revenue(pricing: PricingFunction, instance: BayesianInstance) -> float:
    """``sum_e p(e) * P(v_e >= p(e))`` for a deterministic pricing.

    Edge prices come from the pricing's matrix form over the hypergraph's
    shared CSR edge-member block (built once, reused across every scoring
    call of an SAA/posted-price simulation); only the per-distribution
    survival lookups stay scalar.
    """
    prices = pricing.price_edges_arrays(
        *instance.hypergraph.edge_member_matrix()
    )
    return float(
        sum(
            price * dist.survival(float(price))
            for price, dist in zip(prices, instance.distributions)
        )
    )


class ExpectedRevenueUBP:
    """Expected-revenue-optimal uniform bundle price for a Bayesian instance.

    The summed revenue curve ``R(P) = P * sum_e S_e(P)`` is piecewise smooth;
    candidates come from each edge distribution's own optimal posted price
    plus a dense geometric grid spanning the distributions' supports. For
    discrete distributions (where the curve has jumps) the candidate set
    contains every support point, making the result exact; for continuous
    ones the grid resolution bounds the optimality gap.

    The class mirrors the :class:`~repro.core.algorithms.ubp.UBP` interface
    shape (a ``run`` returning price and revenue) but scores in expectation.
    """

    name = "ev-ubp"

    def __init__(self, grid_size: int = 256):
        if grid_size < 2:
            raise PricingError("grid_size must be at least 2")
        self.grid_size = grid_size

    def run(self, instance: BayesianInstance) -> tuple[UniformBundlePricing, float]:
        """Return ``(pricing, expected_revenue)``."""
        candidates = self._candidates(instance)
        if not len(candidates):
            return UniformBundlePricing(0.0), 0.0

        def total_revenue(price: float) -> float:
            return price * sum(
                dist.survival(price) for dist in instance.distributions
            )

        revenues = [total_revenue(price) for price in candidates]
        best = int(np.argmax(revenues))
        best_price = float(candidates[best])
        best_revenue = float(revenues[best])
        return UniformBundlePricing(best_price), best_revenue

    def _candidates(self, instance: BayesianInstance) -> np.ndarray:
        points: list[float] = []
        top = 0.0
        for dist in instance.distributions:
            price, _ = dist.optimal_price()
            if price > 0:
                points.append(price)
            values = getattr(dist, "values", None)
            if values is not None:
                points.extend(float(v) for v in values if v > 0)
            top = max(top, dist.upper_bound())
        if top <= 0:
            return np.asarray(points)
        # Geometric grid from top down to a negligible fraction of it.
        grid = top / (1.1 ** np.arange(self.grid_size))
        return np.unique(np.concatenate([np.asarray(points), grid]))


def average_realized_revenue(
    algorithm: PricingAlgorithm,
    instance: BayesianInstance,
    num_rounds: int,
    rng: np.random.Generator | int | None = None,
) -> float:
    """Monte-Carlo average of an algorithm run fresh on each realization.

    This is the *prophet* benchmark for SAA experiments: the algorithm sees
    the realized valuations before pricing, so its average revenue upper
    bounds what any ex-ante posted pricing from the same family can earn.
    """
    if num_rounds < 1:
        raise PricingError("num_rounds must be at least 1")
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    total = 0.0
    for _ in range(num_rounds):
        realized = instance.realize(rng)
        total += algorithm.run(realized).revenue
    return total / num_rounds


def uniform_edge_distributions(
    num_edges: int, distribution: ValuationDistribution
) -> list[ValuationDistribution]:
    """Convenience: every edge shares the same valuation distribution."""
    return [distribution] * num_edges
