"""An asyncio HTTP/JSON front-end for the pricing tiers.

The serving tiers (:class:`~repro.service.server.PricingService`,
:class:`~repro.service.sharding.ShardedPricingService`) are in-process
facades; heavy traffic arrives over a network. :class:`PricingHTTPServer`
puts a real wire in front of either tier using nothing but stdlib
``asyncio`` streams — no web framework, no new dependency:

- ``POST /quote`` — body ``{"query": "<sql>"}``; with an ``X-Buyer``
  header the quote goes through :meth:`session(buyer)
  <repro.service.server.CanonicalServingMixin.session>` and the response
  carries the marginal (history-aware) price alongside the fresh one.
- ``POST /purchase`` — body ``{"query": ..., "buyer": ..., "valuation"?}``
  (``X-Buyer`` may supply the buyer); with a buyer header the sale is
  history-aware (marginal pricing + holdings update), otherwise it is a
  fresh-price sale. The answer's columns/rows ride along when the buyer
  pays.
- ``POST /delta`` — staged online market mutations (see
  :mod:`repro.delta`): ``{"action": "accept"|"apply"|"cancel", "delta":
  {...} | "delta_id": N}``. ``accept`` stages a delta and returns its id,
  ``apply`` (the default) validates and applies a staged id or an inline
  payload, ``cancel`` withdraws a staged delta. Validation failures are
  400s with the typed error; the tier's delta counters ride along in
  ``/metrics``.
- ``GET /healthz`` — liveness: 200 whenever the process serves.
- ``GET /readyz`` — readiness: 200 while accepting pricing traffic, 503
  the moment a drain starts (load balancers stop routing here *before*
  in-flight requests finish).
- ``GET /metrics`` — the Prometheus text exposition of the tier's
  counters plus this front-end's per-shard request-latency histograms
  (:mod:`repro.service.observability`).

**Concurrency bridge.** Handlers run on the event loop; the pricing call
itself blocks on a micro-batch future, so it is bridged onto a bounded
``ThreadPoolExecutor``. Concurrent HTTP requests therefore land in the
*same* :class:`~repro.service.batching.MicroBatcher` flushes as in-process
callers — the wire adds transport, not a second scheduling policy.

**Graceful drain / rolling restart.** :meth:`PricingHTTPServer.shutdown`
(or SIGTERM, via :meth:`install_signal_handlers`) runs the drain sequence:
mark not-ready (``/readyz`` flips immediately), wait for in-flight
requests to complete, flush + close the batchers, snapshot the warm state
(pricing, ledgers, canonical quote cache) to ``snapshot_path``, then stop
listening. A replacement process restores the snapshot and serves the
previous working set as cache hits — the zero-lost-requests,
100%-warm restart the tests assert.

Admission control maps onto the wire: a shed
(:class:`~repro.exceptions.ServiceOverloadError`) returns ``429``;
library errors (:class:`~repro.exceptions.ReproError`) return ``400``;
draining returns ``503``; anything unexpected returns ``500`` without
killing the connection loop.
"""

from __future__ import annotations

import asyncio
import functools
import json
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.exceptions import ReproError, ServiceError, ServiceOverloadError
from repro.service.observability import LatencyHistogram, render_metrics

__all__ = ["PricingHTTPServer", "serve_in_thread"]

_MAX_BODY_BYTES = 1 << 20
_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _jsonable(value):
    """Coerce numpy scalars and tuples so ``json.dumps`` accepts them."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()
    return value


class PricingHTTPServer:
    """Serve a pricing tier over HTTP/1.1 with drain-aware lifecycle.

    Parameters
    ----------
    service:
        A :class:`~repro.service.server.PricingService` or
        :class:`~repro.service.sharding.ShardedPricingService`. The server
        owns the drain: :meth:`shutdown` closes the service's batchers.
    host / port:
        Listen address; ``port=0`` picks a free port (read it back from
        :attr:`port` after :meth:`start`).
    snapshot_path:
        Where the drain sequence persists the warm state. ``None`` skips
        the snapshot step (drain still flushes and stops cleanly).
    max_workers:
        Size of the thread pool bridging handlers onto the blocking
        micro-batched pricing calls.
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        snapshot_path=None,
        max_workers: int = 8,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.snapshot_path = snapshot_path
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="pricing-http"
        )
        self._ready = False
        self._draining = False
        self._inflight = 0
        self._idle: asyncio.Event | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopped: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        num_shards = getattr(service, "num_shards", 1)
        #: Per-home-shard request-latency histograms, scraped by /metrics.
        self.latency = {str(shard): LatencyHistogram() for shard in range(num_shards)}
        #: (endpoint, status) -> count, scraped by /metrics.
        self.http_requests: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def ready(self) -> bool:
        return self._ready

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    async def start(self) -> None:
        """Bind and start accepting connections (sets :attr:`port`)."""
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._ready = True

    async def drain(self) -> None:
        """The graceful-drain sequence (idempotent).

        1. flip :attr:`ready` — ``/readyz`` answers 503 from this moment,
           while in-flight requests are still being served,
        2. wait for in-flight pricing requests to complete,
        3. flush + close the service's micro-batchers,
        4. snapshot the warm state to ``snapshot_path`` (when configured
           and a pricing is installed),
        5. stop listening and release the worker pool.
        """
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        self._ready = False
        await self._idle.wait()
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(self._pool, self._drain_blocking)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Feed EOF to parked keep-alive connections so their handler tasks
        # exit normally instead of being cancelled when the loop closes.
        for writer in list(self._connections):
            writer.close()
        await asyncio.sleep(0)
        self._pool.shutdown(wait=False)
        self._stopped.set()

    def _drain_blocking(self) -> None:
        self.service.close()
        if self.snapshot_path is not None and self.service.pricing is not None:
            self.service.snapshot(self.snapshot_path)

    async def serve_until_drained(self) -> None:
        """Block until a drain (signal or :meth:`shutdown`) completes."""
        await self._stopped.wait()

    def install_signal_handlers(self, *signals_: int) -> None:
        """Route SIGTERM/SIGINT (by default) into the drain sequence."""
        loop = asyncio.get_running_loop()
        for signum in signals_ or (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                signum, lambda: asyncio.ensure_future(self.drain())
            )

    # -- background-thread mode (tests, benchmarks, loadgen) ------------

    def start_in_thread(self, timeout: float = 10.0) -> "PricingHTTPServer":
        """Run the server on a dedicated event-loop thread; returns when bound."""
        if self._thread is not None:
            raise ServiceError("http server already started")

        async def main() -> None:
            try:
                await self.start()
            except BaseException as exc:  # surface bind failures to the caller
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            await self.serve_until_drained()

        def run() -> None:
            asyncio.run(main())

        self._thread = threading.Thread(
            target=run, name="pricing-http-server", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise ServiceError("http server failed to start in time")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def shutdown(self, timeout: float = 30.0) -> None:
        """Drain from any thread; joins the server thread when one exists."""
        loop = self._loop
        if loop is None or self._stopped is None:
            return
        if self._thread is not None and threading.current_thread() is not self._thread:
            future = asyncio.run_coroutine_threadsafe(self.drain(), loop)
            future.result(timeout)
            self._thread.join(timeout)
            self._thread = None
        else:
            asyncio.ensure_future(self.drain())

    def __enter__(self) -> "PricingHTTPServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    return
                method, target, version, headers, body = request
                status, content_type, payload = await self._dispatch(
                    method, target, headers, body
                )
                endpoint = target.split("?", 1)[0]
                self.http_requests[(endpoint, status)] = (
                    self.http_requests.get((endpoint, status), 0) + 1
                )
                keep_alive = (
                    version == "HTTP/1.1"
                    and headers.get("connection", "").lower() != "close"
                )
                writer.write(
                    self._response_bytes(status, content_type, payload, keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    return
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.LimitOverrunError,
            asyncio.CancelledError,
        ):
            return
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, version = request_line.decode("latin-1").split()
        except ValueError:
            return ("GET", "/malformed", "HTTP/1.0", {}, b"")
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        if length > _MAX_BODY_BYTES:
            return (method, target, version, headers, b"\x00oversized")
        body = await reader.readexactly(length) if length else b""
        return method, target, version, headers, body

    def _response_bytes(
        self, status: int, content_type: str, payload: bytes, keep_alive: bool
    ) -> bytes:
        reason = _STATUS_REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + payload

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    async def _dispatch(
        self, method: str, target: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, str, bytes]:
        path = target.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return self._json_error(405, "healthz is GET-only")
            return 200, "text/plain; charset=utf-8", b"ok\n"
        if path == "/readyz":
            if method != "GET":
                return self._json_error(405, "readyz is GET-only")
            if self._ready:
                return 200, "text/plain; charset=utf-8", b"ready\n"
            return 503, "text/plain; charset=utf-8", b"draining\n"
        if path == "/metrics":
            if method != "GET":
                return self._json_error(405, "metrics is GET-only")
            text = render_metrics(
                self.service,
                latency=self.latency,
                http_requests=dict(self.http_requests),
                ready=self._ready,
            )
            return 200, "text/plain; version=0.0.4; charset=utf-8", text.encode()
        if path in ("/quote", "/purchase"):
            if method != "POST":
                return self._json_error(405, f"{path} is POST-only")
            if body.startswith(b"\x00oversized"):
                return self._json_error(413, "request body too large")
            if not self._ready:
                return self._json_error(503, "service is draining")
            return await self._priced_request(path, headers, body)
        if path == "/delta":
            if method != "POST":
                return self._json_error(405, "delta is POST-only")
            if body.startswith(b"\x00oversized"):
                return self._json_error(413, "request body too large")
            if not self._ready:
                return self._json_error(503, "service is draining")
            return await self._delta_request(body)
        return self._json_error(404, f"unknown path {path!r}")

    async def _priced_request(
        self, path: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, str, bytes]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return self._json_error(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict) or not isinstance(payload.get("query"), str):
            return self._json_error(400, 'request body needs a "query" string')
        header_buyer = headers.get("x-buyer")
        buyer = header_buyer or payload.get("buyer")
        if buyer is not None and not isinstance(buyer, str):
            return self._json_error(400, "buyer must be a string")
        valuation = payload.get("valuation")
        if valuation is not None and not isinstance(valuation, (int, float)):
            return self._json_error(400, "valuation must be a number")
        # An X-Buyer header opts into the history-aware session surface
        # (marginal pricing); a body-only buyer on /purchase is a plain
        # fresh-price sale.
        handler = functools.partial(
            self._do_quote if path == "/quote" else self._do_purchase,
            history=header_buyer is not None,
        )
        loop = asyncio.get_running_loop()
        # The ready-check/inflight-increment pair runs without an await in
        # between, so a drain never misses a request it should wait for.
        self._inflight += 1
        self._idle.clear()
        begin = time.perf_counter()
        try:
            response = await loop.run_in_executor(
                self._pool, handler, payload["query"], buyer, valuation
            )
        except ServiceOverloadError as exc:
            return self._json_error(429, str(exc))
        except ReproError as exc:
            return self._json_error(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 — the wire must not die
            return self._json_error(500, f"{type(exc).__name__}: {exc}")
        finally:
            elapsed = time.perf_counter() - begin
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            self._observe(payload["query"], elapsed)
        return (
            200,
            "application/json",
            json.dumps(_jsonable(response)).encode(),
        )

    async def _delta_request(self, body: bytes) -> tuple[int, str, bytes]:
        try:
            payload = json.loads(body.decode("utf-8") or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return self._json_error(400, f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            return self._json_error(400, "request body must be a JSON object")
        action = payload.get("action", "apply")
        if action not in ("accept", "apply", "cancel"):
            return self._json_error(
                400, f'action must be "accept", "apply", or "cancel", got {action!r}'
            )
        loop = asyncio.get_running_loop()
        # Counted as in-flight like priced requests: a drain waits for a
        # delta mid-apply instead of snapshotting a half-mutated market.
        self._inflight += 1
        self._idle.clear()
        try:
            response = await loop.run_in_executor(
                self._pool, self._do_delta, action, payload
            )
        except ReproError as exc:
            return self._json_error(400, f"{type(exc).__name__}: {exc}")
        except Exception as exc:  # noqa: BLE001 — the wire must not die
            return self._json_error(500, f"{type(exc).__name__}: {exc}")
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
        return 200, "application/json", json.dumps(_jsonable(response)).encode()

    def _do_delta(self, action: str, payload: dict) -> dict:
        delta = payload.get("delta")
        delta_id = payload.get("delta_id")
        if delta_id is not None and (
            isinstance(delta_id, bool) or not isinstance(delta_id, int)
        ):
            raise ServiceError('"delta_id" must be an integer')
        if action == "accept":
            if not isinstance(delta, dict):
                raise ServiceError('accept needs a "delta" object')
            staged = self.service.accept_delta(delta)
            return {"action": "accept", "delta_id": staged, "status": "staged"}
        if action == "cancel":
            if delta_id is None:
                raise ServiceError('cancel needs a staged "delta_id"')
            record = self.service.cancel_delta(delta_id)
            return {
                "action": "cancel",
                "delta_id": record.delta_id,
                "status": record.status,
            }
        if delta_id is not None:
            target = delta_id
        elif isinstance(delta, dict):
            target = delta
        else:
            raise ServiceError('apply needs a "delta" object or a staged "delta_id"')
        result = self.service.apply_delta(target)
        # PricingService returns a MarketDeltaReport, the sharded tier the
        # bare DeltaEffect; the wire exposes the common effect surface.
        effect = getattr(result, "effect", result)
        return {
            "action": "apply",
            "status": "applied",
            "data_version": self.service.data_version,
            "kind": effect.kind,
            "column_pairs": sorted(list(pair) for pair in effect.column_pairs),
            "whole_tables": sorted(effect.whole_tables),
            "added_ids": list(effect.added_ids),
            "retired_ids": list(effect.retired_ids),
        }

    def _observe(self, text: str, seconds: float) -> None:
        home = getattr(self.service, "home_shard", None)
        label = "0"
        if home is not None:
            try:
                label = str(home(text))
            except Exception:  # noqa: BLE001 — attribution must not fail a request
                label = "0"
        histogram = self.latency.get(label)
        if histogram is not None:
            histogram.observe(seconds)

    # -- blocking handlers (worker-pool threads) ------------------------

    def _do_quote(
        self, text: str, buyer: str | None, valuation, *, history: bool
    ) -> dict:
        if buyer and history:
            marginal = self.service.session(buyer).quote(text)
            return {
                "query": text,
                "buyer": buyer,
                "price": marginal.fresh_price,
                "marginal_price": marginal.marginal_price,
                "refund": marginal.refund,
            }
        quote = self.service.quote(text)
        return {
            "query": text,
            "price": quote.price,
            "bundle_size": len(quote.bundle),
        }

    def _do_purchase(
        self, text: str, buyer: str | None, valuation, *, history: bool
    ) -> dict:
        if not buyer:
            raise ServiceError(
                'purchase needs a buyer (X-Buyer header or "buyer" field)'
            )
        if history:
            answer, marginal = self.service.session(buyer).purchase(text, valuation)
            price, paid = marginal.fresh_price, marginal.marginal_price
        else:
            answer, quote = self.service.purchase(text, buyer, valuation)
            price = paid = quote.price
        response = {
            "query": text,
            "buyer": buyer,
            "price": price,
            "paid": paid if answer is not None else 0.0,
            "purchased": answer is not None,
        }
        if history:
            response["marginal_price"] = paid
        if answer is not None:
            response["answer"] = {
                "columns": list(answer.columns),
                "rows": [list(row) for row in answer.rows],
            }
        return response

    @staticmethod
    def _json_error(status: int, message: str) -> tuple[int, str, bytes]:
        return (
            status,
            "application/json",
            json.dumps({"error": message}).encode(),
        )


def serve_in_thread(
    service,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    snapshot_path=None,
    max_workers: int = 8,
) -> PricingHTTPServer:
    """Start a :class:`PricingHTTPServer` on a background event-loop thread.

    Returns once the socket is bound (the actual port is on the handle).
    Call :meth:`PricingHTTPServer.shutdown` — or use the handle as a
    context manager — to drain and stop.
    """
    server = PricingHTTPServer(
        service,
        host=host,
        port=port,
        snapshot_path=snapshot_path,
        max_workers=max_workers,
    )
    return server.start_in_thread()
