"""Simulation loop tying streams, policies and regret accounting together."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.algorithms.ubp import best_uniform_bundle_price
from repro.online.env import BuyerStream, OnlineMarketEnv
from repro.online.policies import PricingPolicy


@dataclass
class SimulationResult:
    """Outcome of one online simulation."""

    policy: str
    horizon: int
    revenue: float
    sales: int
    best_fixed_price: float
    best_fixed_revenue: float
    revenue_curve: np.ndarray  # cumulative revenue per step

    @property
    def regret(self) -> float:
        """Revenue gap to the best fixed grid-free price in hindsight."""
        return self.best_fixed_revenue - self.revenue

    @property
    def competitive_ratio(self) -> float:
        if self.best_fixed_revenue <= 0:
            return 1.0
        return self.revenue / self.best_fixed_revenue


def best_fixed_price_revenue(stream: BuyerStream) -> tuple[float, float]:
    """Best single posted price in hindsight for the stream's distribution.

    Buyers arrive uniformly over edges, so the expected per-step revenue of
    price ``p`` is ``p * P(v >= p)``; over the horizon the optimum is the
    best uniform bundle price scaled to the horizon.
    """
    valuations = stream.instance.valuations
    price, sweep_revenue = best_uniform_bundle_price(valuations)
    per_step = sweep_revenue / stream.instance.num_edges
    return price, per_step * stream.horizon


def simulate(stream: BuyerStream, policy: PricingPolicy) -> SimulationResult:
    """Run the posted-price loop for the stream's horizon."""
    env = OnlineMarketEnv(stream)
    curve = np.zeros(stream.horizon)
    for arrival in stream:
        arm = policy.select(arrival.step)
        price = float(policy.grid[arm])
        accepted = env.play(arrival, price)
        policy.update(arm, price if accepted else 0.0)
        curve[arrival.step] = env.revenue
    best_price, best_revenue = best_fixed_price_revenue(stream)
    return SimulationResult(
        policy=policy.name,
        horizon=stream.horizon,
        revenue=env.revenue,
        sales=env.sales,
        best_fixed_price=best_price,
        best_fixed_revenue=best_revenue,
        revenue_curve=curve,
    )
