"""Geometric-grid uniform item pricing (Balcan & Blum style).

Balcan and Blum [2006] showed that for single-minded buyers with bundles of
size at most ``k``, a *single* item price chosen from a geometric grid of
``O(log(m k))`` candidates is an ``O(k)``-approximation to the optimal item
pricing. Compared to UIP — which tries the data-dependent candidates
``v_e / |e|`` — the grid is oblivious to the valuations except for their
maximum, which makes it robust to valuation noise and a natural candidate
set for online variants (the grid does not move when a single buyer
changes). UIP's sweep is optimal among uniform prices, so this algorithm is
never better than UIP on a fixed instance; its value is speed (no sort over
``m``), obliviousness, and serving as the theoretical baseline the paper's
related work cites.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.evaluator import default_evaluator
from repro.core.hypergraph import PricingInstance
from repro.core.pricing import ItemPricing, PricingFunction
from repro.core.revenue import PRICE_TOLERANCE
from repro.exceptions import PricingError


class GeometricGridItemPricing(PricingAlgorithm):
    """Best uniform item price from the grid ``h, h/r, h/r^2, ...``.

    Parameters
    ----------
    ratio:
        Grid ratio ``r > 1``. Finer grids (smaller ``r``) approach UIP's
        optimum at the cost of more candidates; the classic analysis uses 2.
    """

    name = "grid-uip"

    def __init__(self, ratio: float = 2.0):
        if not ratio > 1.0:
            raise PricingError("grid ratio must exceed 1")
        self.ratio = float(ratio)

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        sizes = instance.hypergraph.edge_sizes().astype(np.float64)
        valuations = instance.valuations
        nonempty = sizes > 0
        positive = nonempty & (valuations > 0)
        if not np.any(positive):
            return ItemPricing.uniform(instance.num_items, 0.0), {
                "num_candidates": 0,
                "best_price": 0.0,
            }

        sizes_pos = sizes[positive]
        values_pos = valuations[positive]
        top = float(np.max(values_pos))  # highest per-item price worth trying
        m = len(values_pos)
        k = float(np.max(sizes_pos))
        # Below h / (r * m * k) every buyer pays less than h / (m * r), so the
        # whole grid tail is dominated by selling the top buyer alone.
        floor = top / (self.ratio * m * k)
        num_candidates = 1 + max(0, math.ceil(math.log(top / floor, self.ratio)))
        candidates = top / self.ratio ** np.arange(num_candidates)

        # The whole grid is scored as one vector-revenue sweep by the active
        # revenue strategy; the scan below only applies the original
        # first-strict-improvement tie rule over the scored grid.
        revenues = default_evaluator().grid_revenues(
            candidates, sizes_pos, values_pos, PRICE_TOLERANCE
        )
        best_price = 0.0
        best_revenue = 0.0
        for price, revenue in zip(candidates, revenues):
            if revenue > best_revenue:
                best_revenue = float(revenue)
                best_price = float(price)

        return ItemPricing.uniform(instance.num_items, best_price), {
            "num_candidates": int(num_candidates),
            "best_price": best_price,
            "grid_revenue": best_revenue,
        }
