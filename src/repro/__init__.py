"""repro — reproduction of "Revenue Maximization for Query Pricing" (VLDB'19).

The package is organized bottom-up:

- :mod:`repro.lp` — LP modeling/solving substrate (scipy/HiGHS backend),
- :mod:`repro.db` — in-memory relational engine + SQL-subset front-end,
- :mod:`repro.support` — support-set ("neighboring database") generation,
- :mod:`repro.qirana` — conflict sets, the pricing broker, arbitrage checks,
- :mod:`repro.service` — the serving tier: concurrent, cached, micro-batched
  query pricing plus a load-generator benchmark harness,
- :mod:`repro.core` — hypergraphs, pricing functions, revenue, bounds, and the
  six pricing algorithms (UBP, UIP, LPIP, CIP, Layering, XOS),
- :mod:`repro.valuations` — buyer-valuation generative models,
- :mod:`repro.workloads` — the four paper workloads + synthetic constructions,
- :mod:`repro.experiments` — figure/table reproduction harness,
- :mod:`repro.online` — online posted-price learning (paper future work),
- :mod:`repro.bayesian` — posted pricing when valuations are distributions
  (the Bayesian setting of the paper's related work, Section 2),
- :mod:`repro.limited` — limited-supply envy-free pricing (Cheung & Swamy's
  original setting; exclusivity tiers for data products).
"""

from repro._version import __version__

__all__ = ["__version__"]
