"""Conflict-backend registry, engine facade, and diagnostics."""

import pytest

from repro.db.query import sql_query
from repro.exceptions import PricingError
from repro.qirana.backends import (
    ConflictBackend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.qirana.conflict import ConflictSetEngine
from repro.qirana.vectorized import VectorizedBackend, compile_batch_query


class TestRegistry:
    def test_builtin_backends_present(self, mini_support):
        names = available_backends()
        assert {"naive", "incremental", "vectorized", "auto"} <= set(names)

    def test_unknown_backend_raises(self, mini_support):
        with pytest.raises(PricingError, match="unknown conflict backend"):
            get_backend("nope", mini_support)

    def test_duplicate_registration_raises(self):
        with pytest.raises(PricingError, match="already registered"):
            register_backend("naive", ConflictBackend)

    def test_engine_accepts_backend_name(self, mini_support, mini_db):
        engine = ConflictSetEngine(mini_support, backend="vectorized")
        query = sql_query("select Name from City", mini_db)
        computation = engine.compute(query)
        assert computation.backend == "vectorized"

    def test_use_incremental_false_maps_to_naive(self, mini_support, mini_db):
        engine = ConflictSetEngine(mini_support, use_incremental=False)
        computation = engine.compute(sql_query("select Name from City", mini_db))
        assert computation.backend == "naive"
        assert computation.num_reexecuted == computation.num_candidates


class TestDiagnostics:
    def test_setup_time_separate_from_wall_time(self, mini_support, mini_db):
        # The bugfix under test: checker construction must not pollute the
        # per-candidate timing, so backends are comparable.
        engine = ConflictSetEngine(mini_support, backend="incremental")
        query = sql_query(
            "select Continent, count(Code) from Country group by Continent", mini_db
        )
        computation = engine.compute(query)
        assert computation.setup_seconds >= 0.0
        assert computation.wall_time_seconds >= 0.0
        assert computation.incremental

    def test_engine_aggregates_per_backend_diagnostics(self, mini_support, mini_db):
        engine = ConflictSetEngine(mini_support, backend="auto")
        queries = [
            "select Name from City",  # vectorizable shape (small -> incremental)
            "select distinct Continent from Country",  # falls back
        ]
        for text in queries:
            engine.compute(sql_query(text, mini_db))
        total_queries = sum(r["queries"] for r in engine.diagnostics.values())
        assert total_queries == 2
        for record in engine.diagnostics.values():
            assert record["candidates"] + 0 >= 0
            assert record["wall_time_seconds"] >= 0.0

    def test_vectorized_reports_no_reexecution_on_batch_path(
        self, mini_support, mini_db
    ):
        engine = ConflictSetEngine(mini_support, backend="vectorized")
        computation = engine.compute(sql_query("select Name from City", mini_db))
        assert computation.backend == "vectorized"
        assert computation.num_reexecuted == 0

    def test_auto_reports_the_deciding_backend(self, mini_support, mini_db):
        # Auto consults the unified shape matcher before claiming the batch
        # path: a shape the vectorized engine cannot compile must be
        # reported as decided by `incremental`, not `vectorized`.
        engine = ConflictSetEngine(
            mini_support, backend="auto", min_batch_candidates=1
        )
        batchable = engine.compute(
            sql_query("select Continent, count(*) from Country group by Continent", mini_db)
        )
        assert batchable.backend == "vectorized"
        fallback = engine.compute(
            sql_query("select distinct Continent from Country", mini_db)
        )
        assert fallback.backend == "incremental"
        assert set(engine.diagnostics) == {"vectorized", "incremental"}
        assert engine.diagnostics["vectorized"]["queries"] == 1
        assert engine.diagnostics["incremental"]["queries"] == 1

    def test_ssb_join_and_grouped_templates_decided_by_vectorized(self):
        # Acceptance: GROUP BY, MIN/MAX, and two-table equi-join templates
        # are decided by the batch path, visible in the backend counters.
        from repro.workloads import get_workload

        workload = get_workload("ssb", scale=0.1)
        support = workload.support(size=80, seed=5, mode="row")
        engine = ConflictSetEngine(support, backend="vectorized")
        queries = [
            query
            for query in workload.queries
            if len(query.referenced_tables) == 2 and "count(*)" in query.text
        ][:10]
        queries += [
            sql_query(
                "select d_month, count(*) from DimDate group by d_month",
                workload.database,
            ),
            sql_query("select max(lo_quantity) from LineOrder", workload.database),
        ]
        engine.build_hypergraph(queries)
        assert engine.diagnostics["vectorized"]["queries"] == len(queries)
        assert "incremental" not in engine.diagnostics


class TestBatchCompilation:
    def test_flat_plan_compiles(self, mini_support, mini_db):
        query = sql_query("select Name from City where Population > 1000", mini_db)
        plan, reason = compile_batch_query(query, mini_db)
        assert plan is not None
        assert reason is None

    def test_scalar_int_aggregates_compile(self, mini_db):
        for text in [
            "select count(*) from City",
            "select count(Name) from City",
            "select sum(Population) from City",
            "select avg(Population) from City",
        ]:
            plan, _ = compile_batch_query(sql_query(text, mini_db), mini_db)
            assert plan is not None, text

    @pytest.mark.parametrize(
        ("text", "kernel"),
        [
            ("select max(Population) from Country", "grouped"),
            ("select min(Name), max(Population) from Country", "grouped"),
            (
                "select Continent, count(Code) from Country group by Continent",
                "grouped",
            ),
            # float SUM/AVG: exact order-stable contribution enumeration,
            # scalar and grouped, single-table and joined
            ("select sum(LifeExpectancy) from Country", "grouped"),
            ("select avg(LifeExpectancy) from Country", "grouped"),
            (
                "select Continent, sum(LifeExpectancy) from Country "
                "group by Continent",
                "grouped",
            ),
            (
                "select sum(Percentage) from Country , CountryLanguage "
                "where Code = CountryCode",
                "grouped",
            ),
            (
                "select Name from Country , CountryLanguage "
                "where Code = CountryCode",
                "flat_join",
            ),
            (
                "select count(*) from Country , CountryLanguage "
                "where Code = CountryCode",
                "scalar",
            ),
            (
                "select Continent, count(*) from Country , CountryLanguage "
                "where Code = CountryCode group by Continent",
                "grouped",
            ),
            # 3-way left-deep chains: cascaded hash-index probes
            (
                "select City.Name from Country , City , CountryLanguage "
                "where Code = City.CountryCode "
                "and Code = CountryLanguage.CountryCode",
                "flat_join_join3",
            ),
            (
                "select count(*) from Country , City , CountryLanguage "
                "where Code = City.CountryCode "
                "and Code = CountryLanguage.CountryCode",
                "scalar_join3",
            ),
            # HAVING: visibility mask over grouped output
            (
                "select Continent, count(*) from Country group by Continent "
                "having count(*) > 1",
                "grouped",
            ),
            # ordered output: decided via order-stable contribution keys
            (
                "select Continent, count(*) from Country group by Continent "
                "order by Continent",
                "grouped",
            ),
            (
                "select Name from Country , CountryLanguage "
                "where Code = CountryCode order by Name",
                "flat_join",
            ),
        ],
    )
    def test_grouped_and_join_shapes_compile(self, mini_db, text, kernel):
        plan, reason = compile_batch_query(sql_query(text, mini_db), mini_db)
        assert plan is not None, (text, reason)
        assert plan.kernel_label == kernel, text

    @pytest.mark.parametrize(
        ("text", "expected_reason"),
        [
            (
                "select distinct Continent from Country",
                "unmatched-shape",
            ),
            (
                "select Continent, count(distinct Code) from Country "
                "group by Continent",
                "distinct-agg",
            ),
            # LIMIT is structural and unsupported by the shape matcher
            (
                "select Name from Country order by Population desc limit 2",
                "unmatched-shape",
            ),
            # self-join: one patch hits two source slots at once
            (
                "select a.Name from Country a , Country b "
                "where a.Code = b.Code",
                "unmatched-shape",
            ),
        ],
    )
    def test_unsupported_shapes_do_not_compile(self, mini_db, text, expected_reason):
        plan, reason = compile_batch_query(sql_query(text, mini_db), mini_db)
        assert plan is None, text
        assert reason == expected_reason, text

    def test_fallback_still_correct(self, mini_support, mini_db):
        query = sql_query("select distinct Continent from Country", mini_db)
        vectorized = ConflictSetEngine(mini_support, backend="vectorized")
        naive = ConflictSetEngine(mini_support, backend="naive")
        assert vectorized.conflict_set(query) == naive.conflict_set(query)
        computation = vectorized.compute(query)
        assert computation.backend == "incremental"

    def test_compiled_plans_are_cached(self, mini_support, mini_db):
        backend = VectorizedBackend(mini_support)
        query = sql_query("select Name from City", mini_db)
        first = backend.batch_plan(query)
        assert backend.batch_plan(query) is first


class TestBrokerBatchAPIs:
    def _market(self, mini_support):
        from repro.qirana.broker import QueryMarket

        market = QueryMarket(mini_support)
        market.set_flat_fee(5.0)
        return market

    def test_quote_batch_deduplicates_repeated_queries(self, mini_support, mini_db):
        market = self._market(mini_support)
        text = "select Name from City"
        quotes = market.quote_batch([text, text, text])
        assert len(quotes) == 3
        assert len({quote.price for quote in quotes}) == 1
        # Only one conflict computation ran for the repeated text.
        total_queries = sum(
            record["queries"] for record in market.engine.diagnostics.values()
        )
        assert total_queries == 1

    def test_quote_batch_matches_individual_quotes(self, mini_support, mini_db):
        market = self._market(mini_support)
        texts = [
            "select Name from City",
            "select count(Name) from Country where Continent = 'Asia'",
            "select Language from CountryLanguage",
        ]
        batch_quotes = market.quote_batch(texts)
        for text, quote in zip(texts, batch_quotes):
            single = market.quote(text)
            assert single.price == quote.price
            assert single.bundle == quote.bundle

    def test_quote_batch_requires_pricing(self, mini_support):
        from repro.exceptions import PricingError
        from repro.qirana.broker import QueryMarket

        market = QueryMarket(mini_support)
        with pytest.raises(PricingError):
            market.quote_batch(["select Name from City"])

    def test_build_hypergraph_fills_bundle_cache(self, mini_support, mini_db):
        market = self._market(mini_support)
        texts = ["select Name from City", "select Language from CountryLanguage"]
        hypergraph = market.build_hypergraph(texts)
        assert hypergraph.num_edges == 2
        for text, edge in zip(texts, hypergraph.edges):
            assert market._bundle_cache[text] == edge

    def test_market_conflict_backend_parameter(self, mini_support, mini_db):
        from repro.qirana.broker import QueryMarket

        market = QueryMarket(mini_support, conflict_backend="naive")
        assert market.engine.backend_name == "naive"
