"""Relations: a schema plus an ordered list of tuples.

Rows keep insertion order, which makes ``LIMIT`` deterministic without an
``ORDER BY`` — the engine is a deterministic function of the database, a
property the pricing framework requires of queries.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.db.schema import TableSchema, Value
from repro.exceptions import SchemaError


class Relation:
    """An in-memory table.

    Mutation is only supported through :meth:`insert` (bulk load),
    :meth:`set_cell` (the online base-patch path), and the
    copy-on-write helpers used by the support machinery
    (:meth:`with_cell_replaced`, :meth:`with_row_deleted`,
    :meth:`with_row_inserted`), which return new relations sharing row storage
    with the original wherever possible.
    """

    __slots__ = ("schema", "_rows")

    def __init__(self, schema: TableSchema, rows: Iterable[tuple[Value, ...]] = ()):
        self.schema = schema
        self._rows: list[tuple[Value, ...]] = []
        for row in rows:
            self.insert(row)

    def insert(self, row: tuple[Value, ...] | list[Value]) -> None:
        """Validate and append a row."""
        row = tuple(row)
        self.schema.validate_row(row)
        self._rows.append(row)

    def insert_many(self, rows: Iterable[tuple[Value, ...] | list[Value]]) -> None:
        for row in rows:
            self.insert(row)

    @property
    def rows(self) -> list[tuple[Value, ...]]:
        """The row list. Treat as read-only."""
        return self._rows

    @property
    def num_rows(self) -> int:
        return len(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Value, ...]]:
        return iter(self._rows)

    def cell(self, row_index: int, column: str | int) -> Value:
        """Value at (row, column); column by name or position."""
        column_index = (
            column if isinstance(column, int) else self.schema.column_index(column)
        )
        return self._rows[row_index][column_index]

    def set_cell(self, row_index: int, column: str | int, value: Value) -> None:
        """Replace one cell in place (the online base-patch path).

        Unlike :meth:`with_cell_replaced` this mutates the shared row
        storage, so every holder of this relation — in particular the
        conflict backends, which capture the base database by reference —
        observes the change without a rebuild.
        """
        column_index = (
            column if isinstance(column, int) else self.schema.column_index(column)
        )
        if not 0 <= row_index < len(self._rows):
            raise SchemaError(
                f"row index {row_index} out of range for table {self.schema.name!r}"
            )
        if not self.schema.columns[column_index].dtype.accepts(value):
            raise SchemaError(
                f"value {value!r} invalid for column "
                f"{self.schema.name}.{self.schema.columns[column_index].name}"
            )
        row = list(self._rows[row_index])
        row[column_index] = value
        self._rows[row_index] = tuple(row)

    def column_values(self, column: str | int) -> list[Value]:
        """All values of one column, in row order."""
        column_index = (
            column if isinstance(column, int) else self.schema.column_index(column)
        )
        return [row[column_index] for row in self._rows]

    # ------------------------------------------------------------------
    # Copy-on-write helpers (support-set machinery)
    # ------------------------------------------------------------------

    def _shallow_copy(self) -> "Relation":
        clone = Relation.__new__(Relation)
        clone.schema = self.schema
        clone._rows = list(self._rows)
        return clone

    def with_cell_replaced(self, row_index: int, column: str | int, value: Value) -> "Relation":
        """New relation identical to this one except one cell."""
        column_index = (
            column if isinstance(column, int) else self.schema.column_index(column)
        )
        if not 0 <= row_index < len(self._rows):
            raise SchemaError(
                f"row index {row_index} out of range for table {self.schema.name!r}"
            )
        if not self.schema.columns[column_index].dtype.accepts(value):
            raise SchemaError(
                f"value {value!r} invalid for column "
                f"{self.schema.name}.{self.schema.columns[column_index].name}"
            )
        clone = self._shallow_copy()
        row = list(clone._rows[row_index])
        row[column_index] = value
        clone._rows[row_index] = tuple(row)
        return clone

    def with_row_deleted(self, row_index: int) -> "Relation":
        """New relation with one row removed."""
        if not 0 <= row_index < len(self._rows):
            raise SchemaError(
                f"row index {row_index} out of range for table {self.schema.name!r}"
            )
        clone = self._shallow_copy()
        del clone._rows[row_index]
        return clone

    def with_row_inserted(self, row: tuple[Value, ...]) -> "Relation":
        """New relation with one row appended."""
        row = tuple(row)
        self.schema.validate_row(row)
        clone = self._shallow_copy()
        clone._rows.append(row)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.schema.name!r}, rows={len(self._rows)})"
