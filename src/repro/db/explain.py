"""Plan pretty-printing (EXPLAIN).

Renders a logical plan as an indented operator tree — used by the CLI's
``explain`` command, by tests asserting planner rewrites, and handy when
debugging why a query's conflict set looks wrong.
"""

from __future__ import annotations

from repro.db.expr import (
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    And,
    Not,
    Or,
)
from repro.db.plan import (
    Aggregate,
    CrossJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Sort,
    TableScan,
)


def format_expr(expr: Expr) -> str:
    """Compact, SQL-ish rendering of an expression tree."""
    if isinstance(expr, ColumnRef):
        return expr.display_name()
    if isinstance(expr, Literal):
        return repr(expr.value) if isinstance(expr.value, str) else str(expr.value)
    if isinstance(expr, Comparison):
        return f"{format_expr(expr.left)} {expr.op} {format_expr(expr.right)}"
    if isinstance(expr, Arithmetic):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, Between):
        return (
            f"{format_expr(expr.operand)} BETWEEN "
            f"{format_expr(expr.low)} AND {format_expr(expr.high)}"
        )
    if isinstance(expr, Like):
        negate = " NOT" if expr.negated else ""
        return f"{format_expr(expr.operand)}{negate} LIKE {expr.pattern!r}"
    if isinstance(expr, InList):
        negate = " NOT" if expr.negated else ""
        values = ", ".join(repr(v) for v in expr.values)
        return f"{format_expr(expr.operand)}{negate} IN ({values})"
    if isinstance(expr, IsNull):
        negate = " NOT" if expr.negated else ""
        return f"{format_expr(expr.operand)} IS{negate} NULL"
    if isinstance(expr, And):
        return f"({format_expr(expr.left)} AND {format_expr(expr.right)})"
    if isinstance(expr, Or):
        return f"({format_expr(expr.left)} OR {format_expr(expr.right)})"
    if isinstance(expr, Not):
        return f"NOT {format_expr(expr.operand)}"
    return repr(expr)  # pragma: no cover - future node types


def explain(plan: PlanNode, indent: int = 0) -> str:
    """Indented operator-tree rendering of a plan."""
    pad = "  " * indent
    if isinstance(plan, TableScan):
        alias = f" AS {plan.alias}" if plan.alias else ""
        return f"{pad}Scan {plan.table}{alias}"
    if isinstance(plan, Filter):
        return (
            f"{pad}Filter [{format_expr(plan.predicate)}]\n"
            + explain(plan.child, indent + 1)
        )
    if isinstance(plan, Project):
        items = ", ".join(
            f"{format_expr(item.expr)} AS {item.name}" for item in plan.items
        )
        return f"{pad}Project [{items}]\n" + explain(plan.child, indent + 1)
    if isinstance(plan, HashJoin):
        keys = ", ".join(
            f"{format_expr(l)} = {format_expr(r)}"
            for l, r in zip(plan.left_keys, plan.right_keys)
        )
        return (
            f"{pad}HashJoin [{keys}]\n"
            + explain(plan.left, indent + 1)
            + "\n"
            + explain(plan.right, indent + 1)
        )
    if isinstance(plan, CrossJoin):
        return (
            f"{pad}CrossJoin\n"
            + explain(plan.left, indent + 1)
            + "\n"
            + explain(plan.right, indent + 1)
        )
    if isinstance(plan, Aggregate):
        groups = ", ".join(format_expr(item.expr) for item in plan.group_items)
        aggregates = ", ".join(
            f"{spec.func}({'DISTINCT ' if spec.distinct else ''}"
            f"{format_expr(spec.arg) if spec.arg is not None else '*'}) AS {spec.name}"
            for spec in plan.aggregates
        )
        label = f"group by [{groups}] " if groups else ""
        return (
            f"{pad}Aggregate {label}[{aggregates}]\n"
            + explain(plan.child, indent + 1)
        )
    if isinstance(plan, Distinct):
        return f"{pad}Distinct\n" + explain(plan.child, indent + 1)
    if isinstance(plan, Sort):
        keys = ", ".join(
            f"{format_expr(key.expr)} {'ASC' if key.ascending else 'DESC'}"
            for key in plan.keys
        )
        return f"{pad}Sort [{keys}]\n" + explain(plan.child, indent + 1)
    if isinstance(plan, Limit):
        return f"{pad}Limit {plan.count}\n" + explain(plan.child, indent + 1)
    return f"{pad}{type(plan).__name__}"  # pragma: no cover - future nodes
