"""Solution objects returned by the LP solver backend."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.lp.model import LinExpr, Variable


@dataclass(frozen=True)
class SolveStats:
    """Diagnostics for a single solve call."""

    solver: str
    status: str
    iterations: int
    wall_time_seconds: float
    num_variables: int
    num_constraints: int


@dataclass
class LPSolution:
    """An optimal solution to an :class:`~repro.lp.model.LPModel`.

    Primal values are indexed by variable column; duals by constraint name
    (unnamed constraints are only reachable positionally via ``dual_by_index``).
    """

    objective: float
    primal: Mapping[int, float]
    duals_by_name: Mapping[str, float] = field(default_factory=dict)
    duals_by_index: Mapping[int, float] = field(default_factory=dict)
    stats: SolveStats | None = None

    def value(self, target: Variable | LinExpr) -> float:
        """Value of a variable or expression under the optimal assignment."""
        if isinstance(target, Variable):
            return self.primal.get(target.index, 0.0)
        return target.evaluate(self.primal)

    def values(self, variables: list[Variable]) -> list[float]:
        """Values of several variables, in order."""
        return [self.primal.get(v.index, 0.0) for v in variables]

    def dual(self, name: str) -> float:
        """Dual (shadow price) of the named constraint.

        For HiGHS, duals of ``<=`` constraints in a maximization problem are
        reported non-negative (the marginal revenue of relaxing the bound),
        which is the sign convention CIP expects for item prices.
        """
        return self.duals_by_name.get(name, 0.0)

    def dual_by_index(self, index: int) -> float:
        """Dual of the ``index``-th constraint added to the model."""
        return self.duals_by_index.get(index, 0.0)
