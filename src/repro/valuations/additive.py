"""Additive item-level valuation model (Figures 7a / 7b).

The paper's generative model for "parts of the database are worth more than
others": fix ``k`` level distributions ``D_i = Uniform[i, i+1]`` and an
assignment distribution ``D~`` over levels; each item ``j`` draws its level
``l_j ~ D~`` and then its price ``x_j ~ D_{l_j}``; the valuation of an edge
is ``v_e = sum_{j in e} x_j``. Two assignment distributions are used:
``Uniform[1, k]`` and ``Binomial(k, 1/2)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.hypergraph import Hypergraph
from repro.exceptions import PricingError
from repro.valuations.base import ValuationModel


class AdditiveValuations(ValuationModel):
    """Sum-of-item-prices valuations with level-structured items."""

    #: Supported level-assignment distributions.
    ASSIGNERS = ("uniform", "binomial")

    def __init__(self, k: int = 10, assigner: str = "uniform"):
        if k < 1:
            raise PricingError("number of levels k must be >= 1")
        if assigner not in self.ASSIGNERS:
            raise PricingError(
                f"assigner must be one of {self.ASSIGNERS}, got {assigner!r}"
            )
        self.k = int(k)
        self.assigner = assigner
        tilde = "unif" if assigner == "uniform" else "bin"
        self.name = f"additive({tilde},k={k})"

    def item_prices(
        self, num_items: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw per-item prices ``x_j`` (exposed for tests/ablations)."""
        if self.assigner == "uniform":
            levels = rng.integers(1, self.k + 1, size=num_items).astype(np.float64)
        else:
            levels = rng.binomial(self.k, 0.5, size=num_items).astype(np.float64)
        return levels + rng.uniform(0.0, 1.0, size=num_items)

    def generate(self, hypergraph: Hypergraph, rng: np.random.Generator) -> np.ndarray:
        prices = self.item_prices(hypergraph.num_items, rng)
        return np.array(
            [float(sum(prices[item] for item in edge)) for edge in hypergraph.edges]
        )
