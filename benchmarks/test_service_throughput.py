"""Pricing-service throughput benchmark.

The serving claim of the service layer: the canonical quote cache plus the
micro-batching scheduler must beat one-at-a-time ``QueryMarket.quote`` by at
least 3x on a Zipf-repeated uniform-workload request stream (measured margin
is ~2x over the bar; absolute wall-clock numbers flake on shared runners,
ratios do not). The artifact records the cache hit-rate and batch-size
counters in ``BENCH_service.json`` so the serving-path trajectory is tracked
across PRs alongside the backend and revenue-engine benchmarks.
"""

import pytest

from repro.experiments.figures import service_throughput

from benchmarks.conftest import save_bench_json

#: CI-scale stream: 4000 requests over 120 distinct queries, 8 clients.
CI_KWARGS = {
    "workload_name": "uniform",
    "scale": 0.15,
    "support_size": 250,
    "num_queries": 120,
    "num_requests": 4000,
    "zipf_s": 1.1,
    "num_clients": 8,
}

#: Laptop-scale stream for the --runslow tier: more distinct queries, a
#: larger support (costlier cold misses), and a longer stream.
FULL_KWARGS = {
    "workload_name": "uniform",
    "scale": 0.3,
    "support_size": 600,
    "num_queries": 300,
    "num_requests": 12000,
    "zipf_s": 1.1,
    "num_clients": 8,
}


def _check(artifact, num_requests: int) -> None:
    # Price parity with the sequential oracle is asserted inside
    # service_throughput; here we assert the speedup and that the counters
    # prove which path served the traffic.
    assert artifact.data["speedups"]["service"] >= 3.0, artifact.data["speedups"]
    service = artifact.data["diagnostics"]["service"]
    cache = service["quote_cache"]
    # Counter consistency: every load-run request consulted the quote cache
    # exactly once (the snapshot is taken before the parity re-quotes).
    assert cache["hits"] + cache["misses"] == num_requests, cache
    # Zipf repetition must actually exercise the cache...
    assert cache["hit_rate"] >= 0.5, cache
    # ...and the misses must have been micro-batched, more than one per flush.
    assert service["batches"] >= 1, service
    assert service["mean_batch_size"] > 1.0, service
    assert artifact.data["latency"]["p99_ms"] > 0.0


def test_service_throughput_uniform(benchmark):
    artifact = benchmark.pedantic(
        service_throughput, kwargs=CI_KWARGS, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_bench_json(artifact, "BENCH_service.json")
    _check(artifact, CI_KWARGS["num_requests"])


@pytest.mark.slow
def test_service_throughput_uniform_full(benchmark):
    """Laptop-scale variant, part of the workflow_dispatch --runslow job."""
    artifact = benchmark.pedantic(
        service_throughput, kwargs=FULL_KWARGS, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_bench_json(artifact, "BENCH_service_full.json")
    _check(artifact, FULL_KWARGS["num_requests"])
