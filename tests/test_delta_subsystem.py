"""The staged delta subsystem: log lifecycle, wire format, validation,
differential correctness against a rebuilt oracle, and snapshot versioning.

The differential tests are the subsystem's core claim: after *every* delta,
each quote of the incrementally-maintained market is **bit-equal** (exact
``==`` on float64, identical bundles) to a market rebuilt from scratch over
an identically-mutated copy of the database. The oracle shares the live
run's frozen instance objects — the sampler draws values from base cells,
so regenerating instances over the mutated base would describe a different
market entirely.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.delta import (
    APPLIED,
    CANCELLED,
    STAGED,
    AddInstance,
    DeltaLog,
    InsertBaseRows,
    PatchBase,
    RetireInstances,
    delta_from_dict,
    delta_to_dict,
    validate_op,
)
from repro.exceptions import (
    DeltaError,
    DeltaValidationError,
    SnapshotError,
)
from repro.qirana.broker import QueryMarket
from repro.qirana.weighted import uniform_calibrated_pricing
from repro.service import PricingService
from repro.service.sharding import ShardedPricingService
from repro.support.delta import CellDelta
from repro.support.generator import NeighborSampler, SupportSet

QUERIES = [
    "select Name from Country",
    "select Code from Country where Population > 20000000",
    "select avg(Population) from Country",
    "select Name from City where Population > 1000000",
    "select Continent, count(*) from Country group by Continent",
    "select CountryCode from CountryLanguage where Percentage > 90",
    "select max(LifeExpectancy) from Country",
    "select Name from Country where Continent = 'Europe'",
]

#: One delta of every kind, exercising every invalidation class: a patched
#: referenced column, a support add, retires, and a whole-table insert.
CHURN = [
    PatchBase("Country", 1, "Population", 99_000_000),
    AddInstance((CellDelta("City", 2, "Population", 4_000_000),)),
    RetireInstances((2, 7)),
    InsertBaseRows("CountryLanguage", (("IND", "Hindi", 39.9),)),
    PatchBase("Country", 0, "LifeExpectancy", 80.5),
]


def make_support(db):
    return NeighborSampler(db, rng=np.random.default_rng(11)).generate(40)


class TestDeltaLog:
    def test_lifecycle_and_counters(self):
        log = DeltaLog()
        op = CHURN[0]
        delta_id = log.accept(op)
        assert log.get(delta_id).status == STAGED
        assert log.staged_op(delta_id) is op
        version = log.mark_applied(delta_id)
        assert version == 1
        assert log.applied_version == 1
        assert log.get(delta_id).status == APPLIED
        assert log.get(delta_id).data_version == 1

        second = log.accept(CHURN[1])
        assert log.cancel(second).status == CANCELLED
        third = log.accept(CHURN[2])
        log.mark_rejected(third, "boom")
        assert log.get(third).error == "boom"
        assert log.applied_version == 1  # only applies advance the version
        assert log.counters.as_dict() == {
            "accepted": 3,
            "applied": 1,
            "cancelled": 1,
            "rejected": 1,
        }

    def test_versions_are_monotone_from_start_version(self):
        log = DeltaLog(start_version=7)
        assert log.applied_version == 7
        first = log.accept(CHURN[0])
        second = log.accept(CHURN[4])
        assert log.mark_applied(first) == 8
        assert log.mark_applied(second) == 9

    def test_terminal_states_are_sticky(self):
        log = DeltaLog()
        delta_id = log.accept(CHURN[0])
        log.mark_applied(delta_id)
        with pytest.raises(DeltaError, match="applied"):
            log.cancel(delta_id)
        with pytest.raises(DeltaError, match="applied"):
            log.staged_op(delta_id)
        cancelled = log.accept(CHURN[1])
        log.cancel(cancelled)
        with pytest.raises(DeltaError, match="cancelled"):
            log.mark_applied(cancelled)

    def test_unknown_id_raises(self):
        with pytest.raises(DeltaError, match="unknown delta id"):
            DeltaLog().get(99)


class TestWireFormat:
    @pytest.mark.parametrize("op", CHURN, ids=lambda op: op.kind)
    def test_round_trip(self, op):
        assert delta_from_dict(delta_to_dict(op)) == op

    def test_unknown_kind_raises(self):
        with pytest.raises(DeltaError, match="unknown delta kind"):
            delta_from_dict({"kind": "drop_table"})

    def test_missing_field_raises(self):
        with pytest.raises(DeltaError, match="missing"):
            delta_from_dict({"kind": "patch_base", "table": "Country"})

    def test_wrong_type_raises(self):
        with pytest.raises(DeltaError, match="invalid type"):
            delta_from_dict(
                {"kind": "patch_base", "table": "Country", "row_index": "one",
                 "column": "Population", "value": 1}
            )

    def test_non_object_payload_raises(self):
        with pytest.raises(DeltaError, match="JSON object"):
            delta_from_dict(["patch_base"])


class TestValidation:
    def test_unknown_table(self, mini_support):
        with pytest.raises(DeltaValidationError, match="unknown table"):
            validate_op(PatchBase("Nowhere", 0, "X", 1), mini_support)

    def test_unknown_column(self, mini_support):
        with pytest.raises(DeltaValidationError, match="no column"):
            validate_op(PatchBase("Country", 0, "Altitude", 1), mini_support)

    def test_row_out_of_range(self, mini_support):
        with pytest.raises(DeltaValidationError, match="out of range"):
            validate_op(PatchBase("Country", 40, "Population", 1), mini_support)

    def test_dtype_mismatch(self, mini_support):
        with pytest.raises(DeltaValidationError, match="invalid for column"):
            validate_op(
                PatchBase("Country", 0, "Population", "many"), mini_support
            )

    def test_noop_patch_refused(self, mini_support):
        current = mini_support.base.table("Country").cell(0, "Population")
        with pytest.raises(DeltaValidationError, match="equals the current"):
            validate_op(
                PatchBase("Country", 0, "Population", current), mini_support
            )

    def test_add_equal_to_base_refused(self, mini_support):
        base_value = mini_support.base.table("City").cell(1, "Population")
        op = AddInstance((CellDelta("City", 1, "Population", base_value),))
        with pytest.raises(DeltaValidationError, match="no-op neighbor"):
            validate_op(op, mini_support)

    def test_duplicate_cell_in_add_refused(self, mini_support):
        delta = CellDelta("City", 1, "Population", 42)
        other = CellDelta("City", 1, "Population", 43)
        with pytest.raises(DeltaValidationError, match="duplicate delta"):
            validate_op(AddInstance((delta, other)), mini_support)

    def test_retire_out_of_range(self, mini_support):
        with pytest.raises(DeltaValidationError, match="out of range"):
            validate_op(RetireInstances((len(mini_support),)), mini_support)

    def test_double_retire_refused(self, mini_support):
        mini_support.retire_instances([3])
        with pytest.raises(DeltaValidationError, match="already retired"):
            validate_op(RetireInstances((3,)), mini_support)

    def test_patch_creating_noop_neighbor_refused(self, mini_support):
        # Find a live instance delta and patch the base to its value: the
        # neighbor would become indistinguishable from the base.
        instance = mini_support.instance(0)
        delta = instance.deltas[0]
        op = PatchBase(delta.table, delta.row_index, delta.column, delta.value)
        with pytest.raises(DeltaValidationError, match="no-op"):
            validate_op(op, mini_support)

    def test_invalid_insert_row_refused(self, mini_support):
        with pytest.raises(DeltaValidationError, match="invalid for table"):
            validate_op(
                InsertBaseRows("City", ((1, "OnlyTwoValues"),)), mini_support
            )


def rebuild_oracle(db_factory, instances, retired, churn_upto, base_pricing):
    """A market rebuilt from scratch over an identically-mutated fresh db.

    ``instances`` are the live run's frozen instance objects (base deltas
    replayed below recreate the base they were sampled against), and the
    pricing replays the live tier's per-add ``extend_pricing`` evolution so
    price comparisons are bit-exact.
    """
    from repro.core.pricing import extend_pricing

    db = db_factory()
    support = SupportSet(db, list(instances))
    pricing = base_pricing
    size = len(support) - sum(
        1 for op in churn_upto if isinstance(op, AddInstance)
    )
    for op in churn_upto:
        if isinstance(op, PatchBase):
            db.table(op.table).set_cell(op.row_index, op.column, op.value)
        elif isinstance(op, InsertBaseRows):
            for row in op.rows:
                db.table(op.table).insert(tuple(row))
        elif isinstance(op, AddInstance):
            size += 1
            pricing = extend_pricing(pricing, size)
    support.retire_instances(sorted(retired))
    market = QueryMarket(support)
    market.set_pricing(pricing)
    market.build_hypergraph(QUERIES)
    return market


class TestMarketDifferential:
    def test_every_delta_kind_matches_rebuild(self, mini_db_factory):
        live_db = mini_db_factory()
        support = make_support(live_db)
        orig_instances = list(support.instances)
        base_pricing = uniform_calibrated_pricing(support, 100.0)
        market = QueryMarket(support)
        market.set_pricing(base_pricing)
        market.build_hypergraph(QUERIES)

        applied: list = []
        retired: set[int] = set()
        for op in CHURN:
            report = market.apply_delta(op)
            applied.append(op)
            retired.update(report.effect.retired_ids)
            all_instances = orig_instances + [
                support.instance(i)
                for i in range(len(orig_instances), len(support))
            ]
            oracle = rebuild_oracle(
                mini_db_factory, all_instances, retired, applied, base_pricing
            )
            for sql in QUERIES:
                served = market.quote(sql)
                expected = oracle.quote(sql)
                assert served.bundle == expected.bundle, (op.kind, sql)
                assert served.price == expected.price, (op.kind, sql)

    def test_rejected_delta_leaves_market_untouched(self, mini_db_factory):
        support = make_support(mini_db_factory())
        market = QueryMarket(support)
        market.set_pricing(uniform_calibrated_pricing(support, 100.0))
        before = {sql: market.quote(sql) for sql in QUERIES}
        with pytest.raises(DeltaValidationError):
            market.apply_delta(RetireInstances((999,)))
        for sql in QUERIES:
            after = market.quote(sql)
            assert after.price == before[sql].price
            assert after.bundle == before[sql].bundle


def make_tier(kind, support, pricing):
    if kind == "single":
        market = QueryMarket(support)
        market.set_pricing(pricing)
        return PricingService(market, start=False)
    service = ShardedPricingService(support, num_shards=3, start=False)
    service.install_pricing(pricing)
    return service


@pytest.mark.parametrize("tier", ["single", "sharded"])
class TestServiceTierDifferential:
    def test_churn_stream_matches_rebuild(self, tier, mini_db_factory):
        live_db = mini_db_factory()
        support = make_support(live_db)
        orig_instances = list(support.instances)
        base_pricing = uniform_calibrated_pricing(support, 100.0)
        service = make_tier(tier, support, base_pricing)
        for sql in QUERIES:  # warm every cache before the churn begins
            service.quote(sql)

        applied: list = []
        retired: set[int] = set()
        for op in CHURN:
            result = service.apply_delta(op)
            effect = getattr(result, "effect", result)
            applied.append(op)
            retired.update(effect.retired_ids)
            all_instances = orig_instances + [
                support.instance(i)
                for i in range(len(orig_instances), len(support))
            ]
            oracle = rebuild_oracle(
                mini_db_factory, all_instances, retired, applied, base_pricing
            )
            for sql in QUERIES:
                served = service.quote(sql)
                expected = oracle.quote(sql)
                assert served.bundle == expected.bundle, (op.kind, sql)
                assert served.price == expected.price, (op.kind, sql)

    def test_stats_expose_log_counters_and_version(self, tier, mini_db_factory):
        support = make_support(mini_db_factory())
        service = make_tier(
            tier, support, uniform_calibrated_pricing(support, 100.0)
        )
        staged = service.accept_delta(delta_to_dict(CHURN[0]))
        service.apply_delta(staged)
        cancelled = service.accept_delta(CHURN[4])
        service.cancel_delta(cancelled)
        with pytest.raises(DeltaValidationError):
            service.apply_delta(RetireInstances((999,)))
        stats = service.stats()
        assert stats.deltas == {
            "accepted": 3,
            "applied": 1,
            "cancelled": 1,
            "rejected": 1,
        }
        assert stats.data_version == 1
        assert service.data_version == 1


@pytest.mark.parametrize("tier", ["single", "sharded"])
class TestSnapshotVersioning:
    def test_round_trip_preserves_data_version(
        self, tier, mini_db_factory, tmp_path
    ):
        support = make_support(mini_db_factory())
        service = make_tier(
            tier, support, uniform_calibrated_pricing(support, 100.0)
        )
        service.apply_delta(CHURN[0])
        service.apply_delta(CHURN[1])
        before = {sql: service.quote(sql) for sql in QUERIES}
        path = tmp_path / "tier.json"
        service.snapshot(path)

        # The restored tier serves over the *mutated* support: build the
        # fresh service around the same (post-delta) support object, as a
        # rolling restart on the same node would.
        fresh = make_tier(
            tier, support, uniform_calibrated_pricing(support, 100.0)
        )
        fresh.restore(path)
        assert fresh.data_version == 2
        for sql in QUERIES:
            assert fresh.quote(sql).price == before[sql].price
        # Versions keep climbing from the restored high-water mark.
        fresh.apply_delta(CHURN[4])
        assert fresh.data_version == 3

    def test_restore_refuses_snapshots_older_than_live(
        self, tier, mini_db_factory, tmp_path
    ):
        """Regression: bundles from before an applied delta must not serve."""
        support = make_support(mini_db_factory())
        service = make_tier(
            tier, support, uniform_calibrated_pricing(support, 100.0)
        )
        service.quote(QUERIES[0])
        stale = tmp_path / "stale.json"
        service.snapshot(stale)  # data_version 0

        service.apply_delta(CHURN[0])  # live is now version 1
        before = service.quote(QUERIES[1])
        with pytest.raises(SnapshotError, match="older than the live"):
            service.restore(stale)
        # The refused restore left the live tier untouched.
        assert service.data_version == 1
        assert service.quote(QUERIES[1]).price == before.price

    def test_legacy_snapshot_without_version_restores_cold(
        self, tier, mini_db_factory, tmp_path
    ):
        """Pre-delta-era snapshots (no data_version) still restore at v0."""
        import json

        support = make_support(mini_db_factory())
        service = make_tier(
            tier, support, uniform_calibrated_pricing(support, 100.0)
        )
        path = tmp_path / "legacy.json"
        service.snapshot(path)
        payload = json.loads(path.read_text())
        payload.pop("data_version", None)
        path.write_text(json.dumps(payload))

        fresh = make_tier(
            tier, support, uniform_calibrated_pricing(support, 100.0)
        )
        fresh.restore(path)
        assert fresh.data_version == 0
