"""Abstract syntax tree for parsed SELECT statements.

The scalar-expression half of the AST *is* :mod:`repro.db.expr`; this module
only adds the statement-level shapes the parser produces before planning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.db.expr import Expr
from repro.exceptions import QueryError


@dataclass(frozen=True)
class TableRef:
    """``FROM`` clause entry: a table with an optional alias."""

    table: str
    alias: str | None = None

    @property
    def effective_alias(self) -> str:
        return (self.alias or self.table).lower()


@dataclass(frozen=True)
class SelectColumn:
    """A plain (non-aggregate) select item: expression with optional alias."""

    expr: Expr
    alias: str | None = None


@dataclass(frozen=True)
class SelectAggregate:
    """An aggregate select item: ``func([DISTINCT] expr | *) [AS alias]``."""

    func: str
    arg: Expr | None  # None encodes '*'
    distinct: bool = False
    alias: str | None = None


@dataclass(frozen=True)
class SelectStar:
    """A ``*`` (or ``alias.*``) select item."""

    qualifier: str | None = None


SelectItem = SelectColumn | SelectAggregate | SelectStar


@dataclass(frozen=True)
class AggregateCall(Expr):
    """An aggregate call appearing *inside* an expression (HAVING only).

    The evaluator cannot compute aggregates row by row, so this node is a
    placeholder: the planner rewrites it into a :class:`ColumnRef` pointing
    at the matching :class:`~repro.db.plan.AggregateSpec` output column.
    Binding one directly is a planner bug.
    """

    func: str
    arg: Expr | None  # None encodes '*'
    distinct: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,) if self.arg is not None else ()

    def _collect_columns(self, accumulator: set[tuple[str | None, str]]) -> None:
        if self.arg is not None:
            self.arg._collect_columns(accumulator)

    def bind(self, scope):
        raise QueryError(
            f"aggregate {self.func}(...) was not rewritten by the planner "
            "(aggregate calls are only valid in HAVING)"
        )


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


@dataclass
class SelectStatement:
    """A parsed SELECT query."""

    items: list[SelectItem]
    tables: list[TableRef]
    where: Expr | None = None
    group_by: list[Expr] = field(default_factory=list)
    having: Expr | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    distinct: bool = False

    @property
    def has_aggregates(self) -> bool:
        return any(isinstance(item, SelectAggregate) for item in self.items)
