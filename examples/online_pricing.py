"""Online posted-price learning — the paper's Section 7.2 future work.

Buyers with *unknown* fixed valuations arrive one at a time; the broker only
observes accept/reject. We compare bandit policies (UCB, EXP3, epsilon-greedy,
a multiplicative price walk) against the best fixed price in hindsight.

Run:  python examples/online_pricing.py
"""

from __future__ import annotations


from repro.online import (
    BuyerStream,
    EpsilonGreedyPolicy,
    Exp3Policy,
    PriceWalkPolicy,
    UCBPolicy,
    simulate,
)
from repro.online.policies import geometric_grid
from repro.valuations import UniformValuations
from repro.workloads.world import world_workload


def main() -> None:
    workload = world_workload(scale=0.15, expanded=False)
    support = workload.support(size=150, seed=0)
    hypergraph = workload.hypergraph(support)
    instance = UniformValuations(100).instance(hypergraph, rng=3)
    print(
        f"market: {instance.num_edges} query types, "
        f"valuations in [1, 100], horizon 5000 buyers\n"
    )

    grid = geometric_grid(1.0, 100.0, ratio=1.25)
    policies = [
        EpsilonGreedyPolicy(grid, epsilon=0.1, rng=1),
        UCBPolicy(grid, rng=1),
        Exp3Policy(grid, gamma=0.1, rng=1),
        PriceWalkPolicy(grid, rng=1),
    ]

    print(f"{'policy':12s} {'revenue':>10s} {'best fixed':>11s} "
          f"{'competitive':>12s} {'sales':>6s}")
    for policy in policies:
        stream = BuyerStream(instance, horizon=5000, rng=2)
        result = simulate(stream, policy)
        print(
            f"{result.policy:12s} {result.revenue:10.1f} "
            f"{result.best_fixed_revenue:11.1f} "
            f"{result.competitive_ratio:12.2f} {result.sales:6d}"
        )

    print(
        "\nThe bandit policies converge toward the best fixed posted price "
        "without ever seeing a valuation — only accept/reject bits."
    )


if __name__ == "__main__":
    main()
