"""Plan-level query canonicalization for the serving tier.

The broker's bundle cache is keyed by raw SQL text, so ``select * from City
where ID between 5 and 10`` and the same query with different whitespace,
keyword case, or a table alias occupy separate entries and each pay a full
conflict-set computation. Prices, however, are a function of the *planned*
query alone: two texts with the same plan have the same conflict set against
every support instance, hence the same bundle and the same price.

:func:`canonical_key` fingerprints the planned query — the normalized plan
shape plus its literals — so textual variants collapse onto one cache entry:

- whitespace/keyword case vanish at parse time (the fingerprint never sees
  the text),
- table aliases are rewritten to the base-table name they stand for
  (position-disambiguated when the same table is scanned twice, so distinct
  sides of a self-join never collapse),
- column/table identifier case is lowered,
- AND/OR operands and symmetric comparisons are sorted into a canonical
  order, so ``a = 1 and b = 2`` matches ``b = 2 and a = 1`` and ``1 = a``,
- output column *names* are ignored (``select Name`` vs ``select Name as n``
  answer-label differences never change a conflict set).

Supported plans are serialized through the same canonical decomposition the
conflict backends use (:func:`repro.qirana.shapes.match_shape`), so the
fingerprint normalizes exactly the structure the engine prices; unmatched
shapes (DISTINCT, LIMIT, cross joins, ...) fall back to a generic recursive
walk of the plan tree. The key is a SHA-256 digest of the canonical form;
:func:`canonical_form` exposes the readable serialization for tests.
"""

from __future__ import annotations

import hashlib

from repro.db.database import Database
from repro.db.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.db.plan import (
    Aggregate,
    CrossJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    PlanNode,
    Project,
    Sort,
    TableScan,
)
from repro.db.query import Query
from repro.qirana.shapes import QueryShape, SourceSide, resolve_shape

#: Comparison operators whose operand order carries no meaning.
_SYMMETRIC_OPS = frozenset({"=", "!="})


def _scan_order(plan: PlanNode) -> list[TableScan]:
    """Every TableScan of the plan, in deterministic left-to-right order."""
    scans: list[TableScan] = []
    stack: list[PlanNode] = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, TableScan):
            scans.append(node)
        # children() is left-to-right; reversed() keeps DFS pre-order.
        stack.extend(reversed(node.children()))
    return scans


class _AliasMap:
    """Rewrites alias qualifiers to canonical base-table names.

    Each scan's effective alias maps to its table name; when one table is
    scanned more than once (self-joins), occurrences are disambiguated by
    scan position (``city@0``, ``city@1``) so aliases of *different* scans
    never collapse, while any consistent renaming of the aliases does.
    """

    def __init__(self, plan: PlanNode, catalog: Database | None):
        self.catalog = catalog
        scans = _scan_order(plan)
        counts: dict[str, int] = {}
        for scan in scans:
            counts[scan.table.lower()] = counts.get(scan.table.lower(), 0) + 1
        seen: dict[str, int] = {}
        self.alias_to_name: dict[str, str] = {}
        self.tables: list[str] = []
        for scan in scans:
            table = scan.table.lower()
            occurrence = seen.get(table, 0)
            seen[table] = occurrence + 1
            name = table if counts[table] == 1 else f"{table}@{occurrence}"
            self.alias_to_name[scan.effective_alias] = name
            self.tables.append(table)

    def qualifier(self, qualifier: str | None) -> str:
        """Canonical name for a column's qualifier (``?`` when unresolvable)."""
        if qualifier is not None:
            return self.alias_to_name.get(qualifier.lower(), qualifier.lower())
        if len(self.alias_to_name) == 1:
            return next(iter(self.alias_to_name.values()))
        return "?"

    def unqualified(self, column: str) -> str:
        """Resolve an unqualified column against the catalog when possible."""
        if len(self.alias_to_name) == 1:
            return next(iter(self.alias_to_name.values()))
        if self.catalog is not None:
            owners = sorted(
                {
                    name
                    for alias, name in self.alias_to_name.items()
                    if self.catalog.has_table(name.split("@")[0])
                    and self.catalog.table(name.split("@")[0]).schema.has_column(column)
                }
            )
            if len(owners) == 1:
                return owners[0]
        return "?"


def _literal(value) -> str:
    """Type-tagged literal rendering: 5, 5.0, and '5' stay distinct."""
    return f"{type(value).__name__}:{value!r}"


def _expr(node: Expr, aliases: _AliasMap) -> str:
    if isinstance(node, ColumnRef):
        if node.qualifier is None:
            owner = aliases.unqualified(node.name.lower())
        else:
            owner = aliases.qualifier(node.qualifier)
        return f"col({owner}.{node.name.lower()})"
    if isinstance(node, Literal):
        return f"lit({_literal(node.value)})"
    if isinstance(node, Comparison):
        op, left_node, right_node = node.op, node.left, node.right
        if op in ("<", "<="):
            # Order comparisons canonicalize to >/>= with flipped operands,
            # so ``5 < x`` and ``x > 5`` share a form.
            op = ">" if op == "<" else ">="
            left_node, right_node = right_node, left_node
        left = _expr(left_node, aliases)
        right = _expr(right_node, aliases)
        if op in _SYMMETRIC_OPS:
            left, right = sorted((left, right))
        return f"cmp({op},{left},{right})"
    if isinstance(node, Between):
        return (
            f"between({_expr(node.operand, aliases)},"
            f"{_expr(node.low, aliases)},{_expr(node.high, aliases)})"
        )
    if isinstance(node, Like):
        negation = "!" if node.negated else ""
        return f"{negation}like({_expr(node.operand, aliases)},{node.pattern!r})"
    if isinstance(node, InList):
        values = ",".join(sorted(_literal(value) for value in node.values))
        negation = "!" if node.negated else ""
        return f"{negation}in({_expr(node.operand, aliases)},[{values}])"
    if isinstance(node, IsNull):
        negation = "!" if node.negated else ""
        return f"{negation}isnull({_expr(node.operand, aliases)})"
    if isinstance(node, (And, Or)):
        connective = "and" if isinstance(node, And) else "or"
        parts = sorted(_flatten(node, type(node), aliases))
        return f"{connective}({','.join(parts)})"
    if isinstance(node, Not):
        return f"not({_expr(node.operand, aliases)})"
    if isinstance(node, Arithmetic):
        return (
            f"arith({node.op},{_expr(node.left, aliases)},"
            f"{_expr(node.right, aliases)})"
        )
    # Third-party expression nodes: fall back to class + children (sound —
    # unknown kinds never collapse with known ones).
    children = ",".join(_expr(child, aliases) for child in node.children())
    return f"{type(node).__name__}({children})"


def _flatten(node: Expr, connective: type, aliases: _AliasMap) -> list[str]:
    """Associativity-normalized operands of a nested And/Or chain."""
    if isinstance(node, connective):
        return _flatten(node.left, connective, aliases) + _flatten(
            node.right, connective, aliases
        )
    return [_expr(node, aliases)]


def _predicate(predicate: Expr | None, aliases: _AliasMap) -> str:
    """Canonical conjunct-sorted rendering of an optional filter predicate."""
    if predicate is None:
        return "-"
    if isinstance(predicate, And):
        return ",".join(sorted(_flatten(predicate, And, aliases)))
    return _expr(predicate, aliases)


def _side(side: SourceSide, aliases: _AliasMap) -> str:
    table = aliases.alias_to_name[side.scan.effective_alias]
    predicate = _predicate(
        side.predicate.predicate if side.predicate is not None else None, aliases
    )
    return f"{table}[{predicate}]"


def _shape_form(shape: QueryShape, ordered: bool, aliases: _AliasMap) -> str:
    """Serialize the canonical decomposition the conflict backends share."""
    if shape.single is not None:
        source = _side(shape.single, aliases)
    else:
        levels = []
        for level in shape.levels:
            keys = ",".join(
                # Join equality is symmetric: normalize each key pair's order.
                "~".join(sorted((_expr(left, aliases), _expr(right, aliases))))
                for left, right in zip(level.join.left_keys, level.join.right_keys)
            )
            levels.append(f"join[{keys}]{_side(level.right, aliases)}")
        source = _side(shape.leftmost, aliases) + "".join(levels)
    parts = [f"src({source})"]
    if shape.residual is not None:
        parts.append(f"where({_predicate(shape.residual.predicate, aliases)})")
    if shape.aggregate is not None:
        groups = ";".join(
            _expr(item.expr, aliases) for item in shape.aggregate.group_items
        )
        specs = ";".join(
            f"{spec.func.lower()}"
            f"{'!' if spec.distinct else ''}"
            f"({_expr(spec.arg, aliases) if spec.arg is not None else '*'})"
            for spec in shape.aggregate.aggregates
        )
        parts.append(f"agg(by:{groups}|{specs})")
    if shape.having is not None:
        parts.append(f"having({_predicate(shape.having.predicate, aliases)})")
    parts.append(
        "proj(" + ";".join(_expr(item.expr, aliases) for item in shape.project.items) + ")"
    )
    if ordered:
        parts.append("ordered")
    return "|".join(parts)


def _node_form(node: PlanNode, aliases: _AliasMap) -> str:
    """Generic recursive serialization for shapes match_shape rejects."""
    if isinstance(node, TableScan):
        return f"scan({aliases.alias_to_name[node.effective_alias]})"
    if isinstance(node, Filter):
        return f"filter({_predicate(node.predicate, aliases)},{_node_form(node.child, aliases)})"
    if isinstance(node, Project):
        items = ";".join(_expr(item.expr, aliases) for item in node.items)
        return f"project({items},{_node_form(node.child, aliases)})"
    if isinstance(node, Aggregate):
        groups = ";".join(_expr(item.expr, aliases) for item in node.group_items)
        specs = ";".join(
            f"{spec.func.lower()}"
            f"{'!' if spec.distinct else ''}"
            f"({_expr(spec.arg, aliases) if spec.arg is not None else '*'})"
            for spec in node.aggregates
        )
        return f"aggregate(by:{groups}|{specs},{_node_form(node.child, aliases)})"
    if isinstance(node, HashJoin):
        keys = ",".join(
            "~".join(sorted((_expr(left, aliases), _expr(right, aliases))))
            for left, right in zip(node.left_keys, node.right_keys)
        )
        return (
            f"hashjoin([{keys}],{_node_form(node.left, aliases)},"
            f"{_node_form(node.right, aliases)})"
        )
    if isinstance(node, CrossJoin):
        return (
            f"crossjoin({_node_form(node.left, aliases)},"
            f"{_node_form(node.right, aliases)})"
        )
    if isinstance(node, Sort):
        keys = ";".join(
            f"{_expr(key.expr, aliases)}:{'asc' if key.ascending else 'desc'}"
            for key in node.keys
        )
        return f"sort({keys},{_node_form(node.child, aliases)})"
    if isinstance(node, Distinct):
        return f"distinct({_node_form(node.child, aliases)})"
    if isinstance(node, Limit):
        return f"limit({node.count},{_node_form(node.child, aliases)})"
    children = ",".join(_node_form(child, aliases) for child in node.children())
    return f"{type(node).__name__}({children})"


def canonical_form(query: Query, catalog: Database | None = None) -> str:
    """Readable canonical serialization of a planned query.

    ``catalog`` (the market's base database) lets unqualified columns in
    multi-table plans resolve to their owning table; without it they render
    as ``?.column``, which is still deterministic, merely less collapsing.
    """
    aliases = _AliasMap(query.plan, catalog)
    plan = query.plan
    ordered = query.ordered
    sort_suffix = ""
    if isinstance(plan, Sort):
        # match_shape folds the Sort into the `ordered` flag; the sort keys
        # themselves still distinguish queries (different ORDER BY columns
        # produce different answer sequences), so serialize them here.
        keys = ";".join(
            f"{_expr(key.expr, aliases)}:{'asc' if key.ascending else 'desc'}"
            for key in plan.keys
        )
        sort_suffix = f"|sortkeys({keys})"
    shape = resolve_shape(plan)
    if shape is not None:
        return _shape_form(shape, ordered or shape.ordered, aliases) + sort_suffix
    body = _node_form(plan, aliases)
    if ordered and not isinstance(plan, Sort):
        body += "|ordered"
    return body


def canonical_key(query: Query, catalog: Database | None = None) -> str:
    """SHA-256 fingerprint of :func:`canonical_form` — the cache key."""
    return hashlib.sha256(
        canonical_form(query, catalog).encode("utf-8")
    ).hexdigest()


# ----------------------------------------------------------------------
# Template fingerprinting: the canonical form with literals stripped
# ----------------------------------------------------------------------
#
# Literal-variants of one query template (same shape, different constants)
# share a *template fingerprint*: every Literal renders as a type-tagged hole
# (``lit(int:?)``) and the stripped nodes are collected in canonical order —
# wherever the canonical form sorts (AND/OR conjuncts, symmetric
# comparisons), the template renderer sorts by the *stripped* strings, so two
# variants written in different conjunct orders extract their literal vectors
# at matching positions. Ties between stripped-identical operands are broken
# by original order, which is sound because every sorted connective commutes.
#
# Structural (never parameterized): LIKE patterns, IN-list values, LIMIT
# counts, and ORDER BY keys — the batch compiler specializes on those, so
# differing values are genuinely different templates. Literal *types* are
# part of the hole tag so an ``int`` variant never binds into a template
# compiled for ``str`` holes.

#: sort key for (stripped form, literal nodes) pairs.
def _strip(pair: tuple[str, list]) -> str:
    return pair[0]


def _texpr(node: Expr, aliases: _AliasMap) -> tuple[str, list[Literal]]:
    """(canonical form with literal holes, stripped Literal nodes in order)."""
    if isinstance(node, ColumnRef):
        return _expr(node, aliases), []
    if isinstance(node, Literal):
        return f"lit({type(node.value).__name__}:?)", [node]
    if isinstance(node, Comparison):
        op, left_node, right_node = node.op, node.left, node.right
        if op in ("<", "<="):
            op = ">" if op == "<" else ">="
            left_node, right_node = right_node, left_node
        left = _texpr(left_node, aliases)
        right = _texpr(right_node, aliases)
        if op in _SYMMETRIC_OPS:
            left, right = sorted((left, right), key=_strip)
        return f"cmp({op},{left[0]},{right[0]})", left[1] + right[1]
    if isinstance(node, Between):
        operand = _texpr(node.operand, aliases)
        low = _texpr(node.low, aliases)
        high = _texpr(node.high, aliases)
        return (
            f"between({operand[0]},{low[0]},{high[0]})",
            operand[1] + low[1] + high[1],
        )
    if isinstance(node, Like):
        operand = _texpr(node.operand, aliases)
        negation = "!" if node.negated else ""
        return f"{negation}like({operand[0]},{node.pattern!r})", operand[1]
    if isinstance(node, InList):
        operand = _texpr(node.operand, aliases)
        values = ",".join(sorted(_literal(value) for value in node.values))
        negation = "!" if node.negated else ""
        return f"{negation}in({operand[0]},[{values}])", operand[1]
    if isinstance(node, IsNull):
        operand = _texpr(node.operand, aliases)
        negation = "!" if node.negated else ""
        return f"{negation}isnull({operand[0]})", operand[1]
    if isinstance(node, (And, Or)):
        connective = "and" if isinstance(node, And) else "or"
        parts = sorted(_tflatten(node, type(node), aliases), key=_strip)
        literals = [lit for part in parts for lit in part[1]]
        return f"{connective}({','.join(part[0] for part in parts)})", literals
    if isinstance(node, Not):
        operand = _texpr(node.operand, aliases)
        return f"not({operand[0]})", operand[1]
    if isinstance(node, Arithmetic):
        left = _texpr(node.left, aliases)
        right = _texpr(node.right, aliases)
        return f"arith({node.op},{left[0]},{right[0]})", left[1] + right[1]
    # Unknown expression kinds keep their literals baked in (structural).
    return _expr(node, aliases), []


def _tflatten(
    node: Expr, connective: type, aliases: _AliasMap
) -> list[tuple[str, list[Literal]]]:
    if isinstance(node, connective):
        return _tflatten(node.left, connective, aliases) + _tflatten(
            node.right, connective, aliases
        )
    return [_texpr(node, aliases)]


def _tpredicate(
    predicate: Expr | None, aliases: _AliasMap
) -> tuple[str, list[Literal]]:
    if predicate is None:
        return "-", []
    if isinstance(predicate, And):
        parts = sorted(_tflatten(predicate, And, aliases), key=_strip)
        literals = [lit for part in parts for lit in part[1]]
        return ",".join(part[0] for part in parts), literals
    return _texpr(predicate, aliases)


def _tside(side: SourceSide, aliases: _AliasMap) -> tuple[str, list[Literal]]:
    table = aliases.alias_to_name[side.scan.effective_alias]
    predicate, literals = _tpredicate(
        side.predicate.predicate if side.predicate is not None else None, aliases
    )
    return f"{table}[{predicate}]", literals


def _tshape_form(
    shape: QueryShape, ordered: bool, aliases: _AliasMap
) -> tuple[str, list[Literal]]:
    """Literal-stripped twin of :func:`_shape_form` (same section order)."""
    literals: list[Literal] = []
    if shape.single is not None:
        source, side_literals = _tside(shape.single, aliases)
        literals.extend(side_literals)
    else:
        source, leftmost_literals = _tside(shape.leftmost, aliases)
        literals.extend(leftmost_literals)
        for level in shape.levels:
            key_parts = []
            for left, right in zip(level.join.left_keys, level.join.right_keys):
                pair = sorted(
                    (_texpr(left, aliases), _texpr(right, aliases)), key=_strip
                )
                key_parts.append("~".join(part[0] for part in pair))
                literals.extend(lit for part in pair for lit in part[1])
            right_form, right_literals = _tside(level.right, aliases)
            literals.extend(right_literals)
            source += f"join[{','.join(key_parts)}]{right_form}"
    parts = [f"src({source})"]
    if shape.residual is not None:
        form, residual_literals = _tpredicate(shape.residual.predicate, aliases)
        literals.extend(residual_literals)
        parts.append(f"where({form})")
    if shape.aggregate is not None:
        group_forms = []
        for item in shape.aggregate.group_items:
            form, item_literals = _texpr(item.expr, aliases)
            group_forms.append(form)
            literals.extend(item_literals)
        spec_forms = []
        for spec in shape.aggregate.aggregates:
            if spec.arg is not None:
                arg_form, arg_literals = _texpr(spec.arg, aliases)
                literals.extend(arg_literals)
            else:
                arg_form = "*"
            spec_forms.append(
                f"{spec.func.lower()}{'!' if spec.distinct else ''}({arg_form})"
            )
        parts.append(f"agg(by:{';'.join(group_forms)}|{';'.join(spec_forms)})")
    if shape.having is not None:
        form, having_literals = _tpredicate(shape.having.predicate, aliases)
        literals.extend(having_literals)
        parts.append(f"having({form})")
    proj_forms = []
    for item in shape.project.items:
        form, item_literals = _texpr(item.expr, aliases)
        proj_forms.append(form)
        literals.extend(item_literals)
    parts.append(f"proj({';'.join(proj_forms)})")
    if ordered:
        parts.append("ordered")
    return "|".join(parts), literals


def template_form(
    query: Query,
    catalog: Database | None = None,
    shape: QueryShape | None = None,
) -> tuple[str, list[Literal]] | None:
    """(literal-stripped canonical form, stripped Literal nodes in order).

    Returns ``None`` for plans :func:`~repro.qirana.shapes.match_shape`
    rejects (templates only exist for shapes the conflict backends
    decompose) and for the degenerate case of one Literal node shared
    between two canonical positions, which could not bind two values.
    Pass ``shape`` when the caller already resolved it to skip the memo
    lookup.
    """
    plan = query.plan
    aliases = _AliasMap(plan, catalog)
    sort_suffix = ""
    if isinstance(plan, Sort):
        # Sort keys are structural: the batch engine never evaluates them,
        # so a literal inside ORDER BY must not become a bindable hole.
        keys = ";".join(
            f"{_expr(key.expr, aliases)}:{'asc' if key.ascending else 'desc'}"
            for key in plan.keys
        )
        sort_suffix = f"|sortkeys({keys})"
    if shape is None:
        shape = resolve_shape(plan)
    if shape is None:
        return None
    form, literals = _tshape_form(shape, query.ordered or shape.ordered, aliases)
    if len({id(node) for node in literals}) != len(literals):
        return None
    return form + sort_suffix, literals


def template_fingerprint(
    query: Query,
    catalog: Database | None = None,
    shape: QueryShape | None = None,
) -> tuple[str, list[Literal]] | None:
    """(SHA-256 of :func:`template_form`, stripped Literal nodes in order).

    Literal-variants of one template share the digest; the node list is the
    canonical binding order — position ``i`` of one variant's extracted
    vector binds the hole that position ``i`` of any other variant's vector
    fills.
    """
    stripped = template_form(query, catalog, shape)
    if stripped is None:
        return None
    form, literals = stripped
    digest = hashlib.sha256(form.encode("utf-8")).hexdigest()
    return digest, literals
