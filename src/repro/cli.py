"""Command-line interface: ``repro-pricing``.

Subcommands::

    repro-pricing workloads                      # list workloads + stats
    repro-pricing algorithms                     # list pricing algorithms
    repro-pricing backends                       # list conflict-set backends
    repro-pricing strategies                     # list revenue strategies
    repro-pricing price --workload skewed --algorithm lpip [--support 500]
                        [--conflict-backend auto] [--revenue-strategy scalar]
    repro-pricing bench-backends --workload uniform  # backend speed comparison
    repro-pricing bench-revenue --workload uniform   # revenue engine comparison
    repro-pricing serve-bench --workload uniform     # service vs sequential quoting
    repro-pricing serve-bench --shards 4             # sharded-tier scaling bench
    repro-pricing serve-bench --http                 # in-process vs over-the-wire
    repro-pricing serve --port 8080                  # HTTP tier until SIGTERM
    repro-pricing bench-check                        # gate BENCH_*.json vs baselines
    repro-pricing loadgen --mode open --rate 2000    # synthetic service traffic
    repro-pricing figure fig5a-uniform-skewed    # reproduce one figure panel
    repro-pricing table table3                   # reproduce one table
    repro-pricing ext heuristics|limited|saa     # extension experiments

The bench commands additionally write machine-readable summaries
(``BENCH_backends.json`` / ``BENCH_pricing.json`` / ``BENCH_service.json``;
``--json PATH`` to move, ``--no-json`` to skip) so perf is trackable across
revisions.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-pricing",
        description="Revenue maximization for query pricing (VLDB'19 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("workloads", help="list the paper's query workloads")
    commands.add_parser("algorithms", help="list the pricing algorithms")
    commands.add_parser("backends", help="list the conflict-set backends")
    commands.add_parser("strategies", help="list the revenue-engine strategies")

    price = commands.add_parser("price", help="run one algorithm on one workload")
    price.add_argument("--workload", default="skewed",
                       choices=["skewed", "uniform", "tpch", "ssb"])
    price.add_argument("--algorithm", default="lpip")
    price.add_argument("--support", type=int, default=400)
    price.add_argument("--scale", type=float, default=0.3)
    price.add_argument("--valuation-k", type=float, default=100.0)
    price.add_argument("--seed", type=int, default=1)
    price.add_argument("--conflict-backend", default="auto",
                       help="conflict-set backend (see `backends`)")
    price.add_argument("--revenue-strategy", default=None,
                       help="revenue-engine strategy (see `strategies`; "
                            "default: vectorized)")

    bench = commands.add_parser(
        "bench-backends", help="time hypergraph construction per conflict backend"
    )
    bench.add_argument("--workload", default="uniform",
                       choices=["skewed", "uniform", "tpch", "ssb"])
    bench.add_argument("--support", type=int, default=None)
    bench.add_argument("--scale", type=float, default=None)
    bench.add_argument("--queries", type=int, default=None)
    bench.add_argument("--join-only", action="store_true",
                       help="restrict to two-table equi-join templates "
                            "(times the vectorized join kernels vs the "
                            "incremental checkers)")
    bench.add_argument("--template", default=None,
                       help="with --join-only: keep only queries containing "
                            "this substring (e.g. 'count(*)')")
    bench.add_argument("--tables", type=int, default=2,
                       help="with --join-only: join width to time (e.g. 3 "
                            "for the cascaded three-way kernels)")
    bench.add_argument("--having-min", type=int, default=None,
                       help="with --join-only: keep grouped templates and "
                            "append 'having count(*) >= N' to each (times "
                            "the HAVING visibility-mask kernel)")
    bench.add_argument("--json", dest="json_path", default="BENCH_backends.json",
                       help="where to write the machine-readable summary")
    bench.add_argument("--no-json", action="store_true",
                       help="skip writing the JSON summary")

    bench_templates = commands.add_parser(
        "bench-templates",
        help="time miss-path plan resolution with vs without the "
             "shape-keyed template cache",
    )
    bench_templates.add_argument("--workload", default="ssb",
                                 choices=["skewed", "uniform", "tpch", "ssb"])
    bench_templates.add_argument("--support", type=int, default=None)
    bench_templates.add_argument("--scale", type=float, default=None)
    bench_templates.add_argument("--queries", type=int, default=None,
                                 help="distinct workload queries in the pool")
    bench_templates.add_argument("--requests", type=int, default=700,
                                 help="length of the replayed query stream")
    bench_templates.add_argument("--zipf", type=float, default=1.1,
                                 help="Zipf skew of the stream (0 = uniform)")
    bench_templates.add_argument("--json", dest="json_path",
                                 default="BENCH_template_cache.json",
                                 help="where to write the machine-readable "
                                      "summary")
    bench_templates.add_argument("--no-json", action="store_true",
                                 help="skip writing the JSON summary")

    bench_updates = commands.add_parser(
        "bench-updates",
        help="time incremental delta maintenance vs rebuild-from-scratch "
             "on a churn stream of market deltas",
    )
    bench_updates.add_argument("--workload", default="uniform",
                               choices=["skewed", "uniform", "tpch", "ssb"])
    bench_updates.add_argument("--support", type=int, default=500)
    bench_updates.add_argument("--scale", type=float, default=None)
    bench_updates.add_argument("--queries", type=int, default=80,
                               help="tracked workload queries the market "
                                    "keeps priced across deltas")
    bench_updates.add_argument("--steps", type=int, default=24,
                               help="deltas in the churn stream (patches, "
                                    "adds, retires, inserts)")
    bench_updates.add_argument("--seed", type=int, default=0)
    bench_updates.add_argument("--json", dest="json_path",
                               default="BENCH_updates.json",
                               help="where to write the machine-readable "
                                    "summary")
    bench_updates.add_argument("--no-json", action="store_true",
                               help="skip writing the JSON summary")

    bench_rev = commands.add_parser(
        "bench-revenue",
        help="time a pricing algorithm per revenue-engine strategy",
    )
    bench_rev.add_argument("--workload", default="uniform",
                           choices=["skewed", "uniform", "tpch", "ssb"])
    bench_rev.add_argument("--support", type=int, default=None)
    bench_rev.add_argument("--scale", type=float, default=None)
    bench_rev.add_argument("--algorithm", default="ascent",
                           help="pricing algorithm to sweep (default: the "
                                "coordinate-ascent inner loop)")
    bench_rev.add_argument("--valuation-k", type=float, default=300.0)
    bench_rev.add_argument("--json", dest="json_path", default="BENCH_pricing.json",
                           help="where to write the machine-readable summary")
    bench_rev.add_argument("--no-json", action="store_true",
                           help="skip writing the JSON summary")

    serve = commands.add_parser(
        "serve-bench",
        help="benchmark micro-batched service quoting vs sequential quotes",
    )
    serve.add_argument("--workload", default="uniform",
                       choices=["skewed", "uniform", "tpch", "ssb"])
    serve.add_argument("--support", type=int, default=None)
    serve.add_argument("--scale", type=float, default=None)
    serve.add_argument("--queries", type=int, default=120,
                       help="distinct workload queries in the request pool")
    serve.add_argument("--requests", type=int, default=4000,
                       help="total requests in the zipf-repeated stream")
    serve.add_argument("--clients", type=int, default=8,
                       help="concurrent closed-loop clients")
    serve.add_argument("--zipf", type=float, default=1.1,
                       help="zipf skew of query repetition (0 = uniform)")
    serve.add_argument("--batch-size", type=int, default=32,
                       help="micro-batch flush size")
    serve.add_argument("--batch-delay", type=float, default=0.001,
                       help="micro-batch flush deadline (seconds)")
    serve.add_argument("--shards", type=int, default=None,
                       help="benchmark the sharded tier instead: stream "
                            "throughput at 1 shard vs this many shards "
                            "(figures.sharded_throughput)")
    serve.add_argument("--cache-capacity", type=int, default=48,
                       help="with --shards: per-shard quote/bundle cache "
                            "capacity (the scaling lever)")
    serve.add_argument("--queue-depth", type=int, default=512,
                       help="with --shards: per-shard admission-control "
                            "queue bound")
    serve.add_argument("--http", action="store_true",
                       help="benchmark the HTTP front-end instead: the same "
                            "zipf stream in process vs over loopback "
                            "sockets (figures.http_throughput; JSON goes "
                            "to BENCH_http.json unless --json overrides)")
    serve.add_argument("--process-shards", type=int, default=None,
                       help="benchmark the process-per-shard tier instead: "
                            "open-loop throughput at 1 worker process vs "
                            "this many (figures.multicore_throughput; JSON "
                            "goes to BENCH_multicore.json unless --json "
                            "overrides)")
    serve.add_argument("--json", dest="json_path", default="BENCH_service.json",
                       help="where to write the machine-readable summary")
    serve.add_argument("--no-json", action="store_true",
                       help="skip writing the JSON summary")

    server_cmd = commands.add_parser(
        "serve",
        help="serve a pricing tier over HTTP until SIGTERM/SIGINT "
             "(graceful drain; optional warm-start snapshot)",
    )
    server_cmd.add_argument("--workload", default="uniform",
                            choices=["skewed", "uniform", "tpch", "ssb"])
    server_cmd.add_argument("--support", type=int, default=300)
    server_cmd.add_argument("--scale", type=float, default=0.15)
    server_cmd.add_argument("--host", default="127.0.0.1")
    server_cmd.add_argument("--port", type=int, default=8080,
                            help="listen port (0 picks a free one)")
    server_cmd.add_argument("--shards", type=int, default=None,
                            help="serve a sharded tier with this many shards "
                                 "(default: the single-market service)")
    server_cmd.add_argument("--full-price", type=float, default=100.0)
    server_cmd.add_argument("--seed", type=int, default=0)
    server_cmd.add_argument("--snapshot", default=None,
                            help="write the warm state here on drain")
    server_cmd.add_argument("--restore", default=None,
                            help="restore a warm-state snapshot before "
                                 "serving (a rolling restart's second half)")

    delta_cmd = commands.add_parser(
        "apply-delta",
        help="stage, apply, or cancel a market delta on a running "
             "pricing server (POST /delta)",
    )
    delta_cmd.add_argument("--url", default="http://127.0.0.1:8080",
                           help="base URL of the running server")
    delta_cmd.add_argument("--action", default="apply",
                           choices=["accept", "apply", "cancel"])
    delta_cmd.add_argument("--delta", default=None,
                           help="inline JSON delta op, e.g. "
                                '\'{"kind": "patch_base", "table": "part", '
                                '"row_index": 0, "column": "p_size", '
                                '"value": 7}\'')
    delta_cmd.add_argument("--delta-file", default=None,
                           help="path to a JSON file holding the delta op")
    delta_cmd.add_argument("--delta-id", type=int, default=None,
                           help="staged delta id (apply/cancel)")
    delta_cmd.add_argument("--timeout", type=float, default=10.0,
                           help="HTTP timeout in seconds")

    bench_check = commands.add_parser(
        "bench-check",
        help="fail when fresh BENCH_*.json figures regress vs committed "
             "baselines",
    )
    bench_check.add_argument("--baselines", default="benchmarks/baselines",
                             help="directory of committed baseline "
                                  "BENCH_*.json files")
    bench_check.add_argument("--current", default="benchmarks/artifacts/ci",
                             help="directory the fresh run wrote its "
                                  "BENCH_*.json files to")
    bench_check.add_argument("--tolerance", type=float, default=0.5,
                             help="allowed fractional drop in speedup "
                                  "ratios before failing (default 0.5: a "
                                  "6x baseline fails below 3x)")
    bench_check.add_argument("--throughput-tolerance", type=float, default=None,
                             help="also compare absolute throughput "
                                  "figures with this tolerance (off by "
                                  "default: absolute numbers do not "
                                  "survive a machine change)")
    bench_check.add_argument("--pattern", default="BENCH_*.json",
                             help="glob of baseline files to compare "
                                  "(default BENCH_*.json; a dedicated CI "
                                  "job narrows this to its own figure, "
                                  "e.g. BENCH_multicore.json)")
    bench_check.add_argument("--allow-missing", action="append", default=[],
                             metavar="NAME",
                             help="baseline file this leg legitimately "
                                  "cannot produce (repeatable; e.g. "
                                  "BENCH_http.json on a leg without "
                                  "sockets) — still compared when present")

    load = commands.add_parser(
        "loadgen", help="drive a pricing service with synthetic traffic"
    )
    load.add_argument("--workload", default="uniform",
                      choices=["skewed", "uniform", "tpch", "ssb"])
    load.add_argument("--support", type=int, default=300)
    load.add_argument("--scale", type=float, default=0.15)
    load.add_argument("--queries", type=int, default=120)
    load.add_argument("--requests", type=int, default=2000)
    load.add_argument("--clients", type=int, default=8)
    load.add_argument("--zipf", type=float, default=1.1)
    load.add_argument("--mode", default="closed", choices=["closed", "open"])
    load.add_argument("--rate", type=float, default=None,
                      help="open-loop arrival rate (requests/second)")
    load.add_argument("--seed", type=int, default=0)

    figure = commands.add_parser("figure", help="reproduce a figure panel")
    figure.add_argument("figure_id", help="e.g. fig4-skewed, fig5a-uniform-tpch, fig8-ssb")

    table = commands.add_parser("table", help="reproduce a table")
    table.add_argument("table_id", choices=["table3", "table4", "table5", "table6"])

    explain = commands.add_parser(
        "explain", help="show the logical plan of a SQL query"
    )
    explain.add_argument("sql", help="SELECT statement over a workload schema")
    explain.add_argument("--workload", default="skewed",
                         choices=["skewed", "uniform", "tpch", "ssb"])

    ext = commands.add_parser(
        "ext", help="run an extension experiment (beyond the paper)"
    )
    ext.add_argument("experiment", choices=["heuristics", "limited", "saa"])
    ext.add_argument("--workload", default="skewed",
                     choices=["skewed", "uniform", "tpch", "ssb"])
    ext.add_argument("--support", type=int, default=None)
    ext.add_argument("--scale", type=float, default=None)

    args = parser.parse_args(argv)
    handler = {
        "workloads": _cmd_workloads,
        "algorithms": _cmd_algorithms,
        "backends": _cmd_backends,
        "strategies": _cmd_strategies,
        "price": _cmd_price,
        "bench-backends": _cmd_bench_backends,
        "bench-templates": _cmd_bench_templates,
        "bench-updates": _cmd_bench_updates,
        "bench-revenue": _cmd_bench_revenue,
        "apply-delta": _cmd_apply_delta,
        "serve-bench": _cmd_serve_bench,
        "serve": _cmd_serve,
        "bench-check": _cmd_bench_check,
        "loadgen": _cmd_loadgen,
        "figure": _cmd_figure,
        "table": _cmd_table,
        "explain": _cmd_explain,
        "ext": _cmd_ext,
    }[args.command]
    return handler(args)


def _cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import get_workload

    for name in ("skewed", "uniform", "tpch", "ssb"):
        workload = get_workload(name, scale=0.2)
        print(
            f"{name:8s}  m={workload.num_queries:5d}  "
            f"rows={workload.database.total_rows:6d}  {workload.description}"
        )
    return 0


def _cmd_algorithms(args: argparse.Namespace) -> int:
    from repro.core.algorithms import available_algorithms

    for name in available_algorithms():
        print(name)
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    from repro.qirana.backends import available_backends

    for name in available_backends():
        print(name)
    return 0


def _cmd_strategies(args: argparse.Namespace) -> int:
    from repro.core.evaluator import available_revenue_strategies

    for name in available_revenue_strategies():
        print(name)
    return 0


def _write_bench_json(artifact, args: argparse.Namespace) -> None:
    from repro.experiments.export import export_bench_json

    if getattr(args, "no_json", False):
        return
    path = export_bench_json(artifact, args.json_path)
    print(f"wrote {path}")


def _cmd_bench_backends(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    if not args.join_only:
        for name, flag in (
            (args.template, "--template"),
            (args.having_min, "--having-min"),
        ):
            if name is not None:
                print(f"error: {flag} requires --join-only", file=sys.stderr)
                return 2
        if args.tables != 2:
            print("error: --tables requires --join-only", file=sys.stderr)
            return 2
    if args.join_only:
        artifact = figures.join_backend_comparison(
            workload_name=args.workload,
            scale=args.scale,
            support_size=args.support,
            num_queries=args.queries,
            template=args.template,
            num_tables=args.tables,
            having_min=args.having_min,
        )
    else:
        artifact = figures.backend_comparison(
            workload_name=args.workload,
            scale=args.scale,
            support_size=args.support,
            num_queries=args.queries,
        )
    print(artifact)
    _write_bench_json(artifact, args)
    return 0


def _cmd_bench_templates(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    artifact = figures.template_cache_speedup(
        workload_name=args.workload,
        scale=args.scale,
        support_size=args.support,
        num_queries=args.queries,
        num_requests=args.requests,
        zipf_s=args.zipf,
    )
    print(artifact)
    _write_bench_json(artifact, args)
    return 0


def _cmd_bench_updates(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    artifact = figures.update_churn_speedup(
        workload_name=args.workload,
        scale=args.scale,
        support_size=args.support,
        num_queries=args.queries,
        num_steps=args.steps,
        seed=args.seed,
    )
    print(artifact)
    _write_bench_json(artifact, args)
    return 0


def _cmd_apply_delta(args: argparse.Namespace) -> int:
    import json
    import urllib.error
    import urllib.request

    delta = None
    if args.delta_file is not None:
        with open(args.delta_file, encoding="utf-8") as handle:
            delta = json.load(handle)
    elif args.delta is not None:
        delta = json.loads(args.delta)

    if args.action == "accept" and delta is None:
        print("apply-delta: --action accept needs --delta or --delta-file",
              file=sys.stderr)
        return 2
    if args.action == "cancel" and args.delta_id is None:
        print("apply-delta: --action cancel needs --delta-id", file=sys.stderr)
        return 2
    if args.action == "apply" and delta is None and args.delta_id is None:
        print("apply-delta: --action apply needs --delta, --delta-file, "
              "or --delta-id", file=sys.stderr)
        return 2

    payload: dict = {"action": args.action}
    if delta is not None:
        payload["delta"] = delta
    if args.delta_id is not None:
        payload["delta_id"] = args.delta_id
    request = urllib.request.Request(
        args.url.rstrip("/") + "/delta",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=args.timeout) as response:
            body = json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        print(f"HTTP {exc.code}: {exc.read().decode('utf-8', 'replace')}",
              file=sys.stderr)
        return 1
    except (urllib.error.URLError, OSError) as exc:
        print(f"apply-delta: cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(body, indent=2, sort_keys=True))
    return 0


def _cmd_bench_revenue(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    artifact = figures.revenue_comparison(
        workload_name=args.workload,
        scale=args.scale,
        support_size=args.support,
        algorithm=args.algorithm,
        valuation_k=args.valuation_k,
    )
    print(artifact)
    _write_bench_json(artifact, args)
    return 0


def _cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    exclusive = [args.http, args.shards is not None,
                 args.process_shards is not None]
    if sum(exclusive) > 1:
        print("error: --http, --shards, and --process-shards are separate "
              "benchmarks", file=sys.stderr)
        return 2
    if args.process_shards is not None:
        if args.process_shards < 1:
            print("error: --process-shards must be >= 1", file=sys.stderr)
            return 2
        if args.json_path == "BENCH_service.json":
            args.json_path = "BENCH_multicore.json"
        if args.process_shards >= 4:
            counts = (1, 2, args.process_shards)
        elif args.process_shards != 1:
            counts = (1, args.process_shards)
        else:
            counts = (1,)
        artifact = figures.multicore_throughput(
            workload_name=args.workload,
            scale=args.scale,
            support_size=args.support,
            num_queries=args.queries,
            num_requests=args.requests,
            zipf_s=args.zipf,
            num_clients=args.clients,
            process_shard_counts=counts,
            max_batch_size=args.batch_size,
            max_batch_delay=args.batch_delay,
        )
        print(artifact)
        _write_bench_json(artifact, args)
        return 0
    if args.http:
        if args.json_path == "BENCH_service.json":
            args.json_path = "BENCH_http.json"
        artifact = figures.http_throughput(
            workload_name=args.workload,
            scale=args.scale,
            support_size=args.support,
            num_queries=args.queries,
            num_requests=args.requests,
            zipf_s=args.zipf,
            num_clients=args.clients,
            max_batch_size=args.batch_size,
            max_batch_delay=args.batch_delay,
        )
        print(artifact)
        _write_bench_json(artifact, args)
        return 0
    if args.shards is not None:
        if args.shards < 1:
            print("error: --shards must be >= 1", file=sys.stderr)
            return 2
        shard_counts = (1, args.shards) if args.shards != 1 else (1,)
        artifact = figures.sharded_throughput(
            workload_name=args.workload,
            scale=args.scale,
            support_size=args.support,
            num_queries=args.queries,
            num_requests=args.requests,
            zipf_s=args.zipf,
            num_clients=args.clients,
            shard_counts=shard_counts,
            cache_capacity=args.cache_capacity,
            max_batch_size=args.batch_size,
            max_batch_delay=args.batch_delay,
            max_queue_depth=args.queue_depth,
        )
    else:
        artifact = figures.service_throughput(
            workload_name=args.workload,
            scale=args.scale,
            support_size=args.support,
            num_queries=args.queries,
            num_requests=args.requests,
            zipf_s=args.zipf,
            num_clients=args.clients,
            max_batch_size=args.batch_size,
            max_batch_delay=args.batch_delay,
        )
    print(artifact)
    _write_bench_json(artifact, args)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.qirana.broker import QueryMarket
    from repro.qirana.weighted import uniform_calibrated_pricing
    from repro.service.http import PricingHTTPServer
    from repro.service.server import PricingService
    from repro.service.sharding import ShardedPricingService
    from repro.workloads import get_workload

    workload = get_workload(args.workload, scale=args.scale)
    support = workload.support(size=args.support, seed=args.seed, mode="row")
    if args.shards is not None:
        service = ShardedPricingService(support, num_shards=args.shards)
    else:
        service = PricingService(QueryMarket(support))
    if args.restore is not None:
        service.restore(args.restore)
        print(f"restored warm state from {args.restore}", flush=True)
    else:
        service.install_pricing(
            uniform_calibrated_pricing(support, args.full_price)
        )
    server = PricingHTTPServer(
        service,
        host=args.host,
        port=args.port,
        snapshot_path=args.snapshot,
    )

    async def main() -> None:
        await server.start()
        server.install_signal_handlers()
        print(f"serving {args.workload} on {server.url} "
              f"(SIGTERM drains{' + snapshots' if args.snapshot else ''})",
              flush=True)
        await server.serve_until_drained()

    asyncio.run(main())
    print("drained", flush=True)
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from repro.experiments.benchcheck import check_bench_dirs, render_report

    comparisons, missing = check_bench_dirs(
        args.baselines,
        args.current,
        tolerance=args.tolerance,
        throughput_tolerance=args.throughput_tolerance,
        pattern=args.pattern,
        allow_missing=args.allow_missing,
    )
    report, ok = render_report(comparisons, missing)
    print(report)
    return 0 if ok else 1


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.qirana.broker import QueryMarket
    from repro.qirana.weighted import uniform_calibrated_pricing
    from repro.service import LoadProfile, PricingService, run_load
    from repro.workloads import get_workload

    workload = get_workload(args.workload, scale=args.scale)
    support = workload.support(size=args.support, seed=args.seed, mode="row")
    texts = [query.text for query in workload.queries[: args.queries]]
    with PricingService(QueryMarket(support)) as service:
        service.install_pricing(uniform_calibrated_pricing(support, 100.0))
        report = run_load(
            service,
            texts,
            LoadProfile(
                num_requests=args.requests,
                num_clients=args.clients,
                zipf_s=args.zipf,
                mode=args.mode,
                arrival_rate=args.rate,
                seed=args.seed,
            ),
        )
    print(report)
    return 0


def _cmd_price(args: argparse.Namespace) -> int:
    from contextlib import nullcontext

    from repro.core.algorithms import get_algorithm
    from repro.core.evaluator import use_strategy
    from repro.valuations import UniformValuations
    from repro.workloads import get_workload

    workload = get_workload(args.workload, scale=args.scale)
    support = workload.support(size=args.support, seed=args.seed, cells_per_instance=2)
    hypergraph = workload.hypergraph(support, backend=args.conflict_backend)
    model = UniformValuations(args.valuation_k)
    instance = model.instance(hypergraph, rng=np.random.default_rng(args.seed))

    algorithm = get_algorithm(args.algorithm)
    scope = (
        use_strategy(args.revenue_strategy)
        if args.revenue_strategy is not None
        else nullcontext()
    )
    with scope:
        result = algorithm.run(instance)
    total = instance.total_valuation()
    print(f"workload        : {args.workload} (m={instance.num_edges}, n={instance.num_items})")
    print(f"algorithm       : {result.algorithm}")
    print(f"revenue         : {result.revenue:.2f}")
    print(f"sum valuations  : {total:.2f}")
    print(f"normalized      : {result.revenue / total:.3f}")
    print(f"buyers served   : {result.report.num_sold}/{instance.num_edges}")
    print(f"runtime         : {result.runtime_seconds:.2f}s")
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    figure_id = args.figure_id
    artifact = _dispatch_figure(figures, figure_id)
    if artifact is None:
        print(f"unknown figure id: {figure_id}", file=sys.stderr)
        return 2
    print(artifact)
    return 0


def _dispatch_figure(figures, figure_id: str):
    parts = figure_id.split("-")
    workloads = ("skewed", "uniform", "tpch", "ssb")
    if parts[0] == "fig4" and len(parts) == 2 and parts[1] in workloads:
        return figures.figure4_edge_distribution(parts[1])
    if parts[0] == "fig5a" and len(parts) == 3 and parts[2] in workloads:
        if parts[1] == "uniform":
            return figures.figure5a_uniform(parts[2])
        if parts[1] == "zipf":
            return figures.figure5a_zipf(parts[2])
    if parts[0] == "fig5b" and len(parts) == 3 and parts[2] in workloads:
        if parts[1] == "exp":
            return figures.figure5b_exponential(parts[2])
        if parts[1] == "normal":
            return figures.figure5b_normal(parts[2])
    if parts[0] == "fig7" and len(parts) == 3 and parts[2] in workloads:
        if parts[1] in ("uniform", "binomial"):
            return figures.figure7_additive(parts[2], assigner=parts[1])
    if parts[0] == "fig8" and len(parts) == 2 and parts[1] in workloads:
        return figures.figure8_support_sweep(parts[1])
    return None


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    if args.table_id == "table3":
        artifact = figures.table3_hypergraph_characteristics()
    elif args.table_id == "table4":
        artifact = figures.table4_runtimes()
    elif args.table_id == "table5":
        artifact = figures.support_runtime_table("skewed", include_construction=True)
    else:
        artifact = figures.support_runtime_table("ssb", include_construction=False)
    print(artifact)
    return 0


def _cmd_ext(args: argparse.Namespace) -> int:
    from repro.experiments import extensions

    producers = {
        "heuristics": extensions.extension_heuristics,
        "limited": extensions.extension_limited_capacity,
        "saa": extensions.extension_bayesian_saa,
    }
    artifact = producers[args.experiment](
        workload_name=args.workload,
        scale=args.scale,
        support_size=args.support,
    )
    print(artifact)
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.db.explain import explain
    from repro.db.query import sql_query
    from repro.workloads import get_workload

    workload = get_workload(args.workload, scale=0.1)
    query = sql_query(args.sql, workload.database)
    print(explain(query.plan))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
