"""Bayesian posted pricing — valuations as distributions, not point values.

The paper assumes the broker knows every buyer's valuation exactly ("found by
performing market research", Section 3.3) and cites the Bayesian
posted-pricing literature as the neighbouring model (Section 2). This
subpackage implements that neighbouring model on top of the same hypergraph
machinery: each buyer's valuation is a *distribution*, the broker posts
prices before valuations realize, and the objective is expected revenue.

Three layers:

- :mod:`repro.bayesian.distributions` — valuation distributions with
  survival functions, revenue curves, Myerson-style reserve prices and
  hazard-rate diagnostics;
- :mod:`repro.bayesian.posted` — a :class:`BayesianInstance` (hypergraph +
  one distribution per edge), exact expected-revenue evaluation of any
  pricing function, and expected-revenue-optimal uniform bundle pricing;
- :mod:`repro.bayesian.saa` — sample-average approximation: realize sampled
  instances, reuse the deterministic algorithms of
  :mod:`repro.core.algorithms`, and measure how fast empirical pricing
  converges to the distribution-optimal one.
"""

from repro.bayesian.distributions import (
    DiscreteValuation,
    EmpiricalValuation,
    ExponentialValuation,
    NormalValuation,
    ParetoValuation,
    UniformValuation,
    ValuationDistribution,
    has_monotone_hazard_rate,
    myerson_reserve,
    optimal_posted_price,
)
from repro.bayesian.posted import (
    BayesianInstance,
    ExpectedRevenueUBP,
    average_realized_revenue,
    expected_revenue,
    uniform_edge_distributions,
)
from repro.bayesian.saa import (
    SAAResult,
    pooled_empirical_distribution,
    saa_pricing,
    saa_uniform_bundle_price,
    stack_samples,
)

__all__ = [
    "BayesianInstance",
    "DiscreteValuation",
    "EmpiricalValuation",
    "ExpectedRevenueUBP",
    "ExponentialValuation",
    "NormalValuation",
    "ParetoValuation",
    "SAAResult",
    "UniformValuation",
    "ValuationDistribution",
    "average_realized_revenue",
    "expected_revenue",
    "has_monotone_hazard_rate",
    "myerson_reserve",
    "optimal_posted_price",
    "pooled_empirical_distribution",
    "saa_pricing",
    "saa_uniform_bundle_price",
    "stack_samples",
    "uniform_edge_distributions",
]
