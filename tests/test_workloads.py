"""Tests for the four paper workloads (small scales for speed)."""

import pytest

from repro.db.query import sql_query
from repro.exceptions import WorkloadError
from repro.workloads import get_workload
from repro.workloads.base import build_workload_instance
from repro.workloads.ssb import cities, nations, ssb_database, ssb_queries
from repro.workloads.tpch import containers, part_types, tpch_database, tpch_queries
from repro.workloads.uniform import uniform_workload
from repro.workloads.world import (
    NUM_COUNTRIES,
    base_queries,
    expanded_queries,
    world_database,
    world_workload,
)
from repro.valuations import UniformValuations


class TestWorldDatabase:
    def test_schema_has_21_attributes(self):
        database = world_database(scale=0.1)
        total = sum(len(r.schema.columns) for r in database.tables())
        assert total == 21

    def test_three_tables(self):
        database = world_database(scale=0.1)
        assert set(database.table_names) == {"Country", "City", "CountryLanguage"}

    def test_country_count_fixed(self):
        database = world_database(scale=0.1)
        assert len(database.table("Country")) == NUM_COUNTRIES

    def test_deterministic(self):
        a = world_database(scale=0.1, seed=3)
        b = world_database(scale=0.1, seed=3)
        assert a.table("Country").rows == b.table("Country").rows

    def test_special_values_present(self):
        database = world_database(scale=0.1)
        codes = set(database.table("Country").column_values("Code"))
        assert {"USA", "GRC", "FRA"} <= codes
        languages = set(database.table("CountryLanguage").column_values("Language"))
        assert {"Greek", "English", "Spanish"} <= languages

    def test_every_base_query_runs(self):
        database = world_database(scale=0.1)
        for sql in base_queries():
            result = sql_query(sql, database).run(database)
            assert result is not None

    def test_queries_return_data(self):
        database = world_database(scale=0.1)
        greek = sql_query(
            "select Name from Country , CountryLanguage "
            "where Code = CountryCode and Language = 'Greek'",
            database,
        ).run(database)
        assert greek.num_rows >= 1


class TestSkewedWorkload:
    def test_exactly_986_queries(self):
        assert len(expanded_queries()) == 986

    def test_unexpanded_34(self):
        workload = world_workload(scale=0.1, expanded=False)
        assert workload.num_queries == 34

    def test_workload_builds(self):
        workload = world_workload(scale=0.1)
        assert workload.num_queries == 986
        assert workload.name == "skewed"


class TestUniformWorkload:
    def test_query_count(self):
        workload = uniform_workload(scale=0.1, num_queries=50)
        assert workload.num_queries == 50

    def test_equal_selectivity(self):
        workload = uniform_workload(scale=0.1, num_queries=30)
        sizes = [
            query.run(workload.database).num_rows for query in workload.queries
        ]
        assert max(sizes) - min(sizes) <= 1  # same window width everywhere

    def test_hypergraph_concentrated(self):
        workload = uniform_workload(scale=0.1, num_queries=40)
        support = workload.support(size=120, seed=1)
        hypergraph = workload.hypergraph(support)
        sizes = hypergraph.edge_sizes()
        assert sizes.std() < sizes.mean()  # concentrated, unlike skewed


class TestTPCH:
    def test_domains(self):
        assert len(part_types()) == 150
        assert len(containers()) == 40

    def test_exactly_220_queries(self):
        assert len(tpch_queries()) == 220

    def test_database_builds_and_queries_run(self):
        database = tpch_database(scale=0.1)
        for sql in tpch_queries()[:30]:
            sql_query(sql, database).run(database)

    def test_workload(self):
        workload = get_workload("tpch", scale=0.1)
        assert workload.num_queries == 220


class TestSSB:
    def test_domains(self):
        assert len(nations()) == 25
        assert len(cities()) == 250

    def test_exactly_701_queries(self):
        assert len(ssb_queries()) == 701

    def test_database_builds_and_queries_run(self):
        database = ssb_database(scale=0.1)
        for sql in ssb_queries()[:25] + ssb_queries()[-25:]:
            sql_query(sql, database).run(database)

    def test_workload(self):
        workload = get_workload("ssb", scale=0.1)
        assert workload.num_queries == 701


class TestWorkloadHelpers:
    def test_get_workload_unknown(self):
        with pytest.raises(WorkloadError):
            get_workload("nope")

    def test_hypergraph_cached_per_support(self):
        workload = world_workload(scale=0.1, expanded=False)
        support = workload.support(size=50, seed=0)
        first = workload.hypergraph(support)
        assert workload.hypergraph(support) is first

    def test_build_workload_instance(self):
        workload = world_workload(scale=0.1, expanded=False)
        instance, support = build_workload_instance(
            workload, UniformValuations(50), support_size=60
        )
        assert instance.num_edges == 34
        assert instance.num_items == 60
        assert len(support) == 60

    def test_support_seed_determinism(self):
        workload = world_workload(scale=0.1, expanded=False)
        a = workload.support(size=30, seed=5)
        b = workload.support(size=30, seed=5)
        assert [i.deltas for i in a] == [i.deltas for i in b]
