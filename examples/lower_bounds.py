"""The theory of Section 4, run live: Lemmas 2-4 as executable constructions.

Each construction makes one succinct pricing family provably lose a log
factor. This example grows each instance and prints the gap widening —
the empirical twin of Figure 3.

Run:  python examples/lower_bounds.py
"""

from __future__ import annotations

from repro.core.algorithms import LPIP, UBP, UIP
from repro.workloads.synthetic import (
    harmonic_instance,
    laminar_instance,
    partition_instance,
)


def show(title: str, rows: list[tuple[str, float, float, float]]) -> None:
    print(f"\n{title}")
    print(f"{'size':>8s} {'OPT':>10s} {'UBP gap':>9s} {'item gap':>9s}")
    for label, optimal, ubp, item in rows:
        print(
            f"{label:>8s} {optimal:10.1f} {optimal / max(ubp, 1e-9):9.2f} "
            f"{optimal / max(item, 1e-9):9.2f}"
        )


def main() -> None:
    rows = []
    for m in (16, 64, 256, 1024):
        instance = harmonic_instance(m)
        rows.append(
            (
                f"m={m}",
                instance.total_valuation(),
                UBP().run(instance).revenue,
                LPIP(max_programs=20).run(instance).revenue,
            )
        )
    show("Lemma 2 (harmonic): uniform bundle pricing loses Θ(log m)", rows)

    rows = []
    for n in (8, 32, 128):
        instance = partition_instance(n)
        rows.append(
            (
                f"n={n}",
                instance.total_valuation(),
                UBP().run(instance).revenue,
                LPIP(max_programs=1).run(instance).revenue,
            )
        )
    show("Lemma 3 (partition classes): item pricing loses Θ(log m)", rows)

    rows = []
    for t in (2, 4, 6):
        instance = laminar_instance(t)
        rows.append(
            (
                f"t={t}",
                instance.total_valuation(),
                UBP().run(instance).revenue,
                UIP().run(instance).revenue,
            )
        )
    show("Lemma 4 (laminar family): both families lose Θ(log m)", rows)

    print(
        "\nIn each family the subadditive optimum extracts the full OPT "
        "column; the widening ratios are the Ω(log m) separations of Fig. 3."
    )


if __name__ == "__main__":
    main()
