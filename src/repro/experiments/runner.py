"""Running the algorithm suite over instances and parameter sweeps,
plus conflict-backend comparisons over hypergraph construction and
revenue-strategy comparisons over the pricing inner loops."""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm, PricingResult
from repro.core.bounds import subadditive_upper_bound
from repro.core.evaluator import RevenueEvaluator, use_strategy
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.db.query import Query
from repro.exceptions import PricingError
from repro.qirana.conflict import ConflictSetEngine
from repro.support.generator import SupportSet
from repro.valuations.base import ValuationModel


@dataclass(frozen=True)
class HypergraphBuild:
    """One timed hypergraph construction with one conflict backend."""

    backend: str
    hypergraph: Hypergraph
    seconds: float
    diagnostics: dict[str, dict[str, float]]


def time_hypergraph_builds(
    support: SupportSet,
    queries: Sequence[Query],
    backends: Sequence[str] = ("naive", "incremental", "vectorized", "auto"),
    check_parity: bool = True,
) -> list[HypergraphBuild]:
    """Build the same workload hypergraph with each backend, timed.

    With ``check_parity`` the hyperedges of every backend are compared
    against the first one's; a mismatch is a correctness bug and raises.
    The support set's caches (materialized neighbors, delta tensors) are
    cleared before each build, so every backend pays its own setup and the
    timings are directly comparable.
    """
    builds: list[HypergraphBuild] = []
    for backend in backends:
        support.clear_cache()
        engine = ConflictSetEngine(support, backend=backend)
        start = time.perf_counter()
        hypergraph = engine.build_hypergraph(list(queries))
        seconds = time.perf_counter() - start
        # Artifact-level merge: the engine keeps ``diagnostics`` homogeneous
        # (one record per deciding backend); the benchmark JSON additionally
        # wants the template-cache counters of caching backends.
        diagnostics = dict(engine.diagnostics)
        template_stats = engine.template_cache_stats()
        if template_stats is not None:
            diagnostics["template_cache"] = template_stats
        builds.append(
            HypergraphBuild(backend, hypergraph, seconds, diagnostics)
        )
    if check_parity and builds:
        reference = builds[0]
        for build in builds[1:]:
            if build.hypergraph.edges != reference.hypergraph.edges:
                raise PricingError(
                    f"conflict backend {build.backend!r} disagrees with "
                    f"{reference.backend!r} on the workload hypergraph"
                )
    return builds


@dataclass(frozen=True)
class RevenueSweep:
    """One timed algorithm run under one revenue strategy."""

    strategy: str
    revenue: float
    seconds: float
    diagnostics: dict[str, dict[str, float]]


def time_revenue_sweeps(
    instance: PricingInstance,
    algorithm_factory: Callable[[], PricingAlgorithm],
    strategies: Sequence[str] = ("scalar", "vectorized"),
    check_parity: bool = True,
    parity_rtol: float = 1e-6,
) -> list[RevenueSweep]:
    """Run the same algorithm under each revenue strategy, timed.

    ``algorithm_factory`` builds a *fresh* algorithm per strategy (the base
    class memoizes per object, which would let the second strategy reuse the
    first's result). Each run executes inside
    :func:`repro.core.evaluator.use_strategy`, so every revenue kernel the
    algorithm touches — edge pricing, line searches, grid sweeps — is
    decided *and counted* by that strategy; the returned diagnostics are the
    proof of which path ran. With ``check_parity`` the revenues must agree
    across strategies within ``parity_rtol`` (the strategies make identical
    sale decisions up to float associativity; a larger gap is a bug and
    raises).
    """
    sweeps: list[RevenueSweep] = []
    for strategy in strategies:
        algorithm = algorithm_factory()
        with use_strategy(RevenueEvaluator(strategy)) as evaluator:
            start = time.perf_counter()
            result = algorithm.run(instance)
            seconds = time.perf_counter() - start
        sweeps.append(
            RevenueSweep(strategy, result.revenue, seconds, evaluator.diagnostics)
        )
    if check_parity and sweeps:
        reference = sweeps[0]
        scale = max(abs(reference.revenue), 1.0)
        for sweep in sweeps[1:]:
            if abs(sweep.revenue - reference.revenue) > parity_rtol * scale:
                raise PricingError(
                    f"revenue strategy {sweep.strategy!r} disagrees with "
                    f"{reference.strategy!r}: {sweep.revenue} vs "
                    f"{reference.revenue}"
                )
    return sweeps


@dataclass
class ExperimentResult:
    """Results of running a suite of algorithms on one instance."""

    instance_name: str
    total_valuation: float
    subadditive_bound: float | None
    results: dict[str, PricingResult] = field(default_factory=dict)

    def normalized(self, algorithm: str) -> float:
        """Revenue / sum-of-valuations — the y-axis of every figure."""
        if self.total_valuation <= 0:
            return 0.0
        return self.results[algorithm].revenue / self.total_valuation

    def normalized_series(self) -> dict[str, float]:
        series = {name: self.normalized(name) for name in self.results}
        if self.subadditive_bound is not None and self.total_valuation > 0:
            series["subadditive bound"] = self.subadditive_bound / self.total_valuation
        return series

    def runtimes(self) -> dict[str, float]:
        return {
            name: result.runtime_seconds for name, result in self.results.items()
        }


def run_algorithms(
    instance: PricingInstance,
    algorithms: Sequence[PricingAlgorithm],
    compute_bound: bool = True,
    bound_max_cover_size: int = 32,
    revenue_strategy: str | None = None,
) -> ExperimentResult:
    """Run every algorithm on ``instance``; optionally add the LP bound.

    ``revenue_strategy`` scopes the revenue engine for the whole run (e.g.
    ``"scalar"`` to re-check a figure against the oracle path); ``None``
    keeps the process default (``vectorized``).
    """
    bound = (
        subadditive_upper_bound(instance, max_cover_size=bound_max_cover_size)
        if compute_bound
        else None
    )
    outcome = ExperimentResult(
        instance_name=instance.name,
        total_valuation=instance.total_valuation(),
        subadditive_bound=bound,
    )
    if revenue_strategy is None:
        for algorithm in algorithms:
            outcome.results[algorithm.name] = algorithm.run(instance)
    else:
        with use_strategy(revenue_strategy):
            for algorithm in algorithms:
                outcome.results[algorithm.name] = algorithm.run(instance)
    return outcome


@dataclass(frozen=True)
class SeriesPoint:
    """One (parameter value, experiment result) pair of a sweep."""

    parameter: object
    result: ExperimentResult


def run_parameter_sweep(
    hypergraph: Hypergraph,
    models: Sequence[tuple[object, ValuationModel]],
    algorithms: Sequence[PricingAlgorithm],
    seed: int = 1,
    compute_bound: bool = True,
    repetitions: int = 1,
) -> list[SeriesPoint]:
    """The paper's figure pattern: one hypergraph, a family of valuation
    models indexed by a parameter, all algorithms on each.

    With ``repetitions > 1`` the reported revenue for each algorithm is the
    mean over fresh valuation draws (the paper averages 5 runs).
    """
    points: list[SeriesPoint] = []
    for offset, (parameter, model) in enumerate(models):
        merged: ExperimentResult | None = None
        for repetition in range(repetitions):
            rng = np.random.default_rng(seed + 1000 * offset + repetition)
            instance = model.instance(hypergraph, rng=rng)
            outcome = run_algorithms(
                instance, algorithms, compute_bound=compute_bound
            )
            if merged is None:
                merged = outcome
            else:
                merged = _merge_mean(merged, outcome, repetition)
        points.append(SeriesPoint(parameter, merged))
    return points


def _merge_mean(
    accumulated: ExperimentResult, new: ExperimentResult, repetition: int
) -> ExperimentResult:
    """Running mean of revenues/bounds across repetitions.

    Only scalar summaries are averaged; the pricing objects kept are from the
    first repetition (they are representative, and figures only use scalars).
    """
    weight = repetition / (repetition + 1)
    accumulated.total_valuation = (
        weight * accumulated.total_valuation + (1 - weight) * new.total_valuation
    )
    if accumulated.subadditive_bound is not None and new.subadditive_bound is not None:
        accumulated.subadditive_bound = (
            weight * accumulated.subadditive_bound
            + (1 - weight) * new.subadditive_bound
        )
    for name, result in accumulated.results.items():
        fresh = new.results[name]
        result.report = type(result.report)(
            revenue=weight * result.report.revenue + (1 - weight) * fresh.report.revenue,
            num_sold=result.report.num_sold,
            num_edges=result.report.num_edges,
            prices=result.report.prices,
            sold=result.report.sold,
        )
        result.runtime_seconds = (
            weight * result.runtime_seconds + (1 - weight) * fresh.runtime_seconds
        )
    return accumulated


def sweep_series(
    points: Sequence[SeriesPoint],
) -> tuple[list[object], dict[str, list[float]]]:
    """Reshape sweep points into (parameter values, name -> series)."""
    parameters = [point.parameter for point in points]
    names: list[str] = []
    for point in points:
        for name in point.result.normalized_series():
            if name not in names:
                names.append(name)
    series = {
        name: [point.result.normalized_series().get(name, float("nan")) for point in points]
        for name in names
    }
    return parameters, series
