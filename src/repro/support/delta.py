"""Delta-encoded support instances.

A support instance ``D'`` differs from the base database ``D`` in a handful
of cells. Storing just the patches makes a support set of tens of thousands
of instances affordable, and lets the conflict engine skip instances whose
patches cannot affect a query (table/column pruning).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.database import Database
from repro.db.schema import Value
from repro.exceptions import SupportError


@dataclass(frozen=True)
class CellDelta:
    """One changed cell: ``table[row_index].column = value``."""

    table: str
    row_index: int
    column: str
    value: Value

    def key(self) -> tuple[str, int, str]:
        """Identity of the targeted cell (lowercased names)."""
        return (self.table.lower(), self.row_index, self.column.lower())


@dataclass(frozen=True)
class SupportInstance:
    """A neighboring database, identified by its patch set.

    ``instance_id`` is the item index in the pricing hypergraph.
    """

    instance_id: int
    deltas: tuple[CellDelta, ...]

    def __post_init__(self) -> None:
        if not self.deltas:
            raise SupportError(
                f"support instance {self.instance_id} must differ from the base"
            )
        keys = [delta.key() for delta in self.deltas]
        if len(set(keys)) != len(keys):
            raise SupportError(
                f"support instance {self.instance_id} patches a cell twice"
            )

    @property
    def touched_tables(self) -> frozenset[str]:
        """Lowercased names of tables this instance modifies."""
        return frozenset(delta.table.lower() for delta in self.deltas)

    @property
    def touched_columns(self) -> frozenset[tuple[str, str]]:
        """Lowercased (table, column) pairs this instance modifies."""
        return frozenset(
            (delta.table.lower(), delta.column.lower()) for delta in self.deltas
        )

    def materialize(self, base: Database) -> Database:
        """Apply the patches to ``base``, returning the neighbor database.

        Only patched tables are copied (copy-on-write); a patch whose value
        equals the base cell is rejected because the instance would not be a
        *neighbor* (it must differ from ``D``).
        """
        patched = base
        by_table: dict[str, list[CellDelta]] = {}
        for delta in self.deltas:
            by_table.setdefault(delta.table.lower(), []).append(delta)
        for table_name, deltas in by_table.items():
            relation = patched.table(table_name)
            for delta in deltas:
                if relation.cell(delta.row_index, delta.column) == delta.value:
                    raise SupportError(
                        f"delta on {delta.table}[{delta.row_index}].{delta.column} "
                        f"does not change the base value {delta.value!r}"
                    )
                relation = relation.with_cell_replaced(
                    delta.row_index, delta.column, delta.value
                )
            patched = patched.with_table_replaced(relation)
        return patched
