"""Uniform bundle pricing (UBP) and its LP refinement.

UBP is the folklore ``O(log m)``-approximation (Lemma 1): the optimal uniform
price is one of the valuations, so sort the valuations descending and sweep.
``UBPRefine`` implements the post-processing observation from Section 6.3:
take the buyers sold by the best uniform price and solve an LP for the
revenue-maximizing *item* pricing that still sells all of them.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.hypergraph import PricingInstance
from repro.core.pricing import ItemPricing, PricingFunction, UniformBundlePricing
from repro.exceptions import LPError
from repro.lp import LinExpr, LPModel, Sense


def best_uniform_bundle_price(valuations: np.ndarray) -> tuple[float, float]:
    """Return ``(price, revenue)`` of the optimal uniform bundle price.

    With valuations sorted descending, setting the price to the ``i``-th
    largest valuation sells exactly the top ``i`` buyers (ties included,
    which only helps), for revenue ``(i + 1) * v_(i)``.
    """
    if len(valuations) == 0:
        return 0.0, 0.0
    ordered = np.sort(valuations)[::-1]
    counts = np.arange(1, len(ordered) + 1)
    revenues = ordered * counts
    best = int(np.argmax(revenues))
    return float(ordered[best]), float(revenues[best])


class UBP(PricingAlgorithm):
    """Optimal uniform bundle price via the sort-and-sweep algorithm."""

    name = "ubp"

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        price, sweep_revenue = best_uniform_bundle_price(instance.valuations)
        return UniformBundlePricing(price), {"sweep_revenue": sweep_revenue}


class UBPRefine(PricingAlgorithm):
    """UBP followed by the LP item-pricing refinement (Section 6.3).

    Let ``E*`` be the buyers sold by the optimal uniform bundle price. Solve::

        maximize   sum_{e in E*} sum_{j in e} w_j
        subject to sum_{j in e} w_j <= v_e   for every e in E*,  w >= 0

    Every constraint is satisfiable (w = 0), the refined pricing still sells
    all of ``E*``, and it may additionally extract more from each of them and
    sell further cheap edges. The paper reports this step lifting TPC-H
    revenue from 0.78 to 0.99 normalized.
    """

    name = "ubp+lp"

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        price, _ = best_uniform_bundle_price(instance.valuations)
        sold = [
            index
            for index in range(instance.num_edges)
            if instance.valuations[index] >= price and instance.edges[index]
        ]
        if not sold:
            return UniformBundlePricing(price), {"refined": False}

        items = sorted({item for index in sold for item in instance.edges[index]})
        model = LPModel(name="ubp-refine", sense=Sense.MAXIMIZE)
        weight_vars = {item: model.add_variable(f"w{item}") for item in items}
        objective_terms = []
        for index in sold:
            bundle_price = LinExpr.sum_of(
                [weight_vars[item] for item in instance.edges[index]]
            )
            model.add_constraint(
                bundle_price <= float(instance.valuations[index])
            )
            objective_terms.append(bundle_price)
        model.set_objective(LinExpr.sum_of(objective_terms))
        try:
            solution = model.solve()
        except LPError:
            # Solver trouble costs us the refinement, not the pricing: fall
            # back to the uniform bundle price the LP was refining.
            return UniformBundlePricing(price), {"refined": False}

        weights = np.zeros(instance.num_items)
        for item, variable in weight_vars.items():
            weights[item] = max(0.0, solution.value(variable))
        return ItemPricing(weights), {
            "refined": True,
            "uniform_price": price,
            "lp_objective": solution.objective,
        }
