"""Scipy (HiGHS) backend for :class:`~repro.lp.model.LPModel`.

Compiles the declarative model to the matrix form expected by
``scipy.optimize.linprog`` and maps the result (including dual values) back to
model-level names. HiGHS reports duals for a *minimization* problem; for
maximization models we negate the objective before solving and flip the dual
signs back so that callers always see the "marginal value of relaxing the
constraint toward feasibility" convention.

Scalar constraints (``LinExpr`` dicts) and bulk :class:`ConstraintBlock`\\ s
compile side by side: blocks become scipy CSR matrices directly (no per-row
dict walk) and are vertically stacked after the scalar rows. Constraint
*positions* — what ``dual_by_index`` addresses — number the scalar
constraints first, then every block's rows in registration order.
"""

from __future__ import annotations

import time

import numpy as np
from scipy.optimize import linprog
from scipy.sparse import csr_matrix, vstack

from repro.exceptions import LPInfeasibleError, LPSolverError, LPUnboundedError
from repro.lp.model import LPModel, Relation, Sense
from repro.lp.solution import LPSolution, SolveStats


class ScipySolver:
    """LP solver backed by ``scipy.optimize.linprog`` with the HiGHS method.

    Parameters
    ----------
    method:
        scipy ``linprog`` method. ``"highs"`` lets HiGHS pick between its
        simplex and interior-point codes; duals are available either way.
    """

    def __init__(self, method: str = "highs"):
        self.method = method

    def solve(self, model: LPModel) -> LPSolution:
        """Solve the model, raising on infeasible/unbounded programs."""
        num_vars = model.num_variables
        maximize = model.sense is Sense.MAXIMIZE

        c = np.zeros(num_vars)
        for idx, coef in model.objective.coeffs.items():
            c[idx] = coef
        if maximize:
            c = -c

        # Scalar constraints first (positions 0..len-1), then block rows.
        ub_rows: list[tuple[dict[int, float], float]] = []
        ub_positions: list[int] = []
        ub_relations: list[Relation] = []
        eq_rows: list[tuple[dict[int, float], float]] = []
        eq_positions: list[int] = []
        position_names: list[str | None] = []
        for position, constraint in enumerate(model.constraints):
            position_names.append(constraint.name)
            coeffs, rhs = constraint.normalized()
            if constraint.relation is Relation.LE:
                ub_rows.append((coeffs, rhs))
                ub_positions.append(position)
                ub_relations.append(Relation.LE)
            elif constraint.relation is Relation.GE:
                # a >= b  <=>  -a <= -b
                ub_rows.append(({i: -v for i, v in coeffs.items()}, -rhs))
                ub_positions.append(position)
                ub_relations.append(Relation.GE)
            else:
                eq_rows.append((coeffs, rhs))
                eq_positions.append(position)

        a_ub, b_ub = _build_sparse(ub_rows, num_vars)
        a_eq, b_eq = _build_sparse(eq_rows, num_vars)

        ub_stack = [a_ub] if a_ub is not None else []
        ub_rhs_parts = [b_ub] if b_ub is not None else []
        eq_stack = [a_eq] if a_eq is not None else []
        eq_rhs_parts = [b_eq] if b_eq is not None else []
        position = len(model.constraints)
        for block in model.blocks:
            if block.names is not None:
                position_names.extend(block.names)
            else:
                position_names.extend([None] * block.num_rows)
            sign = -1.0 if block.relation is Relation.GE else 1.0
            matrix = csr_matrix(
                (sign * block.data, block.indices, block.indptr),
                shape=(block.num_rows, num_vars),
            )
            if block.relation is Relation.EQ:
                eq_stack.append(matrix)
                eq_rhs_parts.append(block.rhs)
                eq_positions.extend(range(position, position + block.num_rows))
            else:
                ub_stack.append(matrix)
                ub_rhs_parts.append(sign * block.rhs)
                ub_positions.extend(range(position, position + block.num_rows))
                ub_relations.extend([block.relation] * block.num_rows)
            position += block.num_rows

        a_ub = vstack(ub_stack, format="csr") if ub_stack else None
        b_ub = np.concatenate(ub_rhs_parts) if ub_rhs_parts else None
        a_eq = vstack(eq_stack, format="csr") if eq_stack else None
        b_eq = np.concatenate(eq_rhs_parts) if eq_rhs_parts else None
        bounds = [(v.lower, v.upper) for v in model.variables]

        start = time.perf_counter()
        result = linprog(
            c,
            A_ub=a_ub,
            b_ub=b_ub,
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=bounds,
            method=self.method,
        )
        elapsed = time.perf_counter() - start

        if result.status == 2:
            raise LPInfeasibleError(f"model {model.name!r} is infeasible")
        if result.status == 3:
            raise LPUnboundedError(f"model {model.name!r} is unbounded")
        if not result.success:
            raise LPSolverError(
                f"model {model.name!r} failed: {result.message} (status {result.status})"
            )

        objective = float(result.fun)
        if maximize:
            objective = -objective
        objective += model.objective.constant

        primal = {i: float(x) for i, x in enumerate(result.x)}

        duals_by_index: dict[int, float] = {}
        # HiGHS duals follow the minimization convention; flip sign so that
        # for a maximization model the dual of a binding `<=` constraint is
        # the (non-negative) marginal objective gain of relaxing it.
        sign = -1.0 if maximize else 1.0
        ineq = getattr(result, "ineqlin", None)
        if ineq is not None and ineq.marginals is not None:
            for row, marginal in enumerate(ineq.marginals):
                value = sign * float(marginal)
                # GE rows were negated on the way in; negate the dual back.
                if ub_relations[row] is Relation.GE:
                    value = -value
                duals_by_index[ub_positions[row]] = value
        eqlin = getattr(result, "eqlin", None)
        if eqlin is not None and eqlin.marginals is not None:
            for row, marginal in enumerate(eqlin.marginals):
                duals_by_index[eq_positions[row]] = sign * float(marginal)

        duals_by_name = {
            name: duals_by_index[position]
            for position, name in enumerate(position_names)
            if name is not None and position in duals_by_index
        }

        stats = SolveStats(
            solver=f"scipy-{self.method}",
            status="optimal",
            iterations=int(getattr(result, "nit", 0) or 0),
            wall_time_seconds=elapsed,
            num_variables=num_vars,
            num_constraints=model.num_constraints,
        )
        return LPSolution(objective, primal, duals_by_name, duals_by_index, stats)


def _build_sparse(
    rows: list[tuple[dict[int, float], float]], num_vars: int
) -> tuple[csr_matrix | None, np.ndarray | None]:
    """Assemble a CSR matrix + rhs vector from sparse row dicts."""
    if not rows:
        return None, None
    data: list[float] = []
    indices: list[int] = []
    indptr: list[int] = [0]
    rhs = np.empty(len(rows))
    for r, (coeffs, b) in enumerate(rows):
        for idx, coef in coeffs.items():
            indices.append(idx)
            data.append(coef)
        indptr.append(len(data))
        rhs[r] = b
    matrix = csr_matrix((data, indices, indptr), shape=(len(rows), num_vars))
    return matrix, rhs


_DEFAULT_SOLVER = ScipySolver()


def solve_model(model: LPModel, solver: ScipySolver | None = None) -> LPSolution:
    """Solve ``model`` with ``solver`` (default: module-level HiGHS solver)."""
    return (solver or _DEFAULT_SOLVER).solve(model)
