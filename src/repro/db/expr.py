"""Scalar expression language shared by the SQL front-end and query plans.

Expressions are immutable trees of :class:`Expr` nodes. They are *unbound*:
column references carry names, not positions. Binding against a
:class:`Scope` (the column layout of an operator's input rows) produces a
plain Python closure ``row -> value``, so expression evaluation inside tight
loops costs one function call per node with no name lookups.

NULL semantics follow SQL's three-valued logic restricted to what the
workloads need: any comparison involving NULL is false, ``AND``/``OR`` treat
"unknown" as false, and aggregates skip NULLs (``COUNT(*)`` counts all rows).
"""

from __future__ import annotations

import re
from collections.abc import Callable
from dataclasses import dataclass

from repro.db.schema import Value
from repro.exceptions import QueryError

#: A compiled expression: maps an input row to a scalar value.
Evaluator = Callable[[tuple], Value]


class Scope:
    """Column layout of the rows an expression will be evaluated against.

    Each slot is a ``(qualifier, column_name)`` pair; the qualifier is a table
    alias (lowercase) or ``None`` for derived columns. Lookup is
    case-insensitive and raises on ambiguity, mirroring SQL name resolution.
    """

    __slots__ = ("slots",)

    def __init__(self, slots: list[tuple[str | None, str]]):
        self.slots = [(q.lower() if q else None, n) for q, n in slots]

    @property
    def arity(self) -> int:
        return len(self.slots)

    def column_names(self) -> list[str]:
        return [name for _, name in self.slots]

    def resolve(self, qualifier: str | None, name: str) -> int:
        """Slot index for a (possibly qualified) column reference."""
        wanted_name = name.lower()
        wanted_qualifier = qualifier.lower() if qualifier else None
        matches = [
            index
            for index, (slot_qualifier, slot_name) in enumerate(self.slots)
            if slot_name.lower() == wanted_name
            and (wanted_qualifier is None or slot_qualifier == wanted_qualifier)
        ]
        display = f"{qualifier}.{name}" if qualifier else name
        if not matches:
            raise QueryError(f"unknown column {display!r}")
        if len(matches) > 1:
            raise QueryError(f"ambiguous column {display!r}")
        return matches[0]

    def concat(self, other: "Scope") -> "Scope":
        """Scope of the concatenation of two row layouts (joins)."""
        return Scope(self.slots + other.slots)


class Expr:
    """Base class for scalar expressions."""

    def bind(self, scope: Scope) -> Evaluator:
        """Compile against ``scope`` into a ``row -> value`` closure."""
        raise NotImplementedError

    def eval_batch(self, scope: Scope):
        """Compile against ``scope`` into a columnar ``batch -> vector`` function.

        The vectorized twin of :meth:`bind`, used by the batch conflict
        engine; see :mod:`repro.db.columnar` for the batch representation.
        """
        from repro.db.columnar import compile_expr

        return compile_expr(self, scope)

    def referenced_columns(self) -> set[tuple[str | None, str]]:
        """All (qualifier, column) pairs mentioned by this expression."""
        found: set[tuple[str | None, str]] = set()
        self._collect_columns(found)
        return found

    def _collect_columns(self, accumulator: set[tuple[str | None, str]]) -> None:
        for child in self.children():
            child._collect_columns(accumulator)

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Reference to a column, optionally qualified by a table alias."""

    name: str
    qualifier: str | None = None

    def bind(self, scope: Scope) -> Evaluator:
        index = scope.resolve(self.qualifier, self.name)
        return lambda row: row[index]

    def _collect_columns(self, accumulator: set[tuple[str | None, str]]) -> None:
        accumulator.add((self.qualifier.lower() if self.qualifier else None, self.name.lower()))

    def display_name(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value."""

    value: Value

    def bind(self, scope: Scope) -> Evaluator:
        value = self.value
        return lambda row: value


_COMPARATORS: dict[str, Callable[[Value, Value], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expr):
    """Binary comparison with SQL NULL semantics (NULL compares false)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise QueryError(f"unknown comparison operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def bind(self, scope: Scope) -> Evaluator:
        compare = _COMPARATORS[self.op]
        left = self.left.bind(scope)
        right = self.right.bind(scope)

        def evaluate(row: tuple) -> Value:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return False
            try:
                return compare(a, b)
            except TypeError:
                raise QueryError(
                    f"cannot compare {a!r} ({type(a).__name__}) with "
                    f"{b!r} ({type(b).__name__})"
                ) from None

        return evaluate


@dataclass(frozen=True)
class Between(Expr):
    """``expr BETWEEN low AND high`` (inclusive both ends)."""

    operand: Expr
    low: Expr
    high: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, self.low, self.high)

    def bind(self, scope: Scope) -> Evaluator:
        operand = self.operand.bind(scope)
        low = self.low.bind(scope)
        high = self.high.bind(scope)

        def evaluate(row: tuple) -> Value:
            value = operand(row)
            lo = low(row)
            hi = high(row)
            if value is None or lo is None or hi is None:
                return False
            return lo <= value <= hi

        return evaluate


@dataclass(frozen=True)
class Like(Expr):
    """``expr LIKE pattern`` with SQL wildcards ``%`` and ``_``."""

    operand: Expr
    pattern: str
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def bind(self, scope: Scope) -> Evaluator:
        operand = self.operand.bind(scope)
        regex = re.compile(_like_to_regex(self.pattern), re.IGNORECASE | re.DOTALL)
        negated = self.negated

        def evaluate(row: tuple) -> Value:
            value = operand(row)
            if value is None or not isinstance(value, str):
                return False
            matched = regex.fullmatch(value) is not None
            return (not matched) if negated else matched

        return evaluate


def _like_to_regex(pattern: str) -> str:
    """Translate a SQL LIKE pattern to a regular expression."""
    parts: list[str] = []
    for char in pattern:
        if char == "%":
            parts.append(".*")
        elif char == "_":
            parts.append(".")
        else:
            parts.append(re.escape(char))
    return "".join(parts)


@dataclass(frozen=True)
class InList(Expr):
    """``expr IN (v1, v2, ...)`` over literal values."""

    operand: Expr
    values: tuple[Value, ...]
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def bind(self, scope: Scope) -> Evaluator:
        operand = self.operand.bind(scope)
        members = set(self.values)
        negated = self.negated

        def evaluate(row: tuple) -> Value:
            value = operand(row)
            if value is None:
                return False
            contained = value in members
            return (not contained) if negated else contained

        return evaluate


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def bind(self, scope: Scope) -> Evaluator:
        operand = self.operand.bind(scope)
        negated = self.negated

        def evaluate(row: tuple) -> Value:
            is_null = operand(row) is None
            return (not is_null) if negated else is_null

        return evaluate


@dataclass(frozen=True)
class And(Expr):
    """Logical conjunction."""

    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def bind(self, scope: Scope) -> Evaluator:
        left = self.left.bind(scope)
        right = self.right.bind(scope)
        return lambda row: bool(left(row)) and bool(right(row))


@dataclass(frozen=True)
class Or(Expr):
    """Logical disjunction."""

    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def bind(self, scope: Scope) -> Evaluator:
        left = self.left.bind(scope)
        right = self.right.bind(scope)
        return lambda row: bool(left(row)) or bool(right(row))


@dataclass(frozen=True)
class Not(Expr):
    """Logical negation."""

    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def bind(self, scope: Scope) -> Evaluator:
        operand = self.operand.bind(scope)
        return lambda row: not bool(operand(row))


_ARITHMETIC: dict[str, Callable[[float, float], float]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


@dataclass(frozen=True)
class Arithmetic(Expr):
    """Binary arithmetic; NULL-propagating; division by zero yields NULL."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ARITHMETIC:
            raise QueryError(f"unknown arithmetic operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def bind(self, scope: Scope) -> Evaluator:
        combine = _ARITHMETIC[self.op]
        left = self.left.bind(scope)
        right = self.right.bind(scope)
        is_division = self.op == "/"

        def evaluate(row: tuple) -> Value:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            if is_division and b == 0:
                return None
            return combine(a, b)

        return evaluate


def conjuncts(predicate: Expr | None) -> list[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if predicate is None:
        return []
    if isinstance(predicate, And):
        return conjuncts(predicate.left) + conjuncts(predicate.right)
    return [predicate]


def conjoin(predicates: list[Expr]) -> Expr | None:
    """Rebuild a conjunction from a list of conjuncts (None when empty)."""
    if not predicates:
        return None
    combined = predicates[0]
    for predicate in predicates[1:]:
        combined = And(combined, predicate)
    return combined
