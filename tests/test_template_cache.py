"""Template fingerprints and the shape-keyed compiled-template cache.

The miss path of the vectorized backend is: canonical template fingerprint
(literals stripped) -> TemplateCache lookup -> batch compilation + kernel
dispatch. These tests pin the fingerprint equivalence classes (literal
variants share one, structural differences must not) and the cache's
hit/invalidate behavior against the support set's ``data_version``.
"""

import pytest

from repro.db.query import sql_query
from repro.qirana.conflict import ConflictSetEngine
from repro.qirana.vectorized import VectorizedBackend
from repro.service.cache import TemplateCache
from repro.service.canonical import template_fingerprint


@pytest.fixture
def fingerprint(mini_db):
    def compute(sql: str):
        result = template_fingerprint(sql_query(sql, mini_db), mini_db)
        return None if result is None else result[0]

    return compute


class TestTemplateFingerprint:
    def test_literal_variants_share_a_fingerprint(self, fingerprint):
        assert fingerprint(
            "select Name from Country where Population > 1000"
        ) == fingerprint("select Name from Country where Population > 999999")

    def test_textual_variants_share_a_fingerprint(self, fingerprint):
        assert fingerprint(
            "select c.Name from Country c where c.Population > 7"
        ) == fingerprint("SELECT Name FROM Country WHERE Population > 8")

    def test_multi_literal_variants_share(self, fingerprint):
        assert fingerprint(
            "select Name from Country where Population > 10 and LifeExpectancy < 70"
        ) == fingerprint(
            "select Name from Country where Population > 99 and LifeExpectancy < 80"
        )

    def test_literal_type_is_structural(self, fingerprint):
        # An int hole and a float hole bind different column comparisons;
        # they must not share a template.
        assert fingerprint(
            "select Name from Country where Population > 10"
        ) != fingerprint("select Name from Country where Population > 10.5")

    def test_table_position_differences_do_not_share(self, fingerprint):
        assert fingerprint(
            "select Name from Country where Population > 5"
        ) != fingerprint("select Name from City where Population > 5")

    def test_aggregate_kind_differences_do_not_share(self, fingerprint):
        assert fingerprint("select sum(Population) from Country") != fingerprint(
            "select avg(Population) from Country"
        )
        assert fingerprint("select min(Population) from Country") != fingerprint(
            "select max(Population) from Country"
        )

    def test_grouping_is_structural(self, fingerprint):
        assert fingerprint(
            "select Continent, count(*) from Country group by Continent"
        ) != fingerprint(
            "select Region, count(*) from Country group by Region"
        )

    def test_having_literal_is_bindable(self, fingerprint):
        assert fingerprint(
            "select Continent, count(*) from Country group by Continent "
            "having count(*) > 1"
        ) == fingerprint(
            "select Continent, count(*) from Country group by Continent "
            "having count(*) > 5"
        )

    def test_order_keys_are_structural(self, fingerprint):
        ordered = fingerprint(
            "select Continent, count(*) from Country group by Continent "
            "order by Continent"
        )
        unordered = fingerprint(
            "select Continent, count(*) from Country group by Continent"
        )
        assert ordered != unordered

    def test_in_list_literals_are_structural(self, fingerprint):
        # IN-lists of different lengths could not bind one literal vector;
        # the whole list stays part of the template's structure.
        assert fingerprint(
            "select Name from Country where Continent in ('Asia', 'Europe')"
        ) != fingerprint(
            "select Name from Country where Continent in ('Asia', 'Europe', 'Africa')"
        )

    def test_self_join_has_no_template(self, mini_db):
        query = sql_query(
            "select a.Name from Country a , Country b where a.Code = b.Code",
            mini_db,
        )
        assert template_fingerprint(query, mini_db) is None

    def test_binding_order_is_canonical(self, mini_db):
        # Both variants must list their literal nodes in the same canonical
        # position order, so slot i of one variant's vector means the same
        # hole as slot i of the other's.
        a = template_fingerprint(
            sql_query(
                "select Name from Country "
                "where Population > 10 and LifeExpectancy < 70",
                mini_db,
            ),
            mini_db,
        )
        b = template_fingerprint(
            sql_query(
                "select Name from Country "
                "where LifeExpectancy < 80 and Population > 99",
                mini_db,
            ),
            mini_db,
        )
        assert a is not None and b is not None
        assert a[0] == b[0]
        assert [node.value for node in a[1]] == [10, 70]
        assert [node.value for node in b[1]] == [99, 80]


class TestTemplateCacheUnit:
    def test_stale_stamp_drops_entry(self):
        cache = TemplateCache(4)
        cache.put("k", "v", stamp=1)
        assert cache.get("k", stamp=1) == "v"
        assert cache.get("k", stamp=2) is None
        stats = cache.stats()
        assert stats.stale_drops == 1
        assert cache.get("k", stamp=1) is None  # the entry is gone

    def test_capacity_zero_disables_storage(self):
        cache = TemplateCache(0)
        cache.put("k", "v", stamp=1)
        assert cache.get("k", stamp=1) is None
        assert cache.get("k", stamp=1) is None
        stats = cache.stats()
        assert stats.hits == 0
        assert stats.misses == 2
        assert stats.size == 0


class TestBackendTemplateCache:
    VARIANTS = [
        "select Name from City where Population > %d" % bound
        for bound in (100, 2000, 50000, 1000000)
    ]

    def test_literal_variants_hit_the_cache(self, mini_support, mini_db):
        backend = VectorizedBackend(mini_support)
        for text in self.VARIANTS:
            backend.compute(sql_query(text, mini_db))
        stats = backend.template_stats()
        assert stats["misses"] == 1
        assert stats["hits"] == len(self.VARIANTS) - 1

    def test_variant_conflict_sets_match_naive(self, mini_support, mini_db):
        backend = VectorizedBackend(mini_support)
        naive = ConflictSetEngine(mini_support, backend="naive")
        for text in self.VARIANTS:
            query = sql_query(text, mini_db)
            assert backend.compute(query).conflict_set == naive.conflict_set(
                query
            ), text

    def test_support_cache_clear_invalidates_templates(
        self, mini_support, mini_db
    ):
        backend = VectorizedBackend(mini_support)
        backend.compute(sql_query(self.VARIANTS[0], mini_db))
        mini_support.clear_cache()  # bumps data_version: tensors are gone
        computation = backend.compute(sql_query(self.VARIANTS[1], mini_db))
        stats = backend.template_stats()
        assert stats["stale_drops"] == 1
        assert stats["misses"] == 2
        # And the recompiled template still decides correctly.
        naive = ConflictSetEngine(mini_support, backend="naive")
        assert computation.conflict_set == naive.conflict_set(
            sql_query(self.VARIANTS[1], mini_db)
        )

    def test_unsupported_shapes_are_negative_cached(self, mini_support, mini_db):
        backend = VectorizedBackend(mini_support)
        for bound in (1, 2):
            # count(distinct ...) matches the shape but never compiles; the
            # failure reason is literal-independent, so the second literal
            # variant hits the cached negative entry instead of re-failing
            # compilation.
            computation = backend.compute(
                sql_query(
                    "select Continent, count(distinct Code) from Country "
                    f"where Population > {bound} group by Continent",
                    mini_db,
                )
            )
            assert computation.fallback_reason == "distinct-agg"
        stats = backend.template_stats()
        assert stats["hits"] >= 1

    def test_disabled_cache_still_computes_correctly(self, mini_support, mini_db):
        backend = VectorizedBackend(mini_support, template_cache_size=0)
        naive = ConflictSetEngine(mini_support, backend="naive")
        for text in self.VARIANTS:
            query = sql_query(text, mini_db)
            assert backend.compute(query).conflict_set == naive.conflict_set(
                query
            )
        stats = backend.template_stats()
        assert stats["hits"] == 0

    def test_engine_exposes_template_stats(self, mini_support, mini_db):
        engine = ConflictSetEngine(mini_support, backend="vectorized")
        engine.compute(sql_query(self.VARIANTS[0], mini_db))
        stats = engine.template_cache_stats()
        assert stats is not None
        assert stats["misses"] >= 1
        naive = ConflictSetEngine(mini_support, backend="naive")
        assert naive.template_cache_stats() is None
