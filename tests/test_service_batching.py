"""MicroBatcher unit tests: coalescing, admission control, lifecycle."""

import threading
import time

import pytest

from repro.exceptions import ServiceError, ServiceOverloadError
from repro.service.batching import BatchRequest, MicroBatcher


def echo(batch):
    return [request.payload for request in batch]


def make_requests(*payloads):
    return [BatchRequest.make(payload, f"key-{payload}") for payload in payloads]


class TestSynchronousMode:
    def test_executes_inline_in_chunks(self):
        calls = []

        def execute(batch):
            calls.append(len(batch))
            return echo(batch)

        batcher = MicroBatcher(execute, max_batch_size=2, start=False)
        requests = make_requests(*range(5))
        batcher.submit(requests)
        assert [r.future.result(timeout=0) for r in requests] == list(range(5))
        assert calls == [2, 2, 1]
        stats = batcher.stats()
        assert stats.batches == 3
        assert stats.batched_requests == 5
        assert stats.max_batch_size == 2
        assert stats.accepted == 5

    def test_sync_mode_never_sheds(self):
        batcher = MicroBatcher(echo, max_queue_depth=1, start=False)
        requests = make_requests(*range(10))
        batcher.submit(requests)  # no queue, nothing to bound
        assert batcher.stats().shed == 0

    def test_execute_exception_reaches_every_future(self):
        def explode(batch):
            raise ValueError("boom")

        batcher = MicroBatcher(explode, start=False)
        requests = make_requests("a", "b")
        batcher.submit(requests)
        for request in requests:
            with pytest.raises(ValueError, match="boom"):
                request.future.result(timeout=0)


class TestThreadedMode:
    def test_coalesces_concurrent_submissions(self):
        release = threading.Event()
        sizes = []

        def execute(batch):
            if not release.wait(timeout=5):
                raise TimeoutError("gate never opened")
            sizes.append(len(batch))
            return echo(batch)

        batcher = MicroBatcher(execute, max_batch_size=8, max_batch_delay=0.05)
        try:
            first = make_requests(0)
            batcher.submit(first)  # occupies the worker at the gate
            time.sleep(0.01)
            rest = make_requests(*range(1, 7))
            for request in rest:
                batcher.submit([request])
            release.set()
            results = [r.future.result(timeout=5) for r in first + rest]
        finally:
            release.set()
            batcher.close()
        assert results == list(range(7))
        # The six follow-ups queued while the worker was busy coalesce into
        # one flush (their window had already elapsed).
        assert sizes[0] in (1, 7)
        assert max(sizes) >= 6

    def test_bounded_queue_sheds_whole_submissions(self):
        release = threading.Event()

        def execute(batch):
            if not release.wait(timeout=5):
                raise TimeoutError("gate never opened")
            return echo(batch)

        batcher = MicroBatcher(
            execute, max_batch_size=1, max_batch_delay=0.0, max_queue_depth=2
        )
        try:
            admitted = make_requests("running")
            batcher.submit(admitted)  # popped by the worker, gated
            time.sleep(0.01)
            queued = make_requests("q1", "q2")
            batcher.submit(queued)  # fills the queue to its bound
            with pytest.raises(ServiceOverloadError, match="queue is full"):
                batcher.submit(make_requests("overflow"))
            # A multi-request submission is all-or-nothing.
            with pytest.raises(ServiceOverloadError):
                batcher.submit(make_requests("o1", "o2", "o3"))
            stats = batcher.stats()
            assert stats.accepted == 3
            assert stats.shed == 4
            assert stats.queue_depth <= 2
            assert stats.shed_rate == pytest.approx(4 / 7)
            release.set()
            # Shed requests left no trace; admitted ones all complete.
            for request in admitted + queued:
                assert request.future.result(timeout=5) == request.payload
        finally:
            release.set()
            batcher.close()

    def test_empty_queue_admits_oversized_submission(self):
        """Progress guarantee: a submission larger than the bound is not
        permanently unadmittable — an empty queue admits it whole (the
        offline bulk paths submit whole workloads in one call)."""
        batcher = MicroBatcher(echo, max_batch_size=4, max_queue_depth=2)
        try:
            requests = make_requests(*range(10))
            batcher.submit(requests)
            assert [r.future.result(timeout=5) for r in requests] == list(range(10))
            assert batcher.stats().shed == 0
        finally:
            batcher.close()

    def test_close_flushes_pending_then_rejects(self):
        batcher = MicroBatcher(echo, max_batch_delay=0.2)
        requests = make_requests(*range(4))
        batcher.submit(requests)
        batcher.close()
        assert [r.future.result(timeout=0) for r in requests] == list(range(4))
        with pytest.raises(ServiceError, match="closed"):
            batcher.submit(make_requests("late"))

    def test_restart_after_close(self):
        batcher = MicroBatcher(echo)
        batcher.close()
        batcher.start()
        request = make_requests("again")
        batcher.submit(request)
        assert request[0].future.result(timeout=5) == "again"
        batcher.close()


class TestLifecycleRaces:
    def test_close_is_idempotent(self):
        batcher = MicroBatcher(echo)
        batcher.close()
        batcher.close()  # second close is a no-op, not an error
        with pytest.raises(ServiceError, match="closed"):
            batcher.submit(make_requests("late"))

    def test_concurrent_closers_all_return(self):
        batcher = MicroBatcher(echo)
        requests = make_requests(*range(8))
        batcher.submit(requests)
        closers = [threading.Thread(target=batcher.close) for _ in range(4)]
        for thread in closers:
            thread.start()
        for thread in closers:
            thread.join(timeout=5)
        assert not any(thread.is_alive() for thread in closers)
        for request in requests:
            assert request.future.result(timeout=0) == request.payload

    def test_close_submit_race_never_strands_a_future(self):
        """Stress the close/submit race: whatever interleaving happens, an
        admitted future resolves (result or typed error) — never hangs."""
        for _ in range(25):
            batcher = MicroBatcher(echo, max_batch_size=4, max_batch_delay=0.0)
            admitted = []
            admitted_lock = threading.Lock()
            stop = threading.Event()

            def spam():
                while not stop.is_set():
                    requests = make_requests(*range(3))
                    try:
                        batcher.submit(requests)
                    except ServiceError:
                        return  # closed: nothing was queued
                    with admitted_lock:
                        admitted.extend(requests)

            submitters = [threading.Thread(target=spam) for _ in range(4)]
            for thread in submitters:
                thread.start()
            time.sleep(0.002)
            batcher.close()
            stop.set()
            for thread in submitters:
                thread.join(timeout=5)
            assert not any(thread.is_alive() for thread in submitters)
            for request in admitted:
                # result() inside the timeout is the no-hang guarantee;
                # a race-loser resolves with the typed close error instead.
                try:
                    assert request.future.result(timeout=5) == request.payload
                except ServiceError:
                    pass
                assert request.future.done()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_dead_worker_rejects_instead_of_hanging(self):
        batcher = MicroBatcher(echo, max_batch_size=1, max_batch_delay=0.0)
        first = make_requests("ok")
        batcher.submit(first)
        assert first[0].future.result(timeout=5) == "ok"

        def explode():
            raise RuntimeError("scheduler bug")

        # Simulate the scheduling machinery itself dying (not the execute
        # callback, whose exceptions are delivered to the batch and leave
        # the worker alive).
        batcher._next_batch = explode
        # The worker is parked inside the original _next_batch; one more
        # request flushes it through so the next loop iteration hits the
        # fault and the thread dies.
        poison = make_requests("poison")
        batcher.submit(poison)
        assert poison[0].future.result(timeout=5) == "poison"
        batcher._worker.join(timeout=5)
        assert not batcher._worker.is_alive()
        with pytest.raises(ServiceError, match="worker thread died"):
            batcher.submit(make_requests("late"))
        # start() recovers with a fresh worker once the fault is removed.
        del batcher._next_batch
        batcher.start()
        again = make_requests("again")
        batcher.submit(again)
        assert again[0].future.result(timeout=5) == "again"
        batcher.close()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_abnormal_worker_death_fails_queued_futures(self):
        release = threading.Event()
        entered = threading.Event()

        def gated(batch):
            entered.set()
            if not release.wait(timeout=5):
                raise TimeoutError("gate never opened")
            return echo(batch)

        batcher = MicroBatcher(gated, max_batch_size=1, max_batch_delay=0.0)
        running = make_requests("running")
        batcher.submit(running)
        assert entered.wait(timeout=5)
        queued = make_requests("stranded")
        batcher.submit(queued)  # waits behind the gated batch

        def explode():
            raise RuntimeError("scheduler bug")

        batcher._next_batch = explode
        release.set()
        batcher._worker.join(timeout=5)
        # The running batch completed; the queued one was failed by the
        # worker's exit path instead of hanging forever.
        assert running[0].future.result(timeout=5) == "running"
        with pytest.raises(ServiceError, match="exited with requests queued"):
            queued[0].future.result(timeout=5)

    def test_result_length_mismatch_fails_the_batch(self):
        def short_changed(batch):
            return [request.payload for request in batch][:-1]

        batcher = MicroBatcher(short_changed, start=False)
        requests = make_requests("a", "b", "c")
        batcher.submit(requests)
        for request in requests:
            with pytest.raises(ServiceError, match="returned 2 results"):
                request.future.result(timeout=0)


class TestValidation:
    def test_bad_parameters(self):
        with pytest.raises(ServiceError, match="max_batch_size"):
            MicroBatcher(echo, max_batch_size=0, start=False)
        with pytest.raises(ServiceError, match="max_batch_delay"):
            MicroBatcher(echo, max_batch_delay=-1, start=False)
        with pytest.raises(ServiceError, match="max_queue_depth"):
            MicroBatcher(echo, max_queue_depth=0, start=False)
