"""Figure 5b: size-scaled valuations (exp(|e|^k), N(|e|^k, 10)) on the world
workloads.

Paper finding: for the skewed workload with k >= 1 the revenue concentrates
in a few huge edges and every algorithm extracts most of it; for small k the
algorithms separate, with LPIP/CIP in front.
"""

import pytest

from repro.experiments.figures import figure5b_exponential, figure5b_normal

from benchmarks.conftest import save_artifact

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow



@pytest.mark.parametrize("workload_name", ["skewed", "uniform"])
def test_fig5b_exponential(benchmark, workload_name):
    artifact = benchmark.pedantic(
        figure5b_exponential, args=(workload_name,), rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    series = artifact.data["series"]
    # Sanity: normalized revenue within bounds everywhere.
    for name, values in series.items():
        if name == "subadditive bound":
            continue
        assert all(0.0 <= value <= 1.0 + 1e-6 for value in values), name
    # An LP-based pricing beats the uniform item price at every parameter.
    # (The exponential model's huge variance means a broad edge can still
    # draw a low valuation and cap LPIP — see EXPERIMENTS.md — so the
    # assertion covers the better of LPIP and CIP.)
    for lpip_val, cip_val, uip_val in zip(
        series["lpip"], series["cip"], series["uip"]
    ):
        assert max(lpip_val, cip_val) >= uip_val - 0.05


@pytest.mark.parametrize("workload_name", ["skewed"])
def test_fig5b_normal_high_k_extracts_most_revenue(benchmark, workload_name):
    artifact = benchmark.pedantic(
        figure5b_normal, args=(workload_name,), rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    series = artifact.data["series"]
    # Parameter order is k = 2, 3/2, 1, 1/2, 1/4; at k=2 the large edges
    # dominate and LPIP extracts the lion's share (paper: "all algorithms
    # perform very well").
    assert series["lpip"][0] > 0.6
