"""Unit tests for hypergraphs and pricing instances."""

import numpy as np
import pytest

from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.exceptions import PricingError


@pytest.fixture
def hypergraph():
    return Hypergraph(4, [{0, 1}, {1, 2}, {1}, set()], labels=["a", "b", "c", "d"])


class TestHypergraph:
    def test_num_edges(self, hypergraph):
        assert hypergraph.num_edges == 4

    def test_degrees(self, hypergraph):
        assert list(hypergraph.degrees) == [1, 3, 1, 0]

    def test_max_degree(self, hypergraph):
        assert hypergraph.max_degree == 3

    def test_max_degree_empty(self):
        assert Hypergraph(0, []).max_degree == 0

    def test_max_edge_size(self, hypergraph):
        assert hypergraph.max_edge_size == 2

    def test_avg_edge_size(self, hypergraph):
        assert hypergraph.avg_edge_size == pytest.approx(5 / 4)

    def test_avg_edge_size_no_edges(self):
        assert Hypergraph(3, []).avg_edge_size == 0.0

    def test_incidence(self, hypergraph):
        assert hypergraph.incidence[1] == [0, 1, 2]

    def test_edge_sizes(self, hypergraph):
        assert list(hypergraph.edge_sizes()) == [2, 2, 1, 0]

    def test_used_items(self, hypergraph):
        assert hypergraph.used_items() == [0, 1, 2]

    def test_edges_with_unique_item(self, hypergraph):
        # items 0 and 2 have degree 1; edges 0 and 1 contain them.
        assert hypergraph.edges_with_unique_item() == [0, 1]

    def test_out_of_range_item_rejected(self):
        with pytest.raises(PricingError, match="out of range"):
            Hypergraph(2, [{5}])

    def test_negative_num_items_rejected(self):
        with pytest.raises(PricingError):
            Hypergraph(-1, [])

    def test_label_count_checked(self):
        with pytest.raises(PricingError):
            Hypergraph(2, [{0}], labels=["a", "b"])

    def test_stats(self, hypergraph):
        stats = hypergraph.stats()
        assert stats.num_edges == 4
        assert stats.max_degree == 3
        assert stats.num_empty_edges == 1
        assert stats.num_edges_with_unique_item == 2


class TestPricingInstance:
    def test_valuation_length_checked(self, hypergraph):
        with pytest.raises(PricingError):
            PricingInstance(hypergraph, [1.0])

    def test_negative_valuation_rejected(self, hypergraph):
        with pytest.raises(PricingError):
            PricingInstance(hypergraph, [1, 2, -3, 4])

    def test_nan_valuation_rejected(self, hypergraph):
        with pytest.raises(PricingError):
            PricingInstance(hypergraph, [1, 2, np.nan, 4])

    def test_total_valuation(self, hypergraph):
        instance = PricingInstance(hypergraph, [1, 2, 3, 4])
        assert instance.total_valuation() == 10.0

    def test_edges_by_valuation(self, hypergraph):
        instance = PricingInstance(hypergraph, [1, 4, 2, 3])
        assert instance.edges_by_valuation() == [1, 3, 2, 0]
        assert instance.edges_by_valuation(descending=False) == [0, 2, 3, 1]

    def test_properties_delegate(self, hypergraph):
        instance = PricingInstance(hypergraph, [1, 2, 3, 4], "x")
        assert instance.num_items == 4
        assert instance.num_edges == 4
        assert instance.edges is hypergraph.edges
