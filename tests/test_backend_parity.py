"""Cross-backend parity: every conflict backend produces identical hyperedges.

This is the tentpole guarantee of the backend registry — ``naive`` is the
definition, ``incremental`` and ``vectorized`` are optimizations, ``auto``
is a per-query mixture; all four must agree *exactly* on every workload
shape: flat selections (uniform), mixed hand-built shapes over a synthetic
database, and the join/aggregate templates of SSB.
"""

import random

import pytest

from repro.db.database import Database
from repro.db.query import sql_query
from repro.db.relation import Relation
from repro.db.schema import Column, ColumnType, TableSchema
from repro.qirana.backends import available_backends
from repro.qirana.conflict import ConflictSetEngine
from repro.support.delta import CellDelta, SupportInstance
from repro.support.generator import SupportSet
from repro.workloads import get_workload

BACKENDS = ("naive", "incremental", "vectorized", "auto")


def assert_hyperedge_parity(support, queries):
    hypergraphs = {
        backend: ConflictSetEngine(support, backend=backend).build_hypergraph(queries)
        for backend in BACKENDS
    }
    reference = hypergraphs["naive"]
    for backend, hypergraph in hypergraphs.items():
        for query, edge, expected in zip(
            queries, hypergraph.edges, reference.edges
        ):
            assert edge == expected, (backend, query.text)


def test_registry_exposes_all_builtin_backends():
    names = available_backends()
    for backend in BACKENDS:
        assert backend in names


def test_uniform_mini_workload_parity():
    workload = get_workload("uniform", scale=0.1)
    support = workload.support(size=60, seed=2, mode="row")
    random.seed(1)
    queries = random.sample(workload.queries, 40)
    assert_hyperedge_parity(support, queries)


def test_ssb_mini_workload_parity():
    workload = get_workload("ssb", scale=0.1)
    support = workload.support(size=60, seed=3, mode="row")
    random.seed(2)
    queries = random.sample(workload.queries, 40)
    assert_hyperedge_parity(support, queries)


@pytest.fixture
def synthetic_db() -> Database:
    items = Relation(
        TableSchema(
            "Items",
            (
                Column("id", ColumnType.INT),
                Column("grp", ColumnType.TEXT),
                Column("qty", ColumnType.INT),
                Column("price", ColumnType.FLOAT),
                Column("note", ColumnType.TEXT),
            ),
            primary_key=("id",),
        )
    )
    values = [
        (1, "a", 10, 1.5, "x"),
        (2, "b", 20, 2.5, None),
        (3, "a", 30, 3.5, "y"),
        (4, "c", 40, 4.5, "x"),
        (5, "b", 50, 5.5, "z"),
        (6, "a", 10, 1.5, "x"),
    ]
    items.insert_many(values)
    groups = Relation(
        TableSchema(
            "Groups",
            (Column("grp", ColumnType.TEXT), Column("weight", ColumnType.INT)),
        )
    )
    groups.insert_many([("a", 1), ("b", 2), ("c", 3)])
    return Database("synthetic", [items, groups])


def test_synthetic_mini_workload_parity(synthetic_db):
    # Hand-built support hitting every interesting case: single-cell
    # patches, multi-row swaps, NULL patches, multi-table instances.
    support = SupportSet(
        synthetic_db,
        [
            SupportInstance(0, (CellDelta("Items", 0, "qty", 15),)),
            SupportInstance(1, (CellDelta("Items", 1, "grp", "a"),)),
            # Swap: rows 0 and 5 exchange qty values — bags unchanged.
            SupportInstance(
                2,
                (
                    CellDelta("Items", 0, "qty", 99),
                    CellDelta("Items", 5, "qty", 11),
                ),
            ),
            SupportInstance(3, (CellDelta("Items", 2, "note", None),)),
            SupportInstance(4, (CellDelta("Items", 1, "note", "w"),)),
            SupportInstance(
                5,
                (
                    CellDelta("Items", 3, "qty", 41),
                    CellDelta("Groups", 2, "weight", 9),
                ),
            ),
            SupportInstance(6, (CellDelta("Groups", 0, "weight", 7),)),
            SupportInstance(7, (CellDelta("Items", 4, "price", 50.5),)),
        ],
    )
    queries = [
        sql_query(text, synthetic_db)
        for text in [
            "select qty from Items",
            "select id, qty from Items where qty >= 20",
            "select * from Items where grp = 'a'",
            "select count(*) from Items where qty between 10 and 30",
            "select count(note) from Items",
            "select sum(qty) from Items where grp != 'c'",
            "select avg(qty) from Items",
            "select min(price) from Items",
            "select grp, count(*) from Items group by grp",
            "select grp, sum(qty) from Items group by grp",
            "select Items.id from Items, Groups where Items.grp = Groups.grp "
            "and Groups.weight >= 2",
            "select distinct grp from Items",
            "select id from Items order by qty desc limit 3",
            "select note from Items where note like 'x%'",
            "select id from Items where grp in ('a', 'c')",
            "select id, qty * 2 + 1 from Items where qty / 10 >= 2",
        ]
    ]
    assert_hyperedge_parity(support, queries)


def test_ordered_query_multi_row_swap_parity():
    # Regression: an ORDER BY answer is a sequence. A multi-row patch that
    # swaps projected values between rows preserves the bag but can reorder
    # a tie group (instance 0) — a conflict that bag comparison misses — or
    # leave the sorted output identical (no conflict for the ordered output
    # when nothing projected distinguishes the rows). Backends must agree
    # with naive on both.
    table = Relation(
        TableSchema(
            "T",
            (
                Column("id", ColumnType.INT),
                Column("Name", ColumnType.TEXT),
                Column("K", ColumnType.INT),
            ),
        )
    )
    table.insert_many([(1, "A", 7), (2, "B", 7), (3, "C", 5)])
    db = Database("ordered", [table])
    support = SupportSet(
        db,
        [
            # Tie-group swap: bag unchanged, ordered answer reordered.
            SupportInstance(
                0, (CellDelta("T", 0, "Name", "B"), CellDelta("T", 1, "Name", "A"))
            ),
            # Cross-tie swap: bag of (Name, K) changes.
            SupportInstance(
                1, (CellDelta("T", 0, "Name", "C"), CellDelta("T", 2, "Name", "A"))
            ),
        ],
    )
    queries = [
        sql_query("select Name, K from T order by K", db),
        sql_query("select Name from T order by K", db),
        sql_query("select Name, K from T", db),
    ]
    assert_hyperedge_parity(support, queries)


def test_ordered_group_by_membership_swap_parity():
    # Regression: GROUP BY output rows are emitted in group *insertion*
    # order (first occurrence in the source), which breaks ORDER BY ties. A
    # patch swapping two rows' group membership leaves every group's count
    # unchanged but flips which group is encountered first — a conflict only
    # visible in the ordered answer sequence.
    table = Relation(
        TableSchema("T", (Column("id", ColumnType.INT), Column("g", ColumnType.TEXT)))
    )
    table.insert_many([(1, "a"), (2, "b"), (3, "a"), (4, "b")])
    db = Database("grouped", [table])
    support = SupportSet(
        db,
        [
            SupportInstance(
                0, (CellDelta("T", 0, "g", "b"), CellDelta("T", 1, "g", "a"))
            ),
        ],
    )
    queries = [
        sql_query("select g, count(*) as c from T group by g order by c", db),
        sql_query("select g, count(*) from T group by g", db),
    ]
    assert_hyperedge_parity(support, queries)


def test_programmatic_ordered_query_without_sort_node_parity():
    # Regression: Query(ordered=True) makes the answer a sequence even when
    # the plan carries no Sort node; the checkers must not fall back to bag
    # comparison on the plan shape alone.
    from repro.db.expr import ColumnRef
    from repro.db.plan import Project, ProjectItem, TableScan
    from repro.db.query import Query

    table = Relation(
        TableSchema("T", (Column("id", ColumnType.INT), Column("v", ColumnType.INT)))
    )
    table.insert_many([(1, 10), (2, 20)])
    db = Database("ordered-flag", [table])
    support = SupportSet(
        db,
        [
            SupportInstance(
                0, (CellDelta("T", 0, "v", 20), CellDelta("T", 1, "v", 10))
            ),
        ],
    )
    query = Query(
        "manual-ordered",
        Project(TableScan("T"), [ProjectItem(ColumnRef("v"), "v")]),
        ordered=True,
    )
    assert_hyperedge_parity(support, [query])


def test_vectorized_plan_cache_keyed_by_query_identity(synthetic_db):
    # Two programmatic queries sharing text but with different plans must
    # not reuse each other's compiled batch plan.
    from repro.db.expr import ColumnRef
    from repro.db.plan import Project, ProjectItem, TableScan
    from repro.db.query import Query

    support = SupportSet(
        synthetic_db,
        [
            SupportInstance(0, (CellDelta("Items", 0, "qty", 15),)),
            SupportInstance(1, (CellDelta("Items", 1, "note", "w"),)),
        ],
    )
    by_qty = Query(
        "manual", Project(TableScan("Items"), [ProjectItem(ColumnRef("qty"), "qty")])
    )
    by_note = Query(
        "manual", Project(TableScan("Items"), [ProjectItem(ColumnRef("note"), "note")])
    )
    vectorized = ConflictSetEngine(support, backend="vectorized")
    naive = ConflictSetEngine(support, backend="naive")
    assert vectorized.conflict_set(by_qty) == naive.conflict_set(by_qty)
    assert vectorized.conflict_set(by_note) == naive.conflict_set(by_note)


def test_parity_under_cell_mode_sampling(synthetic_db):
    workload = get_workload("skewed", scale=0.1)
    support = workload.support(size=50, seed=7, mode="cell", cells_per_instance=3)
    random.seed(5)
    queries = random.sample(workload.queries, 25)
    assert_hyperedge_parity(support, queries)
