"""Randomized cross-backend parity fuzzing.

Every conflict backend must produce *exactly* the hyperedge the naive
definition produces — ``CS(Q, D) = {D' : Q(D') != Q(D)}`` — on randomly
generated databases, support sets, and queries spanning the whole decision
surface: filters, projections, GROUP BY, all five aggregates over
INT/FLOAT/TEXT columns, ORDER BY, HAVING, and two-table equi-joins (see
:func:`repro.db.testing.random_fuzz_query_text` for the grammar).

Tier-1 runs a reduced case count; ``--runslow`` runs the full suite
(>= 200 generated cases). The base seed is overridable via the
``REPRO_FUZZ_SEED`` environment variable; on a mismatch a standalone repro
script is written under ``tests/artifacts/parity_fuzz/`` (uploaded as a CI
artifact on failure) and the failure message names the seed and case, so
every differential bug is reproducible from the log alone.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.db.query import sql_query
from repro.db.testing import (
    random_fuzz_database,
    random_fuzz_query_text,
    random_support_set,
    render_parity_repro,
)
from repro.exceptions import QueryError
from repro.qirana.conflict import ConflictSetEngine

BACKENDS = ("incremental", "vectorized", "auto")
QUERIES_PER_CASE = 6
FULL_CASES = 240
TIER1_CASES = 60

#: Override to replay a failing run: REPRO_FUZZ_SEED=<seed> pytest ...
BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260727"))

ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts" / "parity_fuzz"


def _case_count(request) -> int:
    return FULL_CASES if request.config.getoption("--runslow") else TIER1_CASES


def _dump_repro(db, support, query_text: str, case: int, mismatches) -> Path:
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    note = (
        f"seed={BASE_SEED} case={case} (rng seed {BASE_SEED + case})\n"
        f"query: {query_text}\n"
        f"mismatches: {mismatches}\n"
    )
    path = ARTIFACT_DIR / f"repro_seed{BASE_SEED}_case{case}.py"
    path.write_text(render_parity_repro(db, support, query_text, note))
    return path


def _run_case(case: int) -> None:
    rng = np.random.default_rng(BASE_SEED + case)
    db = random_fuzz_database(rng)
    support = random_support_set(
        db, rng, size=int(rng.integers(12, 28)), max_deltas=3
    )
    queries = []
    for _ in range(QUERIES_PER_CASE):
        text = random_fuzz_query_text(rng)
        try:
            queries.append(sql_query(text, db))
        except QueryError:  # pragma: no cover - grammar stays in-dialect
            pytest.fail(f"fuzz grammar produced an unplannable query: {text}")

    oracle = ConflictSetEngine(support, backend="naive")
    engines = {backend: ConflictSetEngine(support, backend=backend) for backend in BACKENDS}
    # Fuzz candidate sets are smaller than auto's default batch threshold;
    # lower it so the fuzzer exercises auto's vectorized dispatch path too
    # (shape gate + threshold + candidate forwarding), not just its
    # incremental branch.
    engines["auto"] = ConflictSetEngine(support, backend="auto", min_batch_candidates=1)
    for query in queries:
        expected = oracle.conflict_set(query)
        mismatches = {}
        for backend, engine in engines.items():
            edge = engine.conflict_set(query)
            if edge != expected:
                mismatches[backend] = sorted(edge)
        if mismatches:
            path = _dump_repro(db, support, query.text, case, mismatches)
            pytest.fail(
                f"hyperedge parity mismatch (seed={BASE_SEED}, case={case})\n"
                f"query: {query.text}\n"
                f"naive: {sorted(expected)}\n"
                f"mismatching backends: {mismatches}\n"
                f"repro script: {path}"
            )


@pytest.mark.parametrize("chunk", range(12))
def test_parity_fuzz(request, chunk):
    """Each chunk runs 1/12th of the configured case budget."""
    cases = _case_count(request)
    per_chunk = cases // 12
    for case in range(chunk * per_chunk, (chunk + 1) * per_chunk):
        _run_case(case)


def test_full_budget_meets_issue_floor():
    # The --runslow configuration must cover at least 200 generated cases.
    assert FULL_CASES >= 200
    assert FULL_CASES % 12 == 0 and TIER1_CASES % 12 == 0
