"""Online posted-price learning — the paper's "Learning buyer valuations"
future-work direction (Section 7.2).

Buyers arrive one at a time with a fixed but *unknown* valuation for their
query bundle; the market posts a price and only observes accept/reject. The
policies here — fixed-grid UCB, EXP3, and a multiplicative price-walk — learn
a uniform bundle price online; the environment also supports per-item price
learning for additive pricing.
"""

from repro.online.env import BuyerStream, OnlineMarketEnv
from repro.online.item_pricing import (
    ItemSimulationResult,
    OnlineItemPricingPolicy,
    simulate_item_pricing,
)
from repro.online.policies import (
    EpsilonGreedyPolicy,
    Exp3Policy,
    FixedPricePolicy,
    PriceWalkPolicy,
    UCBPolicy,
)
from repro.online.simulate import SimulationResult, simulate

__all__ = [
    "BuyerStream",
    "EpsilonGreedyPolicy",
    "Exp3Policy",
    "FixedPricePolicy",
    "ItemSimulationResult",
    "OnlineItemPricingPolicy",
    "OnlineMarketEnv",
    "PriceWalkPolicy",
    "SimulationResult",
    "UCBPolicy",
    "simulate",
    "simulate_item_pricing",
]
