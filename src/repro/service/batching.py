"""Micro-batch scheduling with bounded-queue admission control.

:class:`MicroBatcher` is the scheduler that used to live inside
:class:`~repro.service.server.PricingService`, extracted so every serving
tier — the single-market service and each shard of
:class:`~repro.service.sharding.ShardedPricingService` — runs the same
coalescing policy:

- requests queue until the batch reaches ``max_batch_size`` or the *oldest*
  queued request has waited ``max_batch_delay`` seconds (bursts flush
  immediately while the worker is busy; only an isolated request pays the
  window),
- the queue is **bounded**: when ``max_queue_depth`` requests are already
  waiting, new submissions are shed with a typed
  :class:`~repro.exceptions.ServiceOverloadError` instead of queueing
  unboundedly — the open-loop overload behaviour a serving tier needs.
  Accepted and shed requests are counted separately so a load run can prove
  its shed rate.

The execute callback receives a list of :class:`BatchRequest` and returns
one result per request; the batcher resolves the futures (or propagates one
exception to every waiter in the batch).
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import Future
from dataclasses import dataclass

from repro.exceptions import ServiceError, ServiceOverloadError

#: Every live batcher, so a forked child can repair inherited state.
_LIVE_BATCHERS: weakref.WeakSet = weakref.WeakSet()


def _reset_batchers_after_fork() -> None:
    for batcher in list(_LIVE_BATCHERS):
        batcher._reset_in_child()


if hasattr(os, "register_at_fork"):
    # A fork can happen while some batcher's condition lock is held by a
    # thread that does not exist in the child, and the child inherits a
    # reference to a worker thread that is not running there. Both would
    # deadlock (or hang interpreter teardown) the first time the child
    # touches the batcher — the process-per-shard tier forks exactly such
    # children. Reset every batcher to a coherent idle state in the child.
    os.register_at_fork(after_in_child=_reset_batchers_after_fork)


@dataclass
class BatchRequest:
    """One queued request awaiting a micro-batch flush."""

    payload: object
    key: str
    future: Future
    enqueued: float

    @classmethod
    def make(cls, payload: object, key: str) -> "BatchRequest":
        return cls(payload, key, Future(), time.monotonic())


@dataclass(frozen=True)
class BatcherStats:
    """A snapshot of one batcher's scheduling and admission counters."""

    batches: int
    batched_requests: int
    max_batch_size: int
    accepted: int
    shed: int
    queue_depth: int
    max_queue_depth: int | None

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    @property
    def shed_rate(self) -> float:
        """Shed submissions per offered submission (0.0 when idle)."""
        offered = self.accepted + self.shed
        return self.shed / offered if offered else 0.0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": self.mean_batch_size,
            "accepted": self.accepted,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "queue_depth": self.queue_depth,
            "max_queue_depth": self.max_queue_depth,
        }


class MicroBatcher:
    """Coalesces concurrent requests into bounded batches on one worker thread.

    Parameters
    ----------
    execute:
        ``execute(batch) -> results`` computes one result per request, in
        order. It runs on the worker thread (or the caller's thread in
        synchronous mode) and may raise: the exception is delivered to every
        future of the batch.
    max_batch_size / max_batch_delay:
        The flush policy (see module docstring).
    max_queue_depth:
        Bound on queued-but-unflushed requests. ``None`` disables admission
        control (the pre-sharding behaviour). Submissions that would push
        an existing backlog past the bound are rejected whole with
        :class:`ServiceOverloadError` — a multi-request submission is never
        partially admitted. An *empty* queue admits any submission whole
        (the progress guarantee: a bulk workload larger than the bound —
        ``optimize_pricing`` over hundreds of queries — is admissible and
        drains in ``max_batch_size`` flushes, rather than being permanently
        unadmittable), so the instantaneous queue depth is bounded by
        ``max_queue_depth`` plus one submission.
    start:
        When ``False`` no worker thread runs and submissions execute
        synchronously on the calling thread (still batched per call, never
        shed — there is no queue to bound): the deterministic mode tests
        and offline scripts use.
    """

    def __init__(
        self,
        execute: Callable[[list[BatchRequest]], Sequence[object]],
        *,
        max_batch_size: int = 64,
        max_batch_delay: float = 0.001,
        max_queue_depth: int | None = None,
        name: str = "micro-batcher",
        start: bool = True,
    ):
        if max_batch_size < 1:
            raise ServiceError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_batch_delay < 0:
            raise ServiceError("max_batch_delay must be non-negative")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ServiceError(
                f"max_queue_depth must be >= 1 or None, got {max_queue_depth}"
            )
        self._execute = execute
        self.max_batch_size = max_batch_size
        self.max_batch_delay = max_batch_delay
        self.max_queue_depth = max_queue_depth
        self.name = name
        self._cond = threading.Condition()
        self._pending: deque[BatchRequest] = deque()
        self._closed = False
        self._worker: threading.Thread | None = None
        # Scheduling counters are written by the worker thread only;
        # admission counters are written under the condition lock.
        self._batches = 0
        self._batched_requests = 0
        self._max_batch = 0
        self._accepted = 0
        self._shed = 0
        _LIVE_BATCHERS.add(self)
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the worker thread (idempotent, safe to call concurrently)."""
        with self._cond:
            if self._worker is not None and self._worker.is_alive():
                return
            self._closed = False
            worker = threading.Thread(
                target=self._drain_loop, name=self.name, daemon=True
            )
            self._worker = worker
        worker.start()

    def close(self) -> None:
        """Flush queued requests, stop the worker, reject new submissions.

        Idempotent and race-safe: requests queued concurrently with the
        close either run in the worker's final flush or fail with a typed
        :class:`ServiceError` — a future handed to :meth:`submit` is never
        left unresolved. Callers already blocked on ``future.result()``
        are therefore guaranteed to wake.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()
            worker = self._worker
        if worker is not None:
            worker.join()
        with self._cond:
            if self._worker is worker:
                self._worker = None
            # The worker exits only when the queue is drained, but a
            # submission that won the admission race against a previous
            # close (or a worker that died abnormally) can leave requests
            # behind; fail them rather than strand their futures.
            leftovers = list(self._pending)
            self._pending.clear()
        self._fail_requests(
            leftovers, ServiceError(f"{self.name} closed before the request ran")
        )

    def _reset_in_child(self) -> None:
        """Repair this batcher inside a freshly forked child process.

        The parent's worker thread (daemon, so it cannot hang interpreter
        exit) does not run in the child, and the inherited condition lock
        may have been captured mid-acquire by a thread that no longer
        exists. Fresh primitives, an empty queue, and no phantom worker
        leave the child's copy coherently idle: restartable, or
        synchronous if never started. Inherited queued futures belong to
        parent-side callers and are dropped, not failed — their real
        copies resolve in the parent.
        """
        self._cond = threading.Condition()
        self._pending = deque()
        self._worker = None

    @staticmethod
    def _fail_requests(requests: Sequence[BatchRequest], error: BaseException) -> None:
        for request in requests:
            if not request.future.done():
                request.future.set_exception(error)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, requests: list[BatchRequest]) -> None:
        """Queue ``requests`` for batching (or execute them synchronously).

        Raises :class:`ServiceError` when closed and
        :class:`ServiceOverloadError` when the bounded queue cannot admit
        the whole submission; in the latter case none of the requests were
        queued and their futures stay unresolved.
        """
        with self._cond:
            # Closed-ness and worker liveness are decided under the lock:
            # an unlocked fast path can race close() into queueing behind a
            # worker that will never drain (a future that blocks forever).
            if self._closed:
                raise ServiceError(f"{self.name} is closed")
            worker = self._worker
            if worker is not None and not worker.is_alive():
                raise ServiceError(
                    f"{self.name} worker thread died; restart the batcher"
                )
            if worker is not None:
                if (
                    self.max_queue_depth is not None
                    and self._pending
                    and len(self._pending) + len(requests) > self.max_queue_depth
                ):
                    self._shed += len(requests)
                    raise ServiceOverloadError(
                        f"{self.name} queue is full "
                        f"({len(self._pending)}/{self.max_queue_depth} waiting, "
                        f"{len(requests)} offered); request shed"
                    )
                self._accepted += len(requests)
                self._pending.extend(requests)
                self._cond.notify_all()
                return
            # Synchronous mode: no worker thread, run in-line (still one
            # execute call per max_batch_size chunk, nothing to shed).
            self._accepted += len(requests)
        for start in range(0, len(requests), self.max_batch_size):
            self._run(requests[start : start + self.max_batch_size])

    def would_shed(self, count: int) -> bool:
        """Whether a ``count``-request submission would currently be shed.

        Advisory (the answer can change before a subsequent :meth:`submit`,
        which remains the authoritative check) — callers scattering one
        request across several batchers use it to fail fast *before*
        enqueueing anywhere, so a shed request does not leave work behind
        on the queues that would have admitted it.
        """
        with self._cond:
            return (
                self._worker is not None
                and self.max_queue_depth is not None
                and bool(self._pending)
                and len(self._pending) + count > self.max_queue_depth
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> BatcherStats:
        with self._cond:
            return BatcherStats(
                batches=self._batches,
                batched_requests=self._batched_requests,
                max_batch_size=self._max_batch,
                accepted=self._accepted,
                shed=self._shed,
                queue_depth=len(self._pending),
                max_queue_depth=self.max_queue_depth,
            )

    # ------------------------------------------------------------------
    # Worker internals
    # ------------------------------------------------------------------

    def _drain_loop(self) -> None:
        try:
            while True:
                batch = self._next_batch()
                if batch is None:
                    return
                self._run(batch)
        finally:
            # Normal exit leaves nothing behind; an abnormal death (an
            # exception escaping the scheduling machinery itself) must not
            # strand queued futures.
            with self._cond:
                leftovers = list(self._pending)
                self._pending.clear()
            self._fail_requests(
                leftovers,
                ServiceError(f"{self.name} worker exited with requests queued"),
            )

    def _next_batch(self) -> list[BatchRequest] | None:
        """Block until a micro-batch is due; ``None`` when closed and drained."""
        with self._cond:
            while not self._pending and not self._closed:
                self._cond.wait()
            if not self._pending:
                return None  # closed and drained
            # The batching window is anchored at the *oldest* request: if it
            # queued while the worker was busy with the previous batch, its
            # window has already elapsed and the flush is immediate.
            deadline = self._pending[0].enqueued + self.max_batch_delay
            while len(self._pending) < self.max_batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            size = min(len(self._pending), self.max_batch_size)
            return [self._pending.popleft() for _ in range(size)]

    def _run(self, batch: list[BatchRequest]) -> None:
        try:
            results = self._execute(batch)
        except BaseException as exc:  # propagate to every waiter
            self._fail_requests(batch, exc)
            return
        with self._cond:
            self._batches += 1
            self._batched_requests += len(batch)
            self._max_batch = max(self._max_batch, len(batch))
        if len(results) != len(batch):
            # A buggy execute callback must not strand the unmatched tail
            # of the batch on futures nobody will ever resolve.
            self._fail_requests(
                batch,
                ServiceError(
                    f"{self.name} execute returned {len(results)} results "
                    f"for a batch of {len(batch)}"
                ),
            )
            return
        for request, result in zip(batch, results):
            if not request.future.done():
                request.future.set_result(result)
