"""Bayesian instances, expected revenue, EV-optimal UBP, and SAA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayesian import (
    BayesianInstance,
    DiscreteValuation,
    ExpectedRevenueUBP,
    ExponentialValuation,
    UniformValuation,
    average_realized_revenue,
    expected_revenue,
    pooled_empirical_distribution,
    saa_pricing,
    saa_uniform_bundle_price,
    stack_samples,
    uniform_edge_distributions,
)
from repro.core.algorithms import UBP, UIP
from repro.core.hypergraph import Hypergraph
from repro.core.pricing import ItemPricing, UniformBundlePricing
from repro.exceptions import PricingError


@pytest.fixture
def chain_instance() -> BayesianInstance:
    """Three edges over four items with mixed distributions."""
    hypergraph = Hypergraph(4, [{0, 1}, {1, 2}, {2, 3}])
    return BayesianInstance(
        hypergraph,
        [
            UniformValuation(0.0, 10.0),
            ExponentialValuation(4.0),
            DiscreteValuation([2.0, 6.0], [0.5, 0.5]),
        ],
    )


class TestBayesianInstance:
    def test_distribution_count_is_validated(self):
        hypergraph = Hypergraph(2, [{0}, {1}])
        with pytest.raises(PricingError, match="distributions"):
            BayesianInstance(hypergraph, [UniformValuation(0, 1)])

    def test_realize_produces_valid_instance(self, chain_instance):
        realized = chain_instance.realize(rng=0)
        assert realized.num_edges == 3
        assert np.all(realized.valuations >= 0)
        # Same seed, same draw; different seed, (almost surely) different.
        again = chain_instance.realize(rng=0)
        np.testing.assert_allclose(realized.valuations, again.valuations)
        other = chain_instance.realize(rng=1)
        assert not np.allclose(realized.valuations, other.valuations)

    def test_expected_welfare(self, chain_instance):
        assert chain_instance.expected_welfare() == pytest.approx(
            5.0 + 4.0 + 4.0
        )

    def test_expected_revenue_decomposes_per_edge(self, chain_instance):
        pricing = ItemPricing([1.0, 2.0, 0.0, 3.0])
        # Edge prices: {0,1} -> 3, {1,2} -> 2, {2,3} -> 3.
        expected = (
            3.0 * chain_instance.distributions[0].survival(3.0)
            + 2.0 * chain_instance.distributions[1].survival(2.0)
            + 3.0 * chain_instance.distributions[2].survival(3.0)
        )
        assert expected_revenue(pricing, chain_instance) == pytest.approx(expected)
        assert chain_instance.expected_revenue(pricing) == pytest.approx(expected)

    def test_expected_revenue_bounded_by_welfare(self, chain_instance):
        # Markov: p * P(v >= p) <= E[v] edge by edge.
        for price in (0.5, 2.0, 7.0):
            pricing = UniformBundlePricing(price)
            assert (
                expected_revenue(pricing, chain_instance)
                <= chain_instance.expected_welfare() + 1e-9
            )


class TestExpectedRevenueUBP:
    def test_single_discrete_edge_is_exact(self):
        hypergraph = Hypergraph(1, [{0}])
        instance = BayesianInstance(
            hypergraph, [DiscreteValuation([1.0, 10.0], [0.8, 0.2])]
        )
        pricing, revenue = ExpectedRevenueUBP().run(instance)
        # Post 10: 10 * 0.2 = 2 beats post 1: 1 * 1 = 1.
        assert pricing.bundle_price == pytest.approx(10.0)
        assert revenue == pytest.approx(2.0)

    def test_identical_uniform_edges_recover_single_buyer_optimum(self):
        hypergraph = Hypergraph(3, [{0}, {1}, {2}])
        instance = BayesianInstance(
            hypergraph, uniform_edge_distributions(3, UniformValuation(0.0, 8.0))
        )
        pricing, revenue = ExpectedRevenueUBP().run(instance)
        # Each edge's curve peaks at 4 with value 2; three edges -> 6.
        assert pricing.bundle_price == pytest.approx(4.0, rel=0.05)
        assert revenue == pytest.approx(6.0, rel=0.02)

    def test_beats_every_individual_optimal_price(self, chain_instance):
        _, best = ExpectedRevenueUBP().run(chain_instance)
        for dist in chain_instance.distributions:
            price, _ = dist.optimal_price()
            candidate = UniformBundlePricing(price)
            assert best >= expected_revenue(candidate, chain_instance) - 1e-9

    def test_grid_size_validation(self):
        with pytest.raises(PricingError):
            ExpectedRevenueUBP(grid_size=1)


class TestSAA:
    def test_stack_shape(self, chain_instance):
        stacked = stack_samples(chain_instance, num_samples=5, rng=0)
        assert stacked.num_edges == 15
        assert stacked.num_items == 4
        with pytest.raises(PricingError):
            stack_samples(chain_instance, num_samples=0)

    def test_saa_ubp_converges_to_ev_optimum(self):
        hypergraph = Hypergraph(2, [{0}, {1}])
        instance = BayesianInstance(
            hypergraph, uniform_edge_distributions(2, UniformValuation(0.0, 10.0))
        )
        _, ev_optimal = ExpectedRevenueUBP().run(instance)
        result = saa_uniform_bundle_price(instance, num_samples=400, rng=1)
        assert result.num_samples == 400
        # With 800 pooled samples the SAA price should capture almost all of
        # the distribution-optimal expected revenue.
        assert result.true_expected_revenue >= 0.93 * ev_optimal

    def test_saa_with_item_pricing_algorithm(self, chain_instance):
        result = saa_pricing(chain_instance, UIP(), num_samples=50, rng=2)
        assert isinstance(result.pricing, ItemPricing)
        assert result.empirical_revenue >= 0.0
        assert result.true_expected_revenue >= 0.0

    def test_generalization_gap_shrinks_with_samples(self):
        hypergraph = Hypergraph(2, [{0}, {0, 1}])
        instance = BayesianInstance(
            hypergraph,
            [ExponentialValuation(3.0), ExponentialValuation(6.0)],
        )
        small = [
            abs(saa_pricing(instance, UBP(), 4, rng=seed).generalization_gap)
            for seed in range(12)
        ]
        large = [
            abs(saa_pricing(instance, UBP(), 256, rng=seed).generalization_gap)
            for seed in range(12)
        ]
        assert np.mean(large) < np.mean(small)

    def test_pooled_empirical_distribution(self, chain_instance):
        pooled = pooled_empirical_distribution(chain_instance, 100, rng=3)
        assert pooled.survival(0.0) == pytest.approx(1.0)
        # 3 edges x 100 samples pooled.
        assert len(pooled.values) == 300


class TestProphetBenchmark:
    def test_hindsight_ubp_dominates_ex_ante_ubp(self, chain_instance):
        # Running UBP after seeing valuations can only beat committing to a
        # single ex-ante price.
        hindsight = average_realized_revenue(
            UBP(), chain_instance, num_rounds=200, rng=5
        )
        _, ex_ante = ExpectedRevenueUBP().run(chain_instance)
        assert hindsight >= ex_ante - 0.05 * ex_ante
        with pytest.raises(PricingError):
            average_realized_revenue(UBP(), chain_instance, num_rounds=0)
