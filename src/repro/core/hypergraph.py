"""Hypergraphs over the support set and priced instances.

Following Section 3.3 of the paper: the support set ``S`` is the vertex set
(items are integers ``0..n-1``), each buyer's query maps to the hyperedge
``CS(Q, D)`` (its conflict set), and a *pricing instance* attaches one
valuation per hyperedge. Key structural parameters used throughout:

- ``n`` — number of items (support size),
- ``m`` — number of hyperedges (buyers/queries),
- ``k`` — size of the largest hyperedge,
- ``B`` — maximum number of hyperedges any item belongs to (max degree).

Besides the frozenset edge view, the hypergraph exposes a **CSR sparse
incidence matrix** in both orientations — :meth:`Hypergraph.edge_member_matrix`
(edge → items) and :meth:`Hypergraph.incidence_csr` (item → edges) — which is
what the vectorized revenue engine (:mod:`repro.core.evaluator`), the LP bulk
constructors (:meth:`repro.lp.model.LPModel.from_arrays`), and the simulation
loops operate on. Both orientations are built in one vectorized pass and
cached; within a row the column indices are ascending, so downstream array
code is deterministic.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import PricingError


def csr_take_rows(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Gather a row subset of a CSR block as a new (indptr, indices) pair.

    ``rows`` may repeat and need not be sorted; the output rows appear in the
    given order. Used to slice the frontier/sold/used-item sub-matrices that
    the LP bulk constructors consume.
    """
    rows = np.asarray(rows, dtype=np.int64)
    counts = indptr[rows + 1] - indptr[rows]
    sub_indptr = np.zeros(len(rows) + 1, dtype=np.int64)
    np.cumsum(counts, out=sub_indptr[1:])
    total = int(sub_indptr[-1])
    if total == 0:
        return sub_indptr, np.empty(0, dtype=indices.dtype)
    # Position of every output entry in the source array: the row's start
    # plus the entry's offset within its row.
    offsets = np.arange(total, dtype=np.int64) - np.repeat(sub_indptr[:-1], counts)
    positions = np.repeat(indptr[rows], counts) + offsets
    return sub_indptr, indices[positions]


class Hypergraph:
    """A hypergraph with integer items ``0..num_items-1``.

    Edges are stored as frozensets; the CSR incidence arrays (both
    orientations) and per-item incidence lists are built lazily and cached
    (the Layering algorithm, CIP, and the vectorized revenue engine use
    them heavily).

    Duplicate edges are **preserved as distinct hyperedges** (a multi-edge):
    two buyers whose queries have identical conflict sets are still two
    buyers, each with their own valuation, so no dedup happens here. Callers
    that want set semantics must dedup before construction.

    The structure is append/tombstone mutable for the online-delta path:
    :meth:`append_edges` adds hyperedges at the end (edge ids are stable),
    :meth:`tombstone_edges` empties edges in place (an empty edge is already
    a legal, price-zero hyperedge, so every derived view stays consistent),
    and :meth:`compact` reclaims tombstoned slots once their fraction grows.
    The edge-orientation CSR block is maintained incrementally; the
    item-orientation views are invalidated and rebuilt lazily on next use.
    """

    __slots__ = (
        "num_items",
        "edges",
        "labels",
        "_degrees",
        "_incidence",
        "_edge_indptr",
        "_edge_items",
        "_item_indptr",
        "_item_edges",
        "_tombstoned",
    )

    def __init__(
        self,
        num_items: int,
        edges: Iterable[Iterable[int]],
        labels: Sequence[str] | None = None,
    ):
        if num_items < 0:
            raise PricingError("num_items must be non-negative")
        self.num_items = num_items
        # Materialize all edges before any validation so error messages
        # always report the *full* edge count, and labels can be validated
        # up front instead of after a half-built edge list.
        self.edges: list[frozenset[int]] = [frozenset(edge) for edge in edges]
        if labels is not None and len(labels) != len(self.edges):
            raise PricingError(
                f"{len(labels)} labels for {len(self.edges)} edges"
            )
        for edge_index, edge_set in enumerate(self.edges):
            for item in edge_set:
                if not 0 <= item < num_items:
                    raise PricingError(
                        f"item {item} out of range [0, {num_items}) in edge "
                        f"{edge_index}"
                    )
        self.labels = list(labels) if labels is not None else None
        self._degrees: np.ndarray | None = None
        self._incidence: list[list[int]] | None = None
        self._edge_indptr: np.ndarray | None = None
        self._edge_items: np.ndarray | None = None
        self._item_indptr: np.ndarray | None = None
        self._item_edges: np.ndarray | None = None
        self._tombstoned: set[int] = set()

    # ------------------------------------------------------------------
    # Online mutation (delta subsystem)
    # ------------------------------------------------------------------

    def _invalidate_item_views(self) -> None:
        """Drop the lazily rebuilt item-orientation caches after a mutation."""
        self._degrees = None
        self._incidence = None
        self._item_indptr = None
        self._item_edges = None

    def add_items(self, count: int) -> None:
        """Grow the item universe by ``count`` fresh (degree-0) items."""
        if count < 0:
            raise PricingError("cannot add a negative number of items")
        if count == 0:
            return
        self.num_items += count
        # item_indptr has one row per item, so it must be rebuilt; the
        # edge-orientation block is unaffected (no edge mentions a new item).
        self._invalidate_item_views()

    def append_edges(
        self,
        edges: Iterable[Iterable[int]],
        labels: Sequence[str] | None = None,
    ) -> list[int]:
        """Append hyperedges in place, returning their new edge ids.

        Existing edge ids are stable. The edge → item CSR block is extended
        incrementally (each new row's items sorted ascending, matching
        :meth:`_build_csr`); the item-orientation views are invalidated and
        rebuilt lazily.
        """
        new_edges = [frozenset(edge) for edge in edges]
        if (self.labels is None) != (labels is None):
            raise PricingError(
                "labels must be provided iff the hypergraph is labelled"
            )
        if labels is not None and len(labels) != len(new_edges):
            raise PricingError(
                f"{len(labels)} labels for {len(new_edges)} appended edges"
            )
        start = len(self.edges)
        for offset, edge_set in enumerate(new_edges):
            for item in edge_set:
                if not 0 <= item < self.num_items:
                    raise PricingError(
                        f"item {item} out of range [0, {self.num_items}) in "
                        f"appended edge {start + offset}"
                    )
        if self._edge_indptr is not None and new_edges:
            sizes = np.fromiter(
                (len(edge) for edge in new_edges),
                dtype=np.int64,
                count=len(new_edges),
            )
            nnz = int(sizes.sum())
            if nnz:
                flat = np.fromiter(
                    (item for edge in new_edges for item in edge),
                    dtype=np.int64,
                    count=nnz,
                )
                rows = np.repeat(np.arange(len(new_edges), dtype=np.int64), sizes)
                order = np.lexsort((flat, rows))
                self._edge_items = np.concatenate([self._edge_items, flat[order]])
            tail = self._edge_indptr[-1] + np.cumsum(sizes)
            self._edge_indptr = np.concatenate([self._edge_indptr, tail])
        self.edges.extend(new_edges)
        if labels is not None:
            self.labels.extend(labels)
        self._invalidate_item_views()
        return list(range(start, start + len(new_edges)))

    def tombstone_edges(self, edge_ids: Iterable[int]) -> None:
        """Empty the given edges in place (ids stay allocated).

        A tombstoned edge behaves exactly like a query whose conflict set is
        empty — every derived view (stats, pricing kernels, LP constructors)
        already handles empty edges, so no special-casing is needed
        downstream. Tombstoning an already-tombstoned edge is an error;
        tombstoning an organically empty edge is allowed (it marks the slot
        reclaimable by :meth:`compact`).
        """
        ids = sorted({int(edge_id) for edge_id in edge_ids})
        for edge_id in ids:
            if not 0 <= edge_id < len(self.edges):
                raise PricingError(
                    f"edge {edge_id} out of range [0, {len(self.edges)})"
                )
            if edge_id in self._tombstoned:
                raise PricingError(f"edge {edge_id} is already tombstoned")
        if not ids:
            return
        if self._edge_indptr is not None:
            sizes = np.diff(self._edge_indptr)
            keep = np.ones(len(self._edge_items), dtype=bool)
            for edge_id in ids:
                keep[self._edge_indptr[edge_id]:self._edge_indptr[edge_id + 1]] = (
                    False
                )
                sizes[edge_id] = 0
            self._edge_items = self._edge_items[keep]
            indptr = np.zeros(len(self.edges) + 1, dtype=np.int64)
            np.cumsum(sizes, out=indptr[1:])
            self._edge_indptr = indptr
        for edge_id in ids:
            self.edges[edge_id] = frozenset()
            self._tombstoned.add(edge_id)
        self._invalidate_item_views()

    @property
    def num_tombstoned(self) -> int:
        """Number of tombstoned (reclaimable) edge slots."""
        return len(self._tombstoned)

    @property
    def tombstone_fraction(self) -> float:
        """Fraction of edge slots that are tombstones (compaction trigger)."""
        if not self.edges:
            return 0.0
        return len(self._tombstoned) / len(self.edges)

    def compact(self) -> dict[int, int]:
        """Drop tombstoned edge slots, returning the old → new edge-id map.

        Organically empty edges (queries that conflict with nothing) are
        kept — only slots explicitly tombstoned are reclaimed. All CSR
        caches are invalidated and rebuilt lazily.
        """
        if not self._tombstoned:
            return {index: index for index in range(len(self.edges))}
        keep = [
            index
            for index in range(len(self.edges))
            if index not in self._tombstoned
        ]
        mapping = {old: new for new, old in enumerate(keep)}
        self.edges = [self.edges[index] for index in keep]
        if self.labels is not None:
            self.labels = [self.labels[index] for index in keep]
        self._tombstoned = set()
        self._edge_indptr = None
        self._edge_items = None
        self._invalidate_item_views()
        return mapping

    # ------------------------------------------------------------------
    # CSR incidence arrays
    # ------------------------------------------------------------------

    def _build_csr(self) -> None:
        """Build both CSR orientations in one vectorized pass."""
        m = len(self.edges)
        sizes = np.fromiter(
            (len(edge) for edge in self.edges), dtype=np.int64, count=m
        )
        nnz = int(sizes.sum())
        edge_indptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(sizes, out=edge_indptr[1:])

        flat = np.fromiter(
            (item for edge in self.edges for item in edge),
            dtype=np.int64,
            count=nnz,
        )
        rows = np.repeat(np.arange(m, dtype=np.int64), sizes)
        # Sort by (edge, item): items ascending within each edge.
        order = np.lexsort((flat, rows))
        edge_items = flat[order]

        # Item -> edge orientation: a stable sort by item keeps the edge ids
        # ascending within each item (rows are ascending pre-sort).
        item_order = np.argsort(edge_items, kind="stable")
        item_edges = rows[order][item_order]
        counts = np.bincount(edge_items, minlength=self.num_items)
        item_indptr = np.zeros(self.num_items + 1, dtype=np.int64)
        np.cumsum(counts, out=item_indptr[1:])

        self._edge_indptr = edge_indptr
        self._edge_items = edge_items
        self._item_indptr = item_indptr
        self._item_edges = item_edges

    def edge_member_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Edge → item CSR block ``(indptr, items)``.

        Row ``e`` spans ``items[indptr[e]:indptr[e+1]]`` — the members of
        hyperedge ``e`` in ascending item order. This is the layout the
        vectorized pricing functions consume (segment sums over the rows).
        """
        if self._edge_indptr is None:
            self._build_csr()
        return self._edge_indptr, self._edge_items

    def incidence_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Item → edge CSR block ``(indptr, edge_ids)``.

        Row ``j`` spans ``edge_ids[indptr[j]:indptr[j+1]]`` — the hyperedges
        containing item ``j`` in ascending edge order (the array twin of
        :attr:`incidence`).
        """
        if self._item_indptr is None:
            self._build_csr()
        return self._item_indptr, self._item_edges

    def edge_submatrix(self, edge_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Edge → item CSR block restricted to ``edge_ids`` (in that order)."""
        indptr, items = self.edge_member_matrix()
        return csr_take_rows(indptr, items, edge_ids)

    def incident_edges(self, item: int) -> np.ndarray:
        """Edge ids containing ``item``, ascending (a CSR row view)."""
        indptr, edge_ids = self.incidence_csr()
        return edge_ids[indptr[item]:indptr[item + 1]]

    # ------------------------------------------------------------------
    # Structural parameters
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """m — the number of hyperedges."""
        return len(self.edges)

    @property
    def degrees(self) -> np.ndarray:
        """Array of item degrees (number of edges containing each item)."""
        if self._degrees is None:
            item_indptr, _ = self.incidence_csr()
            self._degrees = np.diff(item_indptr)
        return self._degrees

    @property
    def max_degree(self) -> int:
        """B — the maximum item degree (0 for an empty hypergraph)."""
        if self.num_items == 0 or self.num_edges == 0:
            return 0
        return int(self.degrees.max())

    @property
    def max_edge_size(self) -> int:
        """k — the size of the largest hyperedge."""
        return max((len(edge) for edge in self.edges), default=0)

    @property
    def avg_edge_size(self) -> float:
        """Mean hyperedge size (0 for no edges)."""
        if not self.edges:
            return 0.0
        return sum(len(edge) for edge in self.edges) / len(self.edges)

    @property
    def incidence(self) -> list[list[int]]:
        """For each item, the indices of edges containing it."""
        if self._incidence is None:
            indptr, edge_ids = self.incidence_csr()
            self._incidence = [
                edge_ids[indptr[item]:indptr[item + 1]].tolist()
                for item in range(self.num_items)
            ]
        return self._incidence

    def edge_sizes(self) -> np.ndarray:
        """Array of hyperedge sizes in edge order."""
        indptr, _ = self.edge_member_matrix()
        return np.diff(indptr)

    def used_items(self) -> list[int]:
        """Items with degree >= 1, ascending."""
        return np.flatnonzero(self.degrees > 0).tolist()

    def edges_with_unique_item(self) -> list[int]:
        """Indices of edges containing at least one item of degree 1.

        The paper uses this statistic to explain when Layering performs well
        (Section 6.2/6.3).
        """
        degrees = self.degrees
        return [
            index
            for index, edge in enumerate(self.edges)
            if any(degrees[item] == 1 for item in edge)
        ]

    def stats(self) -> "HypergraphStats":
        """Summary row matching Table 3 of the paper."""
        return HypergraphStats(
            num_items=self.num_items,
            num_edges=self.num_edges,
            max_degree=self.max_degree,
            max_edge_size=self.max_edge_size,
            avg_edge_size=self.avg_edge_size,
            num_empty_edges=sum(1 for edge in self.edges if not edge),
            num_edges_with_unique_item=len(self.edges_with_unique_item()),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hypergraph(n={self.num_items}, m={self.num_edges})"


@dataclass(frozen=True)
class HypergraphStats:
    """Structural summary of a hypergraph (Table 3 columns and more)."""

    num_items: int
    num_edges: int
    max_degree: int
    max_edge_size: int
    avg_edge_size: float
    num_empty_edges: int
    num_edges_with_unique_item: int


class PricingInstance:
    """A hypergraph plus one buyer valuation per hyperedge.

    This is the input to every pricing algorithm. Valuations must be
    non-negative and finite.
    """

    __slots__ = ("hypergraph", "valuations", "name", "__weakref__")

    def __init__(
        self,
        hypergraph: Hypergraph,
        valuations: Sequence[float] | np.ndarray,
        name: str = "instance",
    ):
        valuations = np.asarray(valuations, dtype=np.float64)
        if valuations.shape != (hypergraph.num_edges,):
            raise PricingError(
                f"expected {hypergraph.num_edges} valuations, "
                f"got shape {valuations.shape}"
            )
        if not np.all(np.isfinite(valuations)) or np.any(valuations < 0):
            raise PricingError("valuations must be finite and non-negative")
        self.hypergraph = hypergraph
        self.valuations = valuations
        self.name = name

    @property
    def num_items(self) -> int:
        return self.hypergraph.num_items

    @property
    def num_edges(self) -> int:
        return self.hypergraph.num_edges

    @property
    def edges(self) -> list[frozenset[int]]:
        return self.hypergraph.edges

    def total_valuation(self) -> float:
        """Sum of all buyer valuations — the coarse revenue upper bound."""
        return float(self.valuations.sum())

    def edges_by_valuation(self, descending: bool = True) -> list[int]:
        """Edge indices sorted by valuation."""
        order = np.argsort(self.valuations, kind="stable")
        if descending:
            order = order[::-1]
        return [int(index) for index in order]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PricingInstance({self.name!r}, n={self.num_items}, "
            f"m={self.num_edges})"
        )
