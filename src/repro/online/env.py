"""Online market environment: a stream of single-minded buyers."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hypergraph import PricingInstance
from repro.exceptions import PricingError


@dataclass(frozen=True)
class BuyerArrival:
    """One arriving buyer: which edge they want and their private valuation."""

    step: int
    edge_index: int
    valuation: float


class BuyerStream:
    """Random arrival order over an instance's buyers, with replacement.

    Each arrival picks one of the instance's hyperedges uniformly (or by
    supplied weights); its valuation is the instance's fixed valuation —
    unknown to the seller, as in the paper's online formulation.
    """

    def __init__(
        self,
        instance: PricingInstance,
        horizon: int,
        rng: np.random.Generator | int | None = None,
        weights: np.ndarray | None = None,
    ):
        if horizon < 1:
            raise PricingError("horizon must be >= 1")
        if instance.num_edges == 0:
            raise PricingError("instance has no buyers")
        self.instance = instance
        self.horizon = horizon
        self.rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )
        if weights is not None:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (instance.num_edges,) or np.any(weights < 0):
                raise PricingError("weights must be non-negative, one per edge")
            total = weights.sum()
            if total <= 0:
                raise PricingError("weights must not all be zero")
            self.probabilities = weights / total
        else:
            self.probabilities = None

    def __iter__(self):
        for step in range(self.horizon):
            if self.probabilities is None:
                edge = int(self.rng.integers(self.instance.num_edges))
            else:
                edge = int(
                    self.rng.choice(self.instance.num_edges, p=self.probabilities)
                )
            yield BuyerArrival(step, edge, float(self.instance.valuations[edge]))


class OnlineMarketEnv:
    """Posted-price interaction: the seller quotes, the buyer accepts iff
    ``price <= valuation``; only the accept/reject bit is revealed."""

    def __init__(self, stream: BuyerStream):
        self.stream = stream
        self.revenue = 0.0
        self.sales = 0
        self.steps = 0

    def play(self, arrival: BuyerArrival, price: float) -> bool:
        """Post ``price`` to ``arrival``; returns whether the buyer bought."""
        self.steps += 1
        accepted = price <= arrival.valuation
        if accepted:
            self.revenue += price
            self.sales += 1
        return accepted

    @property
    def average_revenue(self) -> float:
        return self.revenue / self.steps if self.steps else 0.0
