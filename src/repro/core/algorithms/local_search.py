"""Coordinate-ascent local search over item prices.

The paper observes (Section 6.3) that a single LP "refinement" pass can lift
UBP's revenue from 0.78 to 0.99 of the bound on one instance — i.e. cheap
post-processing of a simple pricing recovers most of the revenue that the
expensive LP algorithms extract. This module pushes that idea to its natural
fixed point: start from any item pricing and repeatedly improve one item
weight at a time, each step solved *exactly*.

Revenue as a function of a single weight ``w_j`` (all others fixed) is
piecewise linear with one breakpoint per incident edge: edge ``e`` with
residual price ``r_e = p(e) - w_j`` sells iff ``w_j <= v_e - r_e``. The
one-dimensional optimum therefore lies at one of the thresholds
``t_e = v_e - r_e`` (sell edge ``e`` at exactly its valuation) or at 0. All
candidate thresholds for an item are scored in one pass over its
incident-edge arrays by the revenue engine's ``line_search_gains`` kernel
(:mod:`repro.core.evaluator`): under the ``vectorized`` strategy that is a
sorted suffix scan — ``O(d log d)`` for an item of degree ``d`` instead of
the scalar strategy's ``O(d^2)`` candidate-by-candidate rescan. Each step
never decreases revenue, so the search is an anytime algorithm: stop it
whenever, the current pricing is valid and at least as good as the seed.
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.algorithms.uip import best_uniform_item_price
from repro.core.evaluator import RevenueEvaluator, default_evaluator
from repro.core.hypergraph import PricingInstance
from repro.core.pricing import ItemPricing, PricingFunction
from repro.core.revenue import PRICE_TOLERANCE
from repro.exceptions import PricingError

#: Seeds accepted by name. "uip" starts from the optimal uniform item price;
#: "zero" starts from the all-zero pricing (sell everything at 0).
_NAMED_SEEDS = ("uip", "zero")


class CoordinateAscent(PricingAlgorithm):
    """Exact per-item line search, swept over items until a fixed point.

    Parameters
    ----------
    seed:
        Starting point — ``"uip"`` (default), ``"zero"``, an explicit weight
        vector, or another :class:`PricingAlgorithm` whose output weights are
        used (it must produce an :class:`ItemPricing`).
    max_passes:
        Upper bound on full sweeps over the items.
    min_gain:
        Relative revenue improvement below which a pass counts as converged.
    """

    name = "ascent"

    def __init__(
        self,
        seed: str | np.ndarray | PricingAlgorithm = "uip",
        max_passes: int = 8,
        min_gain: float = 1e-6,
    ):
        if isinstance(seed, str) and seed not in _NAMED_SEEDS:
            raise PricingError(
                f"unknown seed {seed!r}; named seeds are {_NAMED_SEEDS}"
            )
        if max_passes < 1:
            raise PricingError("max_passes must be at least 1")
        self.seed = seed
        self.max_passes = max_passes
        self.min_gain = min_gain

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        weights, seed_name = self._seed_weights(instance)
        state = _AscentState(instance, weights)
        seed_revenue = state.revenue()

        passes = 0
        for _ in range(self.max_passes):
            passes += 1
            before = state.revenue()
            for item in state.items_by_degree():
                state.optimize_item(item)
            after = state.revenue()
            if after <= before * (1.0 + self.min_gain):
                break

        return ItemPricing(state.weights), {
            "seed": seed_name,
            "seed_revenue": seed_revenue,
            "passes": passes,
            "final_revenue": state.revenue(),
        }

    def _seed_weights(self, instance: PricingInstance) -> tuple[np.ndarray, str]:
        if isinstance(self.seed, np.ndarray):
            if self.seed.shape != (instance.num_items,):
                raise PricingError(
                    f"seed weights have shape {self.seed.shape}, "
                    f"expected ({instance.num_items},)"
                )
            return self.seed.astype(np.float64).copy(), "explicit"
        if isinstance(self.seed, PricingAlgorithm):
            pricing = self.seed.run(instance).pricing
            if not isinstance(pricing, ItemPricing):
                raise PricingError(
                    f"seed algorithm {self.seed.name!r} produced a "
                    f"{pricing.family} pricing, not an item pricing"
                )
            return pricing.weights.copy(), self.seed.name
        if self.seed == "zero":
            return np.zeros(instance.num_items), "zero"
        weight, _ = best_uniform_item_price(instance)
        return np.full(instance.num_items, weight), "uip"


class _AscentState:
    """Mutable weights plus incrementally maintained edge prices.

    The state binds the process-default :class:`RevenueEvaluator` at
    construction; all breakpoint scoring goes through its
    ``line_search_gains`` kernel, so the active revenue strategy (scalar
    oracle vs vectorized suffix scan) decides the inner loop and is counted
    in the evaluator's diagnostics.
    """

    def __init__(
        self,
        instance: PricingInstance,
        weights: np.ndarray,
        evaluator: RevenueEvaluator | None = None,
    ):
        self.instance = instance
        self.weights = weights
        self.evaluator = evaluator or default_evaluator()
        self.prices = self.evaluator.item_weight_prices(weights, instance)

    def revenue(self) -> float:
        valuations = self.instance.valuations
        sold = self.prices <= valuations * (1.0 + PRICE_TOLERANCE) + PRICE_TOLERANCE
        return float(self.prices[sold].sum())

    def items_by_degree(self) -> list[int]:
        """Items in descending degree order — high-impact weights first."""
        degrees = self.instance.hypergraph.degrees
        order = np.argsort(degrees, kind="stable")[::-1]
        return [int(item) for item in order if degrees[item] > 0]

    def optimize_item(self, item: int) -> None:
        """Set ``weights[item]`` to the exact one-dimensional optimum."""
        incident = self.instance.hypergraph.incident_edges(item)
        if len(incident) == 0:
            return
        valuations = self.instance.valuations
        current = self.weights[item]

        residuals = self.prices[incident] - current
        thresholds = valuations[incident] - residuals
        # Candidate weights: every attainable "sell edge e exactly at v_e"
        # point, plus 0 (sell every incident edge whose residual allows it).
        candidates = np.unique(np.clip(thresholds, 0.0, None))

        # Score the current weight and every candidate in one kernel call;
        # the selection loop below runs over plain floats only, preserving
        # the original tie rule (first candidate beating the running best by
        # a relative margin wins).
        gains = self.evaluator.line_search_gains(
            residuals,
            thresholds,
            np.concatenate(([current], candidates)),
            PRICE_TOLERANCE,
        )
        best_weight = current
        best_gain = gains[0]
        for candidate, gain in zip(candidates, gains[1:]):
            if gain > best_gain * (1.0 + 1e-12):
                best_gain = gain
                best_weight = candidate

        if best_weight != current:
            delta = best_weight - current
            self.weights[item] = best_weight
            self.prices[incident] += delta
