"""Randomized scalar-vs-vectorized revenue parity fuzzing.

The vectorized revenue strategy must reproduce the ``scalar`` oracle's
decisions *bit for bit*: identical edge-price vectors, identical sold masks
(ties at ``p(e) == v_e`` broken identically), identical revenues, and
identical line-search / grid kernels — on randomized hypergraphs (including
empty edges and duplicate multi-edges), valuations, and pricings from every
family (uniform-bundle, item, uniform-item, sparse-dict item, XOS).

All generated weights and valuations are multiples of 0.25 with bounded
magnitude, so every segment sum is exact in float64 and summation order
cannot explain away a mismatch — the same trick the conflict-set fuzzer
uses for float aggregates. Tie cases are generated deliberately: a second
instance per pricing copies exact scalar prices into a random subset of the
valuations.

Tier-1 runs a reduced case count; ``--runslow`` runs the full suite. The
base seed is overridable via the ``REPRO_FUZZ_SEED`` environment variable;
on a mismatch a standalone repro script is written under
``tests/artifacts/revenue_fuzz/`` (uploaded as a CI artifact on failure) and
the failure message names the seed and case.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.evaluator import RevenueEvaluator
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import (
    ItemPricing,
    PricingFunction,
    UniformBundlePricing,
    XOSPricing,
    zero_pricing,
)

FULL_CASES = 240
TIER1_CASES = 48
CHUNKS = 12

#: Override to replay a failing run: REPRO_FUZZ_SEED=<seed> pytest ...
BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20260727"))

ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts" / "revenue_fuzz"


def _case_count(request) -> int:
    return FULL_CASES if request.config.getoption("--runslow") else TIER1_CASES


def _quarters(rng: np.random.Generator, size, low: int = 0, high: int = 400):
    """Random multiples of 0.25 — exactly summable in float64."""
    return rng.integers(low, high, size=size).astype(np.float64) * 0.25


def _random_hypergraph(rng: np.random.Generator) -> Hypergraph:
    num_items = int(rng.integers(1, 24))
    num_edges = int(rng.integers(0, 40))
    edges: list[frozenset[int]] = []
    for _ in range(num_edges):
        if edges and rng.random() < 0.1:
            # Duplicate multi-edge: two buyers with identical conflict sets.
            edges.append(edges[int(rng.integers(0, len(edges)))])
            continue
        size = int(rng.integers(0, min(num_items, 8) + 1))
        edges.append(frozenset(rng.choice(num_items, size=size, replace=False).tolist()))
    return Hypergraph(num_items, edges)


def _random_pricings(
    rng: np.random.Generator, num_items: int
) -> list[tuple[str, PricingFunction]]:
    """One pricing per family, each paired with repro construction code."""
    weights = _quarters(rng, num_items)
    sparse = {
        int(item): float(weight)
        for item, weight in enumerate(weights)
        if rng.random() < 0.5
    }
    components = [_quarters(rng, num_items).tolist() for _ in range(int(rng.integers(1, 4)))]
    bundle_price = float(_quarters(rng, ()))
    uniform_weight = float(_quarters(rng, (), high=40))
    return [
        (f"UniformBundlePricing({bundle_price!r})", UniformBundlePricing(bundle_price)),
        (f"ItemPricing({weights.tolist()!r})", ItemPricing(weights)),
        (
            f"ItemPricing.uniform({num_items}, {uniform_weight!r})",
            ItemPricing.uniform(num_items, uniform_weight),
        ),
        (
            f"ItemPricing({sparse!r}, num_items={num_items})",
            ItemPricing(sparse, num_items=num_items),
        ),
        (f"XOSPricing({components!r})", XOSPricing(components)),
        (f"zero_pricing({num_items})", zero_pricing(num_items)),
    ]


def _dump_repro(
    hypergraph: Hypergraph,
    valuations: np.ndarray,
    pricing_code: str,
    case: int,
    detail: str,
) -> Path:
    ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
    edges = [sorted(edge) for edge in hypergraph.edges]
    script = f'''"""Revenue parity repro: seed={BASE_SEED} case={case}.

{detail}
"""
import numpy as np

from repro.core.evaluator import RevenueEvaluator
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import (
    ItemPricing, UniformBundlePricing, XOSPricing, zero_pricing,
)

hypergraph = Hypergraph({hypergraph.num_items}, {edges!r})
instance = PricingInstance(hypergraph, np.array({valuations.tolist()!r}))
pricing = {pricing_code}

for strategy in ("scalar", "vectorized"):
    report = RevenueEvaluator(strategy).evaluate(pricing, instance)
    print(strategy, report.revenue, report.num_sold, report.prices, report.sold)
'''
    path = ARTIFACT_DIR / f"repro_seed{BASE_SEED}_case{case}.py"
    path.write_text(script)
    return path


def _compare_reports(
    hypergraph: Hypergraph,
    valuations: np.ndarray,
    pricing_code: str,
    pricing: PricingFunction,
    case: int,
) -> None:
    instance = PricingInstance(hypergraph, valuations)
    scalar = RevenueEvaluator("scalar").evaluate(pricing, instance)
    vectorized = RevenueEvaluator("vectorized").evaluate(pricing, instance)
    mismatches = []
    if not np.array_equal(scalar.prices, vectorized.prices):
        mismatches.append(f"prices {scalar.prices} != {vectorized.prices}")
    if not np.array_equal(scalar.sold, vectorized.sold):
        mismatches.append(f"sold {scalar.sold} != {vectorized.sold}")
    if scalar.revenue != vectorized.revenue:
        mismatches.append(f"revenue {scalar.revenue!r} != {vectorized.revenue!r}")
    if scalar.num_sold != vectorized.num_sold:
        mismatches.append(f"num_sold {scalar.num_sold} != {vectorized.num_sold}")
    if mismatches:
        detail = f"pricing: {pricing_code}\n" + "\n".join(mismatches)
        path = _dump_repro(hypergraph, valuations, pricing_code, case, detail)
        pytest.fail(
            f"revenue parity mismatch (seed={BASE_SEED}, case={case})\n"
            f"{detail}\nrepro script: {path}"
        )


def _run_case(case: int) -> None:
    rng = np.random.default_rng(BASE_SEED + case)
    hypergraph = _random_hypergraph(rng)
    valuations = _quarters(rng, hypergraph.num_edges)

    for pricing_code, pricing in _random_pricings(rng, hypergraph.num_items):
        _compare_reports(hypergraph, valuations, pricing_code, pricing, case)
        # Deliberate ties: copy exact scalar prices into a random subset of
        # the valuations, so p(e) == v_e bit-for-bit on those edges. Both
        # strategies must sell (or ration) exactly the same buyers.
        prices = RevenueEvaluator("scalar").evaluate(pricing, instance=PricingInstance(
            hypergraph, valuations
        )).prices
        tied = valuations.copy()
        mask = rng.random(hypergraph.num_edges) < 0.5
        tied[mask] = prices[mask]
        if np.all(np.isfinite(tied)) and np.all(tied >= 0):
            _compare_reports(hypergraph, tied, pricing_code, pricing, case)

    # Additive fast path: revenue_of_item_weights must agree bit-for-bit.
    weights = _quarters(rng, hypergraph.num_items)
    instance = PricingInstance(hypergraph, valuations)
    fast_scalar = RevenueEvaluator("scalar").revenue_of_item_weights(weights, instance)
    fast_vectorized = RevenueEvaluator("vectorized").revenue_of_item_weights(
        weights, instance
    )
    assert fast_scalar == fast_vectorized, (
        f"item-weight revenue mismatch (seed={BASE_SEED}, case={case}): "
        f"{fast_scalar!r} != {fast_vectorized!r}"
    )

    _check_kernels(rng, case)


def _check_kernels(rng: np.random.Generator, case: int) -> None:
    """The line-search and grid kernels must agree candidate by candidate."""
    scalar = RevenueEvaluator("scalar")
    vectorized = RevenueEvaluator("vectorized")

    degree = int(rng.integers(1, 40))
    residuals = _quarters(rng, degree)
    thresholds = _quarters(rng, degree, low=-200, high=200)
    current = float(_quarters(rng, (), high=100))
    candidates = np.concatenate(
        ([current], np.unique(np.clip(thresholds, 0.0, None)))
    )
    gains_scalar = scalar.line_search_gains(residuals, thresholds, candidates)
    gains_vectorized = vectorized.line_search_gains(residuals, thresholds, candidates)
    assert np.array_equal(gains_scalar, gains_vectorized), (
        f"line-search kernel mismatch (seed={BASE_SEED}, case={case})\n"
        f"residuals={residuals.tolist()}\nthresholds={thresholds.tolist()}\n"
        f"candidates={candidates.tolist()}\n"
        f"scalar={gains_scalar.tolist()}\nvectorized={gains_vectorized.tolist()}"
    )

    num_edges = int(rng.integers(1, 64))
    sizes = rng.integers(1, 9, size=num_edges).astype(np.float64)
    valuations = _quarters(rng, num_edges)
    top = float(valuations.max())
    grid = (top if top > 0 else 1.0) / 2.0 ** np.arange(int(rng.integers(1, 24)))
    grid_scalar = scalar.grid_revenues(grid, sizes, valuations)
    grid_vectorized = vectorized.grid_revenues(grid, sizes, valuations)
    assert np.array_equal(grid_scalar, grid_vectorized), (
        f"grid kernel mismatch (seed={BASE_SEED}, case={case})\n"
        f"sizes={sizes.tolist()}\nvaluations={valuations.tolist()}\n"
        f"grid={grid.tolist()}\n"
        f"scalar={grid_scalar.tolist()}\nvectorized={grid_vectorized.tolist()}"
    )


@pytest.mark.parametrize("chunk", range(CHUNKS))
def test_revenue_parity_fuzz(request, chunk):
    """Each chunk runs 1/12th of the configured case budget."""
    cases = _case_count(request)
    per_chunk = cases // CHUNKS
    for case in range(chunk * per_chunk, (chunk + 1) * per_chunk):
        _run_case(case)


def test_budgets_meet_issue_floor():
    # Tier-1 must cover at least 40 generated cases; --runslow at least 200.
    assert TIER1_CASES >= 40
    assert FULL_CASES >= 200
    assert FULL_CASES % CHUNKS == 0 and TIER1_CASES % CHUNKS == 0
