"""Benchmark package: one module per table/figure of the paper + ablations.

Run with ``pytest benchmarks/ --benchmark-only``; each bench prints the
reproduced table/figure (use ``-s``) and exports its data as CSV under
``benchmarks/artifacts/``.
"""
