"""Extension experiment: revenue vs per-item capacity (limited supply).

Not a paper figure — the paper works in the unlimited-supply regime the
whole time, but its key algorithm (CIP) comes from the limited-supply world
of Cheung & Swamy. This bench sweeps a uniform per-item capacity on the
skewed slice and reports: fractional welfare (the ceiling), LimitedCIP, and
the feasible uniform price. As capacity reaches the max degree B the
limited revenue must converge to the unlimited-supply revenue of the same
algorithms' families.
"""

from __future__ import annotations

import pytest

from repro.core.algorithms import UIP
from repro.experiments.report import format_table
from repro.limited import (
    LimitedCIP,
    LimitedSupplyInstance,
    LimitedUniformPricing,
    fractional_max_welfare,
)
from repro.valuations import UniformValuations
from repro.workloads.world import world_workload

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow


CAPACITIES = (1, 2, 4, 8, 32)


@pytest.fixture(scope="module")
def skewed_instance():
    workload = world_workload(scale=0.15, expanded=False)
    support = workload.support(size=300, seed=0, cells_per_instance=2)
    hypergraph = workload.hypergraph(support)
    return UniformValuations(100).instance(hypergraph, rng=1)


def test_capacity_sweep(benchmark, skewed_instance):
    instance = skewed_instance
    unlimited_uip = UIP().run(instance).revenue

    def sweep():
        rows = []
        for capacity in CAPACITIES:
            market = LimitedSupplyInstance.uniform(instance, capacity)
            welfare = fractional_max_welfare(market).welfare
            cip = LimitedCIP(scale_range=12).run(market)
            uip = LimitedUniformPricing().run(market)
            rows.append((capacity, welfare, cip.revenue, uip.revenue))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\n" + format_table(
        ["capacity", "welfare LP", "limited-CIP", "limited-UIP"], rows
    ))

    welfare = {capacity: value for capacity, value, _, _ in rows}
    cip = {capacity: value for capacity, _, value, _ in rows}
    uip = {capacity: value for capacity, _, _, value in rows}
    for capacity in CAPACITIES:
        # Welfare ceiling holds everywhere.
        assert cip[capacity] <= welfare[capacity] + 1e-6
        assert uip[capacity] <= welfare[capacity] + 1e-6
    # Welfare (hence achievable revenue) is monotone in capacity.
    for smaller, larger in zip(CAPACITIES, CAPACITIES[1:]):
        assert welfare[larger] >= welfare[smaller] - 1e-6
    # With ample capacity the feasible uniform price recovers classic UIP.
    top_capacity = CAPACITIES[-1]
    market = LimitedSupplyInstance.uniform(instance, top_capacity)
    if market.is_effectively_unlimited():
        assert uip[top_capacity] == pytest.approx(unlimited_uip, rel=1e-6)
