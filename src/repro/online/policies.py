"""Online pricing policies over a fixed price grid.

Posting prices from a geometric grid loses at most a ``(1 + grid_ratio)``
factor against the best fixed price; the policies differ in how they balance
exploring grid prices against exploiting the best one seen so far.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PricingError


def geometric_grid(low: float, high: float, ratio: float = 1.2) -> np.ndarray:
    """Price grid ``low, low*ratio, ... , >= high``."""
    if low <= 0 or high < low or ratio <= 1:
        raise PricingError("need 0 < low <= high and ratio > 1")
    prices = [low]
    while prices[-1] < high:
        prices.append(prices[-1] * ratio)
    return np.array(prices)


class PricingPolicy:
    """Base class: pick a price each step, learn from the accept bit."""

    name = "abstract"

    def __init__(self, grid: np.ndarray, rng: np.random.Generator | int | None = None):
        if len(grid) == 0:
            raise PricingError("price grid must be non-empty")
        self.grid = np.asarray(grid, dtype=float)
        self.rng = (
            rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        )

    def select(self, step: int) -> int:
        """Index into the grid to post this step."""
        raise NotImplementedError

    def update(self, arm: int, revenue: float) -> None:
        """Observe the revenue (0 on reject, price on accept) of ``arm``."""
        raise NotImplementedError


class FixedPricePolicy(PricingPolicy):
    """Always post the same price (baseline / oracle evaluation)."""

    name = "fixed"

    def __init__(self, price: float):
        super().__init__(np.array([price]))

    def select(self, step: int) -> int:
        return 0

    def update(self, arm: int, revenue: float) -> None:
        pass


class EpsilonGreedyPolicy(PricingPolicy):
    """Explore uniformly with probability ``epsilon``, else exploit."""

    name = "eps-greedy"

    def __init__(self, grid, epsilon: float = 0.1, rng=None):
        super().__init__(grid, rng)
        if not 0 <= epsilon <= 1:
            raise PricingError("epsilon must be in [0, 1]")
        self.epsilon = epsilon
        self.counts = np.zeros(len(self.grid))
        self.totals = np.zeros(len(self.grid))

    def select(self, step: int) -> int:
        if self.rng.random() < self.epsilon or not self.counts.any():
            return int(self.rng.integers(len(self.grid)))
        means = np.divide(
            self.totals, self.counts,
            out=np.zeros_like(self.totals), where=self.counts > 0,
        )
        return int(np.argmax(means))

    def update(self, arm: int, revenue: float) -> None:
        self.counts[arm] += 1
        self.totals[arm] += revenue


class UCBPolicy(PricingPolicy):
    """UCB1 over grid prices; rewards scaled by the max grid price."""

    name = "ucb"

    def __init__(self, grid, exploration: float = 2.0, rng=None):
        super().__init__(grid, rng)
        self.exploration = exploration
        self.counts = np.zeros(len(self.grid))
        self.totals = np.zeros(len(self.grid))
        self.scale = float(self.grid.max())

    def select(self, step: int) -> int:
        untried = np.flatnonzero(self.counts == 0)
        if len(untried):
            return int(untried[0])
        means = self.totals / self.counts / self.scale
        bonus = np.sqrt(
            self.exploration * np.log(max(step, 2)) / self.counts
        )
        return int(np.argmax(means + bonus))

    def update(self, arm: int, revenue: float) -> None:
        self.counts[arm] += 1
        self.totals[arm] += revenue


class Exp3Policy(PricingPolicy):
    """EXP3 (adversarial bandit) over grid prices."""

    name = "exp3"

    def __init__(self, grid, gamma: float = 0.1, rng=None):
        super().__init__(grid, rng)
        if not 0 < gamma <= 1:
            raise PricingError("gamma must be in (0, 1]")
        self.gamma = gamma
        self.log_weights = np.zeros(len(self.grid))
        self.scale = float(self.grid.max())
        self._last_probabilities: np.ndarray | None = None

    def _probabilities(self) -> np.ndarray:
        shifted = self.log_weights - self.log_weights.max()
        weights = np.exp(shifted)
        probabilities = (1 - self.gamma) * weights / weights.sum()
        probabilities += self.gamma / len(self.grid)
        return probabilities / probabilities.sum()

    def select(self, step: int) -> int:
        probabilities = self._probabilities()
        self._last_probabilities = probabilities
        return int(self.rng.choice(len(self.grid), p=probabilities))

    def update(self, arm: int, revenue: float) -> None:
        probabilities = (
            self._last_probabilities
            if self._last_probabilities is not None
            else self._probabilities()
        )
        estimated = (revenue / self.scale) / probabilities[arm]
        self.log_weights[arm] += self.gamma * estimated / len(self.grid)


class PriceWalkPolicy(PricingPolicy):
    """Multiplicative price walk: raise the price after a sale, lower it
    after a rejection — a gradient-descent-flavoured heuristic."""

    name = "price-walk"

    def __init__(self, grid, rng=None, start: int | None = None):
        super().__init__(grid, rng)
        self.position = start if start is not None else len(self.grid) // 2

    def select(self, step: int) -> int:
        return self.position

    def update(self, arm: int, revenue: float) -> None:
        if revenue > 0:
            self.position = min(self.position + 1, len(self.grid) - 1)
        else:
            self.position = max(self.position - 1, 0)
