"""Online *item* pricing — gradient-style learning of per-item weights.

The grid policies of :mod:`repro.online.policies` learn one bundle price;
here the seller maintains a full item-price vector (the succinct family the
paper recommends) and updates it from accept/reject feedback only:

- **accept** — the bundle was (weakly) underpriced; scale its items up,
- **reject** — overpriced; scale its items down.

Multiplicative updates keep weights positive, so the posted pricing is a
valid additive (hence arbitrage-free) pricing at every step. This is the
"gradient descent" direction the paper proposes to investigate in
Section 7.2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hypergraph import PricingInstance
from repro.core.pricing import ItemPricing
from repro.exceptions import PricingError
from repro.online.env import BuyerStream, OnlineMarketEnv


class OnlineItemPricingPolicy:
    """Multiplicative-update learner over an item-price vector.

    Parameters
    ----------
    num_items:
        Size of the support set.
    initial_weight:
        Starting uniform item weight (e.g. mean valuation / mean bundle size).
    step_up / step_down:
        Multiplicative factors applied to the items of accepted / rejected
        bundles. ``step_up > 1 > step_down``. Asymmetric steps implement the
        usual exploration bias: probing upward slowly, backing off fast.
    floor:
        Lower bound keeping weights strictly positive (and the policy
        responsive after long rejection streaks).
    """

    name = "online-item"

    def __init__(
        self,
        num_items: int,
        initial_weight: float = 1.0,
        step_up: float = 1.05,
        step_down: float = 0.8,
        floor: float = 1e-6,
    ):
        if num_items < 1:
            raise PricingError("num_items must be >= 1")
        if not (step_up > 1.0 > step_down > 0.0):
            raise PricingError("need step_up > 1 > step_down > 0")
        if initial_weight <= 0 or floor <= 0:
            raise PricingError("initial weight and floor must be positive")
        self.weights = np.full(num_items, float(initial_weight))
        self.step_up = step_up
        self.step_down = step_down
        self.floor = floor

    def price(self, bundle: frozenset[int]) -> float:
        return self.price_items(np.fromiter(bundle, dtype=np.int64, count=len(bundle)))

    def update(self, bundle: frozenset[int], accepted: bool) -> None:
        self.update_items(
            np.fromiter(bundle, dtype=np.int64, count=len(bundle)), accepted
        )

    def price_items(self, items: np.ndarray) -> float:
        """Posted price of a bundle given as an item-index array.

        The simulation loop passes CSR row views of the instance's shared
        edge-member matrix, so no per-step set flattening happens.
        """
        return float(self.weights[items].sum())

    def update_items(self, items: np.ndarray, accepted: bool) -> None:
        if len(items) == 0:
            return
        factor = self.step_up if accepted else self.step_down
        self.weights[items] = np.maximum(self.weights[items] * factor, self.floor)

    def as_pricing(self) -> ItemPricing:
        """Snapshot of the current learned additive pricing."""
        return ItemPricing(self.weights.copy())


@dataclass
class ItemSimulationResult:
    """Outcome of an online item-pricing simulation."""

    horizon: int
    revenue: float
    sales: int
    final_pricing: ItemPricing
    offline_revenue: float
    revenue_curve: np.ndarray

    @property
    def competitive_ratio(self) -> float:
        if self.offline_revenue <= 0:
            return 1.0
        return self.revenue / self.offline_revenue


def simulate_item_pricing(
    stream: BuyerStream,
    policy: OnlineItemPricingPolicy,
    offline_algorithm=None,
) -> ItemSimulationResult:
    """Run the posted item-price loop over the buyer stream.

    ``offline_algorithm`` (default LPIP) provides the hindsight benchmark:
    the revenue its pricing would earn over the same expected arrivals.
    """
    from repro.core.algorithms.lpip import LPIP
    from repro.core.revenue import compute_revenue

    instance: PricingInstance = stream.instance
    env = OnlineMarketEnv(stream)
    curve = np.zeros(stream.horizon)
    # One shared CSR edge-member block for the whole stream: each arrival's
    # bundle is a zero-copy row view instead of a frozenset walk.
    indptr, members = instance.hypergraph.edge_member_matrix()
    for arrival in stream:
        edge = arrival.edge_index
        items = members[indptr[edge]:indptr[edge + 1]]
        price = policy.price_items(items)
        accepted = env.play(arrival, price)
        policy.update_items(items, accepted)
        curve[arrival.step] = env.revenue

    algorithm = offline_algorithm or LPIP(max_programs=30)
    offline = algorithm.run(instance)
    per_step = compute_revenue(offline.pricing, instance).revenue / instance.num_edges
    return ItemSimulationResult(
        horizon=stream.horizon,
        revenue=env.revenue,
        sales=env.sales,
        final_pricing=policy.as_pricing(),
        offline_revenue=per_step * stream.horizon,
        revenue_curve=curve,
    )
