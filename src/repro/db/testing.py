"""Test utilities: random databases and random queries for differential
testing.

Downstream users extending the engine (new operators, new incremental
checker shapes) can fuzz their changes the same way this repo's test suite
does: generate a random star-schema database, generate random queries within
the supported fragment, and compare engine output against an oracle (or an
older engine version).
"""

from __future__ import annotations

import numpy as np

from repro.db.database import Database
from repro.db.relation import Relation
from repro.db.schema import Column, ColumnType, TableSchema

#: Group values used by the generated fact table.
GROUPS = ("a", "b", "c")


def random_star_database(
    rng: np.random.Generator | int | None = None,
    fact_rows: int = 25,
) -> Database:
    """A small fact table ``F(fid, g, x, y)`` plus a dimension ``D(g, w)``."""
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    fact = Relation(
        TableSchema(
            "F",
            (
                Column("fid", ColumnType.INT),
                Column("g", ColumnType.TEXT),
                Column("x", ColumnType.INT),
                Column("y", ColumnType.FLOAT),
            ),
            primary_key=("fid",),
        )
    )
    for i in range(fact_rows):
        fact.insert(
            (
                i,
                GROUPS[int(rng.integers(len(GROUPS)))],
                int(rng.integers(0, 20)),
                float(np.round(rng.uniform(0, 5), 1)),
            )
        )
    dim = Relation(
        TableSchema(
            "D", (Column("g", ColumnType.TEXT), Column("w", ColumnType.INT))
        )
    )
    for position, g in enumerate(GROUPS):
        dim.insert((g, position + 1))
    return Database("rand", [fact, dim])


def random_query_text(rng: np.random.Generator | int | None = None) -> str:
    """A random query over :func:`random_star_database`'s schema.

    Stays within the engine's supported fragment *and* within the shapes the
    incremental conflict checker handles, so the same generator fuzzes both.
    """
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    kind = int(rng.integers(6))
    g = GROUPS[int(rng.integers(len(GROUPS)))]
    lo = int(rng.integers(0, 15))
    hi = lo + int(rng.integers(1, 8))
    if kind == 0:
        return f"select fid, x from F where g = '{g}'"
    if kind == 1:
        return f"select fid from F where x between {lo} and {hi}"
    if kind == 2:
        return "select g, count(*), sum(x) from F group by g"
    if kind == 3:
        return f"select avg(y) from F where x > {lo}"
    if kind == 4:
        return "select min(y), max(x) from F"
    return (
        "select D.w, sum(F.x) from F, D where F.g = D.g "
        f"and F.x <= {hi} group by D.w"
    )
