"""Unit tests for the scalar expression language."""

import pytest

from repro.db.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
    Scope,
    conjoin,
    conjuncts,
)
from repro.exceptions import QueryError

SCOPE = Scope([("t", "a"), ("t", "b"), (None, "c")])
ROW = (10, "hello", None)


def evaluate(expr, row=ROW, scope=SCOPE):
    return expr.bind(scope)(row)


class TestScope:
    def test_resolve_qualified(self):
        assert SCOPE.resolve("t", "a") == 0

    def test_resolve_unqualified(self):
        assert SCOPE.resolve(None, "b") == 1

    def test_resolve_case_insensitive(self):
        assert SCOPE.resolve("T", "A") == 0

    def test_unknown_column(self):
        with pytest.raises(QueryError, match="unknown column"):
            SCOPE.resolve(None, "zzz")

    def test_ambiguous_column(self):
        scope = Scope([("x", "a"), ("y", "a")])
        with pytest.raises(QueryError, match="ambiguous"):
            scope.resolve(None, "a")

    def test_ambiguity_resolved_by_qualifier(self):
        scope = Scope([("x", "a"), ("y", "a")])
        assert scope.resolve("y", "a") == 1

    def test_concat(self):
        merged = SCOPE.concat(Scope([(None, "d")]))
        assert merged.arity == 4
        assert merged.resolve(None, "d") == 3


class TestBasicNodes:
    def test_column_ref(self):
        assert evaluate(ColumnRef("a", "t")) == 10

    def test_literal(self):
        assert evaluate(Literal(42)) == 42

    def test_comparison_true(self):
        assert evaluate(Comparison("<", ColumnRef("a"), Literal(20))) is True

    def test_comparison_false(self):
        assert evaluate(Comparison(">", ColumnRef("a"), Literal(20))) is False

    def test_comparison_null_is_false(self):
        assert evaluate(Comparison("=", ColumnRef("c"), Literal(1))) is False

    def test_comparison_type_mismatch_raises(self):
        with pytest.raises(QueryError, match="cannot compare"):
            evaluate(Comparison("<", ColumnRef("a"), Literal("text")))

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison("~", Literal(1), Literal(2))

    def test_not_equal(self):
        assert evaluate(Comparison("!=", ColumnRef("b"), Literal("x"))) is True


class TestPredicates:
    def test_between_inclusive(self):
        assert evaluate(Between(ColumnRef("a"), Literal(10), Literal(20))) is True
        assert evaluate(Between(ColumnRef("a"), Literal(11), Literal(20))) is False

    def test_between_null_false(self):
        assert evaluate(Between(ColumnRef("c"), Literal(0), Literal(5))) is False

    def test_like_percent(self):
        assert evaluate(Like(ColumnRef("b"), "he%")) is True
        assert evaluate(Like(ColumnRef("b"), "x%")) is False

    def test_like_underscore(self):
        assert evaluate(Like(ColumnRef("b"), "h_llo")) is True

    def test_like_case_insensitive(self):
        assert evaluate(Like(ColumnRef("b"), "HELLO")) is True

    def test_like_negated(self):
        assert evaluate(Like(ColumnRef("b"), "x%", negated=True)) is True

    def test_like_escapes_regex_chars(self):
        scope = Scope([(None, "s")])
        assert Like(ColumnRef("s"), "a.b").bind(scope)(("a.b",)) is True
        assert Like(ColumnRef("s"), "a.b").bind(scope)(("axb",)) is False

    def test_like_on_null_false(self):
        assert evaluate(Like(ColumnRef("c"), "%")) is False

    def test_in_list(self):
        assert evaluate(InList(ColumnRef("a"), (5, 10))) is True
        assert evaluate(InList(ColumnRef("a"), (5, 11))) is False

    def test_in_list_negated(self):
        assert evaluate(InList(ColumnRef("a"), (5,), negated=True)) is True

    def test_is_null(self):
        assert evaluate(IsNull(ColumnRef("c"))) is True
        assert evaluate(IsNull(ColumnRef("a"))) is False

    def test_is_not_null(self):
        assert evaluate(IsNull(ColumnRef("a"), negated=True)) is True


class TestBooleanLogic:
    def test_and(self):
        true = Comparison("=", Literal(1), Literal(1))
        false = Comparison("=", Literal(1), Literal(2))
        assert evaluate(And(true, true)) is True
        assert evaluate(And(true, false)) is False

    def test_or(self):
        true = Comparison("=", Literal(1), Literal(1))
        false = Comparison("=", Literal(1), Literal(2))
        assert evaluate(Or(false, true)) is True
        assert evaluate(Or(false, false)) is False

    def test_not(self):
        assert evaluate(Not(Literal(0))) is True


class TestArithmetic:
    def test_add_mul(self):
        expr = Arithmetic("+", ColumnRef("a"), Arithmetic("*", Literal(2), Literal(3)))
        assert evaluate(expr) == 16

    def test_null_propagates(self):
        assert evaluate(Arithmetic("+", ColumnRef("c"), Literal(1))) is None

    def test_division_by_zero_yields_null(self):
        assert evaluate(Arithmetic("/", Literal(1), Literal(0))) is None

    def test_division(self):
        assert evaluate(Arithmetic("/", Literal(7), Literal(2))) == 3.5


class TestConjunctHelpers:
    def test_conjuncts_flattens(self):
        a, b, c = Literal(1), Literal(2), Literal(3)
        assert conjuncts(And(And(a, b), c)) == [a, b, c]

    def test_conjuncts_of_none(self):
        assert conjuncts(None) == []

    def test_conjoin_roundtrip(self):
        a, b = Literal(1), Literal(2)
        assert conjuncts(conjoin([a, b])) == [a, b]

    def test_conjoin_empty(self):
        assert conjoin([]) is None

    def test_referenced_columns(self):
        expr = And(
            Comparison("=", ColumnRef("a", "t"), Literal(1)),
            Like(ColumnRef("b"), "%"),
        )
        assert expr.referenced_columns() == {("t", "a"), (None, "b")}
