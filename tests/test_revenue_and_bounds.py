"""Unit tests for revenue accounting and the two upper bounds."""

import numpy as np
import pytest

from repro.core.bounds import greedy_cover, subadditive_upper_bound, sum_of_valuations
from repro.core.evaluator import RevenueEvaluator
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import ItemPricing, UniformBundlePricing
from repro.core.revenue import compute_revenue, revenue_of_item_weights


class TestRevenue:
    def test_buyers_buy_iff_price_leq_valuation(self, small_instance):
        pricing = UniformBundlePricing(9.0)
        report = compute_revenue(pricing, small_instance)
        # valuations: 10, 6, 14, 8, 9, 5 -> sold: 10, 14, 9
        assert report.num_sold == 3
        assert report.revenue == pytest.approx(27.0)

    def test_item_pricing_revenue(self, small_instance):
        pricing = ItemPricing([10.0, 4.0, 4.0, 4.0, 1.0])
        report = compute_revenue(pricing, small_instance)
        # prices: 10, 4, 14, 8, 9, 0 -> all sold
        assert report.num_sold == 6
        assert report.revenue == pytest.approx(10 + 4 + 14 + 8 + 9 + 0)

    def test_empty_bundle_priced_zero_under_item_pricing(self, small_instance):
        pricing = ItemPricing(np.full(5, 100.0))
        report = compute_revenue(pricing, small_instance)
        # Only the empty edge (price 0 <= 5) sells.
        assert report.num_sold == 1
        assert report.revenue == 0.0

    def test_tolerance_absorbs_round_off(self, small_instance):
        # Price infinitesimally above the valuation still sells.
        pricing = UniformBundlePricing(10.0 * (1 + 1e-12))
        report = compute_revenue(pricing, small_instance)
        assert report.sold[0]

    def test_sell_through(self, small_instance):
        report = compute_revenue(UniformBundlePricing(0.0), small_instance)
        assert report.sell_through == 1.0

    def test_normalized(self, small_instance):
        report = compute_revenue(UniformBundlePricing(9.0), small_instance)
        assert report.normalized(54.0) == pytest.approx(0.5)
        assert report.normalized(0.0) == 0.0

    def test_fast_path_matches_pricing_object(self, random_instance_factory):
        instance = random_instance_factory(seed=5)
        rng = np.random.default_rng(0)
        weights = rng.uniform(0, 5, size=instance.num_items)
        fast = revenue_of_item_weights(weights, instance)
        slow = compute_revenue(ItemPricing(weights), instance).revenue
        assert fast == pytest.approx(slow)


@pytest.fixture(params=["scalar", "vectorized"])
def evaluator(request):
    return RevenueEvaluator(request.param)


class TestRevenueReportEdgeCases:
    """RevenueReport corners, pinned against both revenue strategies."""

    def test_sell_through_with_zero_buyers(self, evaluator):
        instance = PricingInstance(Hypergraph(3, []), [])
        report = evaluator.evaluate(UniformBundlePricing(5.0), instance)
        assert report.num_edges == 0
        assert report.num_sold == 0
        assert report.revenue == 0.0
        assert report.sell_through == 0.0  # no division by zero

    def test_normalized_zero_reference(self, evaluator):
        instance = PricingInstance(Hypergraph(2, [{0}, {1}]), [3.0, 4.0])
        report = evaluator.evaluate(ItemPricing([3.0, 4.0]), instance)
        assert report.revenue == pytest.approx(7.0)
        assert report.normalized(reference=0) == 0.0
        assert report.normalized(reference=-1.0) == 0.0

    def test_revenue_ties_between_bundles(self, evaluator):
        # Two distinct bundles with identical prices sitting exactly on
        # their valuations: both must sell (p <= v holds at equality), and
        # the third buyer one cent below must not.
        hypergraph = Hypergraph(4, [{0, 1}, {2, 3}, {0, 2}])
        instance = PricingInstance(hypergraph, [3.0, 3.0, 2.99])
        report = evaluator.evaluate(ItemPricing([1.5, 1.5, 1.5, 1.5]), instance)
        assert report.prices.tolist() == [3.0, 3.0, 3.0]
        assert report.sold.tolist() == [True, True, False]
        assert report.num_sold == 2
        assert report.revenue == pytest.approx(6.0)

    def test_strategies_break_ties_identically(self):
        hypergraph = Hypergraph(4, [{0, 1}, {2, 3}, {0, 2}, set()])
        instance = PricingInstance(hypergraph, [3.0, 3.0, 2.99, 0.0])
        pricing = ItemPricing([1.5, 1.5, 1.5, 1.5])
        scalar = RevenueEvaluator("scalar").evaluate(pricing, instance)
        vectorized = RevenueEvaluator("vectorized").evaluate(pricing, instance)
        assert np.array_equal(scalar.prices, vectorized.prices)
        assert np.array_equal(scalar.sold, vectorized.sold)
        assert scalar.revenue == vectorized.revenue
        assert scalar.num_sold == vectorized.num_sold

    def test_diagnostics_count_evaluations(self, evaluator):
        instance = PricingInstance(Hypergraph(2, [{0}, {1}]), [1.0, 2.0])
        evaluator.evaluate(UniformBundlePricing(1.0), instance)
        evaluator.revenue_of_item_weights(np.array([0.5, 0.5]), instance)
        record = evaluator.diagnostics[evaluator.strategy_name]
        assert record["evaluations"] == 2
        assert record["edges"] == 4


class TestSumOfValuations:
    def test_value(self, small_instance):
        assert sum_of_valuations(small_instance) == pytest.approx(52.0)


class TestGreedyCover:
    def test_covers_when_possible(self):
        target = frozenset({0, 1, 2})
        candidates = [
            (0, frozenset({0, 1}), 1.0),
            (1, frozenset({2}), 1.0),
            (2, frozenset({0}), 10.0),
        ]
        cover = greedy_cover(target, candidates)
        assert cover is not None
        covered = set()
        for index in cover:
            covered |= dict((c[0], c[1]) for c in candidates)[index]
        assert covered >= target

    def test_prefers_cheap_covers(self):
        target = frozenset({0, 1})
        candidates = [
            (0, frozenset({0, 1}), 100.0),
            (1, frozenset({0}), 1.0),
            (2, frozenset({1}), 1.0),
        ]
        assert sorted(greedy_cover(target, candidates)) == [1, 2]

    def test_returns_none_when_uncoverable(self):
        assert greedy_cover(frozenset({9}), [(0, frozenset({1}), 1.0)]) is None


class TestSubadditiveBound:
    def test_at_most_sum_of_valuations(self, random_instance_factory):
        for seed in range(5):
            instance = random_instance_factory(seed=seed)
            bound = subadditive_upper_bound(instance)
            assert bound <= sum_of_valuations(instance) + 1e-6

    def test_binds_when_expensive_edge_covered_by_cheap(self):
        # Edge {0,1} valued 100 covered by {0} and {1} valued 1 each:
        # any monotone subadditive pricing earns at most 1+1 from it.
        hypergraph = Hypergraph(2, [{0}, {1}, {0, 1}])
        instance = PricingInstance(hypergraph, [1.0, 1.0, 100.0])
        bound = subadditive_upper_bound(instance)
        assert bound == pytest.approx(4.0)  # 1 + 1 + (1 + 1)

    def test_no_cover_keeps_full_sum(self):
        # Disjoint singletons cannot cover one another.
        hypergraph = Hypergraph(3, [{0}, {1}, {2}])
        instance = PricingInstance(hypergraph, [5.0, 6.0, 7.0])
        assert subadditive_upper_bound(instance) == pytest.approx(18.0)

    def test_empty_edges_contribute_nothing(self):
        hypergraph = Hypergraph(2, [set(), {0}])
        instance = PricingInstance(hypergraph, [50.0, 3.0])
        assert subadditive_upper_bound(instance) == pytest.approx(3.0)

    def test_empty_instance(self):
        instance = PricingInstance(Hypergraph(0, []), [])
        assert subadditive_upper_bound(instance) == 0.0

    def test_known_caveat_item_pricing_can_exceed_lp_reference(self):
        # Documented limitation (see bounds.py): the LP assumes every edge is
        # sold; declining the cheap edges can beat it. This pins the behavior
        # so the caveat stays documented and deliberate.
        from repro.core.pricing import ItemPricing
        from repro.core.revenue import compute_revenue

        hypergraph = Hypergraph(2, [{0}, {1}, {0, 1}])
        instance = PricingInstance(hypergraph, [1.0, 1.0, 100.0])
        bound = subadditive_upper_bound(instance)
        aggressive = compute_revenue(ItemPricing([50.0, 50.0]), instance)
        assert aggressive.revenue > bound
