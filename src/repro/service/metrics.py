"""Latency/throughput instrumentation for the pricing service.

The load generator (and anything else driving :class:`PricingService`) needs
per-request latency percentiles that survive concurrent recording. A
:class:`LatencyRecorder` is a thread-safe append-only series of seconds;
:meth:`LatencyRecorder.summary` reduces it to the usual serving numbers
(mean/p50/p95/p99/max) in milliseconds via one vectorized percentile call.

:class:`ShardLatencyRecorder` is the sharded-tier twin: each sample carries
a label (the request's home shard), so a load run reduces to an overall
summary *plus* a per-shard breakdown — the "which shard is the hot one"
view a partitioned tier is operated by.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Request-latency percentiles, in milliseconds."""

    count: int
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    max_ms: float

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean_ms": self.mean_ms,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "max_ms": self.max_ms,
        }

    def __str__(self) -> str:
        return (
            f"n={self.count}  mean={self.mean_ms:.3f}ms  p50={self.p50_ms:.3f}ms  "
            f"p95={self.p95_ms:.3f}ms  p99={self.p99_ms:.3f}ms  "
            f"max={self.max_ms:.3f}ms"
        )


_EMPTY = LatencySummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)


class LatencyRecorder:
    """Thread-safe collection of request latencies (seconds in, ms out)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._seconds: list[float] = []

    def record(self, seconds: float) -> None:
        with self._lock:
            self._seconds.append(seconds)

    def __len__(self) -> int:
        with self._lock:
            return len(self._seconds)

    def summary(self) -> LatencySummary:
        with self._lock:
            if not self._seconds:
                return _EMPTY
            millis = np.asarray(self._seconds, dtype=float) * 1e3
        return _summarize(millis)


def _summarize(millis: np.ndarray) -> LatencySummary:
    if millis.size == 0:
        # np.percentile raises (and mean divides by zero) on an empty
        # array; an idle shard's summary is simply the zero summary.
        return _EMPTY
    p50, p95, p99 = np.percentile(millis, [50.0, 95.0, 99.0])
    return LatencySummary(
        count=len(millis),
        mean_ms=float(millis.mean()),
        p50_ms=float(p50),
        p95_ms=float(p95),
        p99_ms=float(p99),
        max_ms=float(millis.max()),
    )


class ShardLatencyRecorder:
    """Thread-safe labeled latencies: one stream, reducible per label.

    Labels are opaque (the loadgen uses home-shard ids); ``None`` samples
    only contribute to the overall summary. Labels may be attached *after*
    recording via :meth:`relabel` — the loadgen records by request position
    during the timed run and maps positions to home shards afterwards, so
    shard attribution never adds work inside the measured region.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._samples: list[tuple[object, float]] = []

    def record(self, label, seconds: float) -> None:
        with self._lock:
            self._samples.append((label, seconds))

    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def relabel(self, mapping: dict) -> None:
        """Replace each label with ``mapping[label]`` (missing: unchanged)."""
        with self._lock:
            self._samples = [
                (mapping.get(label, label), seconds)
                for label, seconds in self._samples
            ]

    def summary(self) -> LatencySummary:
        """The overall (all-labels) latency summary."""
        with self._lock:
            if not self._samples:
                return _EMPTY
            millis = np.array(
                [seconds for _, seconds in self._samples], dtype=float
            ) * 1e3
        return _summarize(millis)

    def by_label(self, expected=None) -> dict:
        """Per-label :class:`LatencySummary` (``None``-labeled samples skipped).

        ``expected`` optionally names labels that must appear even when
        they received no samples — an idle shard in a 4-shard tier serving
        a 1-key working set reports the zero (``count == 0``) summary
        instead of silently vanishing from the breakdown.
        """
        with self._lock:
            samples = list(self._samples)
        grouped: dict[object, list[float]] = {}
        if expected is not None:
            for label in expected:
                grouped.setdefault(label, [])
        for label, seconds in samples:
            if label is None:
                continue
            grouped.setdefault(label, []).append(seconds)
        return {
            label: _summarize(np.asarray(values, dtype=float) * 1e3)
            for label, values in sorted(grouped.items(), key=lambda kv: str(kv[0]))
        }
