"""Databases: named collections of relations with copy-on-write patching."""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.db.relation import Relation
from repro.exceptions import SchemaError


class Database:
    """A set of relations addressed by (case-insensitive) table name.

    Databases are cheap to patch: :meth:`with_table_replaced` shares all
    untouched relations with the original, which is what makes support sets of
    thousands of "neighboring" instances affordable.
    """

    __slots__ = ("name", "_tables")

    def __init__(self, name: str = "db", tables: Iterable[Relation] = ()):
        self.name = name
        self._tables: dict[str, Relation] = {}
        for relation in tables:
            self.add_table(relation)

    def add_table(self, relation: Relation) -> None:
        """Register a relation under its schema name."""
        key = relation.schema.name.lower()
        if key in self._tables:
            raise SchemaError(f"table {relation.schema.name!r} already exists")
        self._tables[key] = relation

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Relation:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SchemaError(f"no table {name!r} in database {self.name!r}") from None

    @property
    def table_names(self) -> list[str]:
        return [relation.schema.name for relation in self._tables.values()]

    def tables(self) -> Iterator[Relation]:
        return iter(self._tables.values())

    @property
    def total_rows(self) -> int:
        return sum(len(relation) for relation in self._tables.values())

    def with_table_replaced(self, relation: Relation) -> "Database":
        """New database sharing every table except the replaced one."""
        key = relation.schema.name.lower()
        if key not in self._tables:
            raise SchemaError(
                f"cannot replace unknown table {relation.schema.name!r} "
                f"in database {self.name!r}"
            )
        clone = Database.__new__(Database)
        clone.name = self.name
        clone._tables = dict(self._tables)
        clone._tables[key] = relation
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        summary = ", ".join(f"{r.schema.name}({len(r)})" for r in self._tables.values())
        return f"Database({self.name!r}: {summary})"
