"""Coordinate-ascent and geometric-grid heuristics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.algorithms import (
    CoordinateAscent,
    GeometricGridItemPricing,
    Layering,
    UBP,
    UIP,
    available_algorithms,
    get_algorithm,
)
from repro.core.algorithms.uip import best_uniform_item_price
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import ItemPricing
from repro.exceptions import PricingError
from repro.workloads.synthetic import random_instance


def make_instance(num_items, edges, valuations, name="test"):
    return PricingInstance(Hypergraph(num_items, edges), valuations, name=name)


@st.composite
def small_instances(draw):
    num_items = draw(st.integers(1, 8))
    num_edges = draw(st.integers(1, 10))
    edges = [
        draw(st.sets(st.integers(0, num_items - 1), max_size=num_items))
        for _ in range(num_edges)
    ]
    valuations = [
        draw(st.floats(0, 100, allow_nan=False, width=32))
        for _ in range(num_edges)
    ]
    return make_instance(num_items, edges, valuations)


# ---------------------------------------------------------------------------
# Coordinate ascent
# ---------------------------------------------------------------------------


class TestCoordinateAscent:
    def test_escapes_uip_on_nested_instance(self):
        # UIP tops out at 3.0 here; one ascent pass reaches the optimum 4.0.
        instance = make_instance(2, [{0}, {0, 1}], [1.0, 3.0])
        _, uip_revenue = best_uniform_item_price(instance)
        assert uip_revenue == pytest.approx(3.0)
        result = CoordinateAscent(seed="uip").run(instance)
        assert result.revenue == pytest.approx(4.0)

    def test_metadata_records_seed_and_progress(self):
        instance = make_instance(2, [{0}, {1}], [1.0, 2.0])
        result = CoordinateAscent().run(instance)
        assert result.metadata["seed"] == "uip"
        assert result.metadata["passes"] >= 1
        assert result.metadata["final_revenue"] >= result.metadata["seed_revenue"]

    def test_zero_seed(self):
        instance = make_instance(2, [{0}, {1}], [1.0, 2.0])
        result = CoordinateAscent(seed="zero").run(instance)
        assert result.metadata["seed"] == "zero"
        assert result.revenue == pytest.approx(3.0)

    def test_explicit_weight_seed(self):
        instance = make_instance(2, [{0}, {1}], [1.0, 2.0])
        result = CoordinateAscent(seed=np.array([0.5, 0.5])).run(instance)
        assert result.metadata["seed"] == "explicit"
        assert result.revenue == pytest.approx(3.0)

    def test_algorithm_seed(self):
        instance = make_instance(3, [{0}, {1}, {2}], [1.0, 2.0, 3.0])
        result = CoordinateAscent(seed=Layering()).run(instance)
        assert result.metadata["seed"] == "layering"
        assert result.revenue == pytest.approx(6.0)

    def test_rejects_bad_seeds(self):
        with pytest.raises(PricingError, match="unknown seed"):
            CoordinateAscent(seed="nope")
        with pytest.raises(PricingError):
            CoordinateAscent(max_passes=0)
        instance = make_instance(2, [{0}], [1.0])
        with pytest.raises(PricingError, match="shape"):
            CoordinateAscent(seed=np.zeros(5)).run(instance)
        with pytest.raises(PricingError, match="item pricing"):
            CoordinateAscent(seed=UBP()).run(instance)

    def test_handles_instance_with_no_usable_edges(self):
        instance = make_instance(3, [set(), set()], [1.0, 2.0])
        result = CoordinateAscent().run(instance)
        assert result.revenue == pytest.approx(0.0)

    @settings(max_examples=40, deadline=None)
    @given(instance=small_instances())
    def test_never_below_uip(self, instance):
        uip = UIP().run(instance).revenue
        ascent = CoordinateAscent(seed="uip").run(instance).revenue
        assert ascent >= uip - 1e-6 - 1e-6 * uip

    @settings(max_examples=40, deadline=None)
    @given(instance=small_instances())
    def test_output_is_valid_item_pricing(self, instance):
        result = CoordinateAscent(seed="zero").run(instance)
        pricing = result.pricing
        assert isinstance(pricing, ItemPricing)
        assert np.all(pricing.weights >= 0)
        assert np.all(np.isfinite(pricing.weights))

    def test_improves_on_larger_random_instance(self):
        instance = random_instance(
            num_items=40, num_edges=60, max_edge_size=6, rng=7
        )
        uip = UIP().run(instance).revenue
        ascent = CoordinateAscent(seed="uip").run(instance)
        assert ascent.revenue >= uip
        # Sanity: ascent should find strictly better prices on a generic
        # random instance (equality would suggest the line search is inert).
        assert ascent.revenue > uip * 1.01


# ---------------------------------------------------------------------------
# Geometric grid
# ---------------------------------------------------------------------------


class TestGeometricGrid:
    def test_rejects_ratio_at_most_one(self):
        with pytest.raises(PricingError):
            GeometricGridItemPricing(ratio=1.0)

    def test_empty_instance(self):
        instance = make_instance(2, [set()], [5.0])
        result = GeometricGridItemPricing().run(instance)
        assert result.revenue == pytest.approx(0.0)
        assert result.metadata["num_candidates"] == 0

    def test_singletons_hit_top_value(self):
        instance = make_instance(2, [{0}, {1}], [8.0, 8.0])
        result = GeometricGridItemPricing().run(instance)
        assert result.revenue == pytest.approx(16.0)

    @settings(max_examples=40, deadline=None)
    @given(instance=small_instances())
    def test_grid_is_between_uip_over_ratio_and_uip(self, instance):
        ratio = 2.0
        uip = UIP().run(instance).revenue
        grid = GeometricGridItemPricing(ratio=ratio).run(instance).revenue
        slack = 1e-6 + 1e-6 * uip
        assert grid <= uip + slack  # UIP is optimal among uniform prices
        assert grid >= uip / ratio - slack  # grid bracket argument

    @settings(max_examples=20, deadline=None)
    @given(
        instance=small_instances(),
        ratio=st.floats(1.05, 4.0, allow_nan=False),
    )
    def test_finer_grids_do_not_lose_revenue_guarantee(self, instance, ratio):
        uip = UIP().run(instance).revenue
        grid = GeometricGridItemPricing(ratio=ratio).run(instance).revenue
        assert grid >= uip / ratio - 1e-6 - 1e-6 * uip


# ---------------------------------------------------------------------------
# Registry integration
# ---------------------------------------------------------------------------


class TestRegistryIntegration:
    def test_new_algorithms_are_registered(self):
        names = available_algorithms()
        for name in ("ascent", "grid-uip", "exact-item", "exact-subadditive"):
            assert name in names

    def test_get_algorithm_with_params(self):
        algorithm = get_algorithm("ascent", seed="zero", max_passes=3)
        assert isinstance(algorithm, CoordinateAscent)
        assert algorithm.max_passes == 3
        grid = get_algorithm("grid-uip", ratio=1.5)
        assert isinstance(grid, GeometricGridItemPricing)

    def test_xos_combiner_accepts_new_item_algorithms(self):
        from repro.core.algorithms import XOSCombiner
        from repro.core.pricing import XOSPricing

        instance = make_instance(
            4, [{0}, {0, 1}, {1, 2}, {3}], [3.0, 5.0, 4.0, 2.0]
        )
        combiner = XOSCombiner(
            [CoordinateAscent(seed="uip"), GeometricGridItemPricing()]
        )
        result = combiner.run(instance)
        assert isinstance(result.pricing, XOSPricing)
        assert result.pricing.num_components == 2
        # Every bundle's XOS price dominates both components' prices.
        for edge in instance.edges:
            assert result.pricing.price(edge) >= max(
                component.price(edge) for component in result.pricing.components
            ) - 1e-12
