"""Unit tests for the plan-level query canonicalizer."""

import pytest

from repro.db.query import sql_query
from repro.service.canonical import canonical_form, canonical_key


@pytest.fixture
def key(mini_db):
    def compute(sql: str) -> str:
        return canonical_key(sql_query(sql, mini_db), mini_db)

    return compute


class TestTextualVariantsCollapse:
    def test_whitespace_and_keyword_case(self, key):
        assert key("select Name from Country where Population > 1000") == key(
            "SELECT   Name\nFROM Country\n  WHERE Population > 1000"
        )

    def test_identifier_case(self, key):
        assert key("select name from country where population > 1000") == key(
            "select Name from Country where Population > 1000"
        )

    def test_table_alias(self, key):
        assert key(
            "select c.Name from Country as c where c.Population > 1000"
        ) == key("select Name from Country where Population > 1000")

    def test_alias_without_as(self, key):
        assert key("select c.Name from Country c where c.Continent = 'Asia'") == key(
            "select Name from Country where Continent = 'Asia'"
        )

    def test_output_column_alias_is_ignored(self, key):
        # Output labels never change a conflict set, hence never a price.
        assert key("select Name as n from Country") == key("select Name from Country")

    def test_conjunct_order(self, key):
        assert key(
            "select Name from Country where Population > 10 and Continent = 'Asia'"
        ) == key(
            "select Name from Country where Continent = 'Asia' and Population > 10"
        )

    def test_flipped_inequality(self, key):
        assert key("select Name from Country where Population > 1000") == key(
            "select Name from Country where 1000 < Population"
        )

    def test_symmetric_comparison_operand_order(self, key):
        assert key("select Name from Country where Continent = 'Asia'") == key(
            "select Name from Country where 'Asia' = Continent"
        )

    def test_join_alias_renaming(self, key):
        left = key(
            "select c.Name from City c, Country o "
            "where c.CountryCode = o.Code and o.Continent = 'Asia'"
        )
        right = key(
            "select x.Name from City x, Country y "
            "where x.CountryCode = y.Code and y.Continent = 'Asia'"
        )
        assert left == right

    def test_join_key_side_order(self, key):
        assert key(
            "select c.Name from City c, Country o where c.CountryCode = o.Code"
        ) == key(
            "select c.Name from City c, Country o where o.Code = c.CountryCode"
        )


class TestDistinctQueriesStayDistinct:
    def test_different_literal(self, key):
        assert key("select Name from Country where Population > 1000") != key(
            "select Name from Country where Population > 1001"
        )

    def test_literal_type_tags(self, key):
        # 1000 (int) and 1000.0 (float) are different plans on purpose.
        assert key("select Name from Country where Population > 1000") != key(
            "select Name from Country where Population > 1000.0"
        )

    def test_different_column(self, key):
        assert key("select Name from Country") != key("select Code from Country")

    def test_projection_order_matters(self, key):
        assert key("select Name, Code from Country") != key(
            "select Code, Name from Country"
        )

    def test_order_by_is_part_of_the_query(self, key):
        unordered = key("select Name from Country")
        ordered = key("select Name from Country order by Name")
        descending = key("select Name from Country order by Name desc")
        assert len({unordered, ordered, descending}) == 3

    def test_aggregate_vs_plain(self, key):
        assert key("select count(Name) from Country") != key(
            "select Name from Country"
        )

    def test_group_by_keys_matter(self, key):
        assert key(
            "select Continent, count(*) from Country group by Continent"
        ) != key("select Region, count(*) from Country group by Region")

    def test_self_join_aliases_do_not_collapse(self, mini_db):
        # Both scans are Country: positional disambiguation must keep a
        # projection of side A distinct from a projection of side B.
        a = sql_query(
            "select a.Name from Country a, Country b where a.Code = b.Code",
            mini_db,
        )
        b = sql_query(
            "select b.Name from Country a, Country b where a.Code = b.Code",
            mini_db,
        )
        assert canonical_key(a, mini_db) != canonical_key(b, mini_db)


class TestFallbackShapes:
    """Plans match_shape rejects still fingerprint deterministically."""

    def test_distinct_and_limit(self, key):
        plain = key("select Name from Country")
        distinct = key("select distinct Name from Country")
        limited = key("select Name from Country limit 2")
        assert len({plain, distinct, limited}) == 3

    def test_limit_count_matters(self, key):
        assert key("select Name from Country limit 2") != key(
            "select Name from Country limit 3"
        )

    def test_fallback_still_collapses_whitespace(self, key):
        assert key("select distinct Name from Country") == key(
            "SELECT DISTINCT  Name  FROM  Country"
        )


class TestCanonicalForm:
    def test_readable_form_mentions_normalized_names(self, mini_db):
        form = canonical_form(
            sql_query("select c.Name from Country c where c.Population > 7", mini_db),
            mini_db,
        )
        assert "col(country.name)" in form
        assert "lit(int:7)" in form
        assert "c." not in form  # the alias itself never leaks into the form

    def test_form_without_catalog_is_deterministic(self, mini_db):
        query = sql_query(
            "select c.Name from City c, Country o where c.CountryCode = o.Code",
            mini_db,
        )
        assert canonical_form(query) == canonical_form(query)
