"""``PricingService``: a concurrent, caching, micro-batching pricing front-end.

:class:`~repro.qirana.broker.QueryMarket` is a single-threaded facade — the
right tool for offline pricing optimization, but not for serving a stream of
concurrent buyers: every ``quote`` re-plans its text, every distinct text
pays a full conflict-set computation, and nothing guards the engine's caches
against interleaved mutation. :class:`PricingService` is the serving tier on
top of it:

- **Canonical quote cache** — requests are planned once (a bounded raw-text
  plan memo) and fingerprinted at the plan level
  (:mod:`repro.service.canonical`), so whitespace/alias variants of one
  query hit a single bounded LRU entry. Cache hits return without touching
  the market at all.
- **Micro-batched quoting** — cache misses are queued and coalesced by a
  single scheduler thread into ``quote_batch`` calls (flushed when the batch
  reaches ``max_batch_size`` or the oldest request has waited
  ``max_batch_delay`` seconds), amortizing the engine's delta-tensor and
  columnar setup across concurrent traffic exactly as the backend
  ``prepare`` hook intends.
- **Serialized market access** — one re-entrant lock guards the market, the
  transaction ledger, and the history-aware ledger, so concurrent quotes,
  purchases, and pricing installs interleave safely.
- **Per-buyer sessions** — :meth:`PricingService.session` wires a buyer to
  the service's :class:`~repro.qirana.history.HistoryAwareLedger` for
  marginal (history-aware) quoting and purchasing.
- **Snapshot/restore** — :meth:`snapshot` persists pricing, known bundles,
  the transaction ledger, and per-buyer history through
  :mod:`repro.qirana.persistence`; :meth:`restore` rehydrates a fresh
  service over the same support set.

Installing a new pricing bumps the quote cache's generation, so stale prices
are never served after a re-optimization.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path

from repro.core.algorithms.base import PricingAlgorithm, PricingResult
from repro.core.pricing import PricingFunction
from repro.db.query import Query
from repro.exceptions import PricingError, ServiceError
from repro.qirana.broker import PriceQuote, QueryMarket, Transaction
from repro.qirana.history import HistoryAwareLedger, MarginalQuote
from repro.qirana.persistence import load_market_state, save_market_state
from repro.service.cache import CacheStats, LRUCache, QuoteCache
from repro.service.canonical import canonical_key
from repro.support.generator import SupportSet


@dataclass(frozen=True)
class ServiceStats:
    """A snapshot of the service's caches, batching, and ledger counters."""

    quotes: CacheStats
    plans: CacheStats
    batches: int
    batched_requests: int
    max_batch_size: int
    transactions: int

    @property
    def mean_batch_size(self) -> float:
        return self.batched_requests / self.batches if self.batches else 0.0

    def as_dict(self) -> dict:
        return {
            "quote_cache": self.quotes.as_dict(),
            "plan_memo": self.plans.as_dict(),
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": self.mean_batch_size,
            "transactions": self.transactions,
        }


@dataclass
class _Pending:
    """One queued quote request awaiting a micro-batch flush."""

    query: Query
    key: str
    future: Future
    enqueued: float


class PricingService:
    """Thread-safe serving facade over a :class:`QueryMarket`.

    Parameters
    ----------
    market:
        The wrapped market, or a :class:`SupportSet` to build one over.
    max_batch_size:
        Flush the micro-batch as soon as this many misses are queued.
    max_batch_delay:
        Flush no later than this many seconds after the *oldest* queued
        request arrived. Under a burst the scheduler is already busy
        quoting, so follow-up batches flush immediately; the delay is only
        ever paid by an isolated miss.
    cache_capacity / plan_memo_capacity:
        Bounds for the canonical quote cache and the raw-text plan memo.
    start:
        When ``False`` the scheduler thread is not started and misses are
        quoted synchronously in the calling thread (still batched per
        call, still cached) — deterministic single-threaded mode for tests
        and offline scripts.
    """

    def __init__(
        self,
        market: QueryMarket | SupportSet,
        *,
        max_batch_size: int = 64,
        max_batch_delay: float = 0.001,
        cache_capacity: int = 4096,
        plan_memo_capacity: int = 8192,
        start: bool = True,
    ):
        if isinstance(market, SupportSet):
            market = QueryMarket(market)
        if max_batch_size < 1:
            raise ServiceError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_batch_delay < 0:
            raise ServiceError("max_batch_delay must be non-negative")
        self.market = market
        self.max_batch_size = max_batch_size
        self.max_batch_delay = max_batch_delay
        self._market_lock = threading.RLock()
        self._quotes = QuoteCache(cache_capacity)
        self._plans = LRUCache(plan_memo_capacity)
        self._ledger = HistoryAwareLedger(market.pricing)
        self._cond = threading.Condition()
        self._pending: deque[_Pending] = deque()
        self._closed = False
        self._worker: threading.Thread | None = None
        # Batch counters are written by the scheduler thread only.
        self._batches = 0
        self._batched_requests = 0
        self._max_batch = 0
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the micro-batch scheduler thread (idempotent)."""
        if self._worker is not None and self._worker.is_alive():
            return
        with self._cond:
            self._closed = False
        self._worker = threading.Thread(
            target=self._drain_loop, name="pricing-service-batcher", daemon=True
        )
        self._worker.start()

    def close(self) -> None:
        """Flush queued requests, stop the scheduler, reject new submissions."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        if self._worker is not None:
            self._worker.join()
            self._worker = None

    def __enter__(self) -> "PricingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Pricing management
    # ------------------------------------------------------------------

    def install_pricing(self, pricing: PricingFunction) -> None:
        """Install a new pricing; every cached quote is invalidated."""
        with self._market_lock:
            self.market.set_pricing(pricing)
            self._ledger.pricing = pricing
            self._quotes.bump_generation()

    def optimize_pricing(
        self,
        queries: list[Query | str],
        valuations,
        algorithm: PricingAlgorithm,
    ) -> PricingResult:
        """Run a pricing algorithm on a workload and install the result."""
        with self._market_lock:
            result = self.market.optimize_pricing(queries, valuations, algorithm)
            self._ledger.pricing = result.pricing
            self._quotes.bump_generation()
        return result

    @property
    def pricing(self) -> PricingFunction | None:
        return self.market.pricing

    @property
    def ledger(self) -> HistoryAwareLedger:
        return self._ledger

    @property
    def transactions(self) -> list[Transaction]:
        return self.market.transactions

    @property
    def revenue(self) -> float:
        """Total revenue collected so far (delegates to the market)."""
        return self.market.revenue

    # ------------------------------------------------------------------
    # Buyer-facing API
    # ------------------------------------------------------------------

    def quote(self, query: Query | str) -> PriceQuote:
        """Price a query: canonical-cache hit, or micro-batched miss."""
        planned, key = self._canonical(query)
        return self._quote_planned(planned, key)

    def quote_many(self, queries: list[Query | str]) -> list[PriceQuote]:
        """Price many queries; misses are submitted together for batching."""
        resolved = [self._canonical(query) for query in queries]
        misses: list[tuple[int, _Pending]] = []
        results: list[PriceQuote | None] = []
        for position, (planned, key) in enumerate(resolved):
            cached = self._quotes.get(key)
            if cached is not None:
                results.append(self._restamp(cached, planned))
            else:
                results.append(None)
                misses.append(
                    (position, _Pending(planned, key, Future(), time.monotonic()))
                )
        if misses:
            self._enqueue([request for _, request in misses])
            for position, request in misses:
                planned, _ = resolved[position]
                results[position] = self._restamp(request.future.result(), planned)
        return results

    def purchase(
        self,
        query: Query | str,
        buyer: str,
        valuation: float | None = None,
    ) -> tuple[object, PriceQuote]:
        """Quote-then-sell at the fresh (history-free) price.

        Mirrors :meth:`QueryMarket.purchase`: a buyer with a stated
        ``valuation`` walks away when the price exceeds it. The answer is
        computed and the sale appended to the ledger under the market lock,
        so concurrent purchases never lose transactions.
        """
        planned, key = self._canonical(query)
        quote = self._quote_planned(planned, key)
        if valuation is not None and quote.price > valuation:
            return None, quote
        with self._market_lock:
            answer = planned.run(self.market.base)
            self.market.transactions.append(
                Transaction(buyer, quote.query_text, quote.price)
            )
        return answer, quote

    def session(self, buyer: str) -> "BuyerSession":
        """A per-buyer session with history-aware (marginal) pricing."""
        return BuyerSession(self, buyer)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------

    def snapshot(self, path: str | Path) -> None:
        """Persist pricing + bundles + transactions + buyer histories."""
        with self._market_lock:
            if self.market.pricing is None:
                raise PricingError("no pricing installed; nothing to snapshot")
            save_market_state(
                self.market.pricing,
                self.market._bundle_cache,
                path,
                transactions=self.market.transactions,
                ledger=self._ledger,
            )

    def restore(self, path: str | Path) -> None:
        """Rehydrate pricing, bundles, transactions, and buyer histories.

        The service must wrap a market over the same support set the
        snapshot was taken against (bundles are support-instance ids).
        """
        state = load_market_state(path)
        with self._market_lock:
            self.market.set_pricing(state.pricing)
            self._ledger.pricing = state.pricing
            self.market._bundle_cache.update(state.bundles)
            self.market.transactions[:] = list(state.transactions)
            self._ledger.owned = dict(state.owned)
            self._ledger.total_paid = dict(state.total_paid)
            self._quotes.bump_generation()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self) -> ServiceStats:
        return ServiceStats(
            quotes=self._quotes.stats(),
            plans=self._plans.stats(),
            batches=self._batches,
            batched_requests=self._batched_requests,
            max_batch_size=self._max_batch,
            transactions=len(self.market.transactions),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _canonical(self, query: Query | str) -> tuple[Query, str]:
        """(planned query, canonical fingerprint), memoized by raw text."""
        if isinstance(query, Query):
            return query, canonical_key(query, self.market.base)
        memo = self._plans.get(query)
        if memo is None:
            planned = self.market._as_query(query)
            memo = (planned, canonical_key(planned, self.market.base))
            self._plans.put(query, memo)
        return memo

    @staticmethod
    def _restamp(quote: PriceQuote, planned: Query) -> PriceQuote:
        """A cached quote re-labeled with this request's text."""
        if quote.query_text == planned.text:
            return quote
        return PriceQuote(planned.text, quote.price, quote.bundle)

    def _quote_planned(self, planned: Query, key: str) -> PriceQuote:
        cached = self._quotes.get(key)
        if cached is not None:
            return self._restamp(cached, planned)
        return self._restamp(self._submit(planned, key).result(), planned)

    def _submit(self, planned: Query, key: str) -> Future:
        request = _Pending(planned, key, Future(), time.monotonic())
        self._enqueue([request])
        return request.future

    def _enqueue(self, requests: list[_Pending]) -> None:
        if self._closed:
            raise ServiceError("pricing service is closed")
        if self._worker is None:
            # Synchronous mode: no scheduler thread, quote in-line (still
            # one quote_batch call per submission round, still cached).
            for chunk_start in range(0, len(requests), self.max_batch_size):
                self._execute(
                    requests[chunk_start : chunk_start + self.max_batch_size]
                )
            return
        with self._cond:
            if self._closed:
                raise ServiceError("pricing service is closed")
            self._pending.extend(requests)
            self._cond.notify_all()

    def _drain_loop(self) -> None:
        while True:
            batch = self._next_batch()
            if batch is None:
                return
            self._execute(batch)

    def _next_batch(self) -> list[_Pending] | None:
        """Block until a micro-batch is due; ``None`` when closed and drained."""
        with self._cond:
            while not self._pending and not self._closed:
                self._cond.wait()
            if not self._pending:
                return None  # closed and drained
            # The batching window is anchored at the *oldest* request: if it
            # queued while the scheduler was busy with the previous batch,
            # its window has already elapsed and the flush is immediate.
            deadline = self._pending[0].enqueued + self.max_batch_delay
            while len(self._pending) < self.max_batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
            size = min(len(self._pending), self.max_batch_size)
            return [self._pending.popleft() for _ in range(size)]

    def _execute(self, batch: list[_Pending]) -> None:
        try:
            with self._market_lock:
                quotes = self.market.quote_batch([item.query for item in batch])
                # Captured inside the same critical section that priced the
                # batch: a concurrent install_pricing cannot stamp these
                # quotes with a generation they were not priced under.
                generation = self._quotes.generation
        except BaseException as exc:  # propagate to every waiter
            for item in batch:
                item.future.set_exception(exc)
            return
        self._batches += 1
        self._batched_requests += len(batch)
        self._max_batch = max(self._max_batch, len(batch))
        for item, quote in zip(batch, quotes):
            self._quotes.put(item.key, quote, generation=generation)
            item.future.set_result(quote)


class BuyerSession:
    """History-aware buyer session: marginal quotes against owned bundles.

    Returning buyers pay only for new information
    (:class:`~repro.qirana.history.HistoryAwareLedger`); the session routes
    bundle computation through the service's canonical cache and batcher,
    then applies marginal pricing under the market lock.
    """

    def __init__(self, service: PricingService, buyer: str):
        self.service = service
        self.buyer = buyer

    def quote(self, query: Query | str) -> MarginalQuote:
        """Fresh + marginal price of a query for this buyer."""
        fresh = self.service.quote(query)
        with self.service._market_lock:
            return self.service._ledger.quote(self.buyer, fresh.bundle)

    def purchase(
        self, query: Query | str, valuation: float | None = None
    ) -> tuple[object, MarginalQuote]:
        """Buy at the marginal price (walks away when over ``valuation``)."""
        planned, key = self.service._canonical(query)
        fresh = self.service._quote_planned(planned, key)
        with self.service._market_lock:
            marginal = self.service._ledger.quote(self.buyer, fresh.bundle)
            if valuation is not None and marginal.marginal_price > valuation:
                return None, marginal
            self.service._ledger.record_purchase(self.buyer, fresh.bundle)
            answer = planned.run(self.service.market.base)
            self.service.market.transactions.append(
                Transaction(self.buyer, planned.text, marginal.marginal_price)
            )
        return answer, marginal

    @property
    def holdings(self) -> frozenset[int]:
        with self.service._market_lock:
            return self.service._ledger.holdings(self.buyer)

    @property
    def total_paid(self) -> float:
        with self.service._market_lock:
            return self.service._ledger.total_paid.get(self.buyer, 0.0)
