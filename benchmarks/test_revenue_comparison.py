"""Revenue-strategy comparison on the uniform-workload coordinate-ascent sweep.

The revenue twin of ``test_backend_comparison``: coordinate ascent's
per-item line searches are exactly the pricing inner loop the CSR revenue
engine vectorizes (a sorted suffix scan replacing the scalar candidate
rescan), so the uniform workload — large hyperedges, high item degrees — is
where the vectorized strategy's advantage over the ``scalar`` oracle is
largest. The acceptance bar is a 5x end-to-end speedup (measured margin is
~3x over the bar) with revenue parity asserted inside
``time_revenue_sweeps`` and the evaluator's kernel counters proving the
vectorized path actually decided every line search.
"""

from repro.experiments.figures import revenue_comparison

from benchmarks.conftest import save_artifact, save_bench_json


def test_revenue_comparison_uniform_ascent(benchmark):
    artifact = benchmark.pedantic(
        revenue_comparison,
        kwargs={
            "workload_name": "uniform",
            "scale": 0.15,
            "support_size": 250,
            "algorithm": "ascent",
        },
        rounds=1,
        iterations=1,
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    save_bench_json(artifact, "BENCH_pricing.json")
    # Only the relative speedup is asserted (measured ~15-19x); absolute
    # wall-clock comparisons flake on shared CI runners.
    speedups = artifact.data["speedups"]
    assert speedups["vectorized"] >= 5.0, speedups
    # The counters must prove the vectorized kernels decided: every line
    # search of the vectorized run was recorded under the vectorized
    # strategy, and it ran as many as the scalar oracle did.
    diagnostics = artifact.data["diagnostics"]
    vectorized = diagnostics["vectorized"]["vectorized"]
    scalar = diagnostics["scalar"]["scalar"]
    assert vectorized["line_searches"] > 0, diagnostics
    assert vectorized["line_searches"] == scalar["line_searches"], diagnostics
    assert "scalar" not in diagnostics["vectorized"], diagnostics
