"""Revenue upper bounds used to normalize experimental results.

Two reference bounds, matching Section 6.1 of the paper:

1. :func:`sum_of_valuations` — the coarse bound ``sum_e v_e`` (welfare).
2. :func:`subadditive_upper_bound` — the paper's LP bound "on the optimal
   subadditive valuation": maximize ``sum_e p_e`` subject to ``p_e <= v_e``
   and *arbitrage (cover) constraints* ``p_e <= sum_{e' in X} p_{e'}`` for
   greedily generated covers ``X`` of ``e`` by other hyperedges. Since the
   number of exact subadditivity constraints is exponential, the paper (and
   we) greedily add one cheap cover per edge.

Caveat (faithful to the paper, worth knowing): the LP is an upper bound on
the revenue of any arbitrage-free pricing that *sells every edge*. The true
optimum may decline to sell the cheap edges of a cover and charge the covered
edge more — e.g. edges ``{0}, {1}`` at value 1 and ``{0,1}`` at value 100:
the LP caps revenue at 4 while the item pricing ``w = (50, 50)`` legitimately
earns 100. On the paper's valuation distributions the reference is almost
always the top line, exactly as plotted there, but it is a *normalization
reference*, not a certified bound (the certified one is sum-of-valuations).
"""

from __future__ import annotations

import numpy as np

from repro.core.hypergraph import PricingInstance
from repro.lp import LinExpr, LPModel, Sense


def sum_of_valuations(instance: PricingInstance) -> float:
    """The welfare bound ``sum_e v_e``."""
    return instance.total_valuation()


def greedy_cover(
    target: frozenset[int],
    candidates: list[tuple[int, frozenset[int], float]],
) -> list[int] | None:
    """Greedy weighted set cover of ``target`` by candidate edges.

    ``candidates`` are ``(edge_index, items, weight)`` triples; the greedy
    rule picks the candidate minimizing ``weight / |covered ∩ uncovered|``.
    Returns the list of chosen edge indices, or ``None`` when the candidates
    cannot cover the target.
    """
    uncovered = set(target)
    chosen: list[int] = []
    available = list(candidates)
    while uncovered:
        best_index = -1
        best_ratio = np.inf
        best_gain: set[int] = set()
        for position, (_, items, weight) in enumerate(available):
            gain = uncovered & items
            if not gain:
                continue
            ratio = weight / len(gain)
            if ratio < best_ratio:
                best_ratio = ratio
                best_index = position
                best_gain = gain
        if best_index < 0:
            return None
        edge_index, _, _ = available.pop(best_index)
        chosen.append(edge_index)
        uncovered -= best_gain
    return chosen


def subadditive_upper_bound(
    instance: PricingInstance,
    max_cover_size: int = 32,
    max_candidates: int = 96,
) -> float:
    """The paper's LP upper bound on optimal subadditive revenue.

    For every edge, we try to cover it with *other* edges using greedy
    weighted set cover (weights = valuations, so expensive covers are
    avoided); each successful cover adds the constraint
    ``p_e <= sum_{e' in cover} p_{e'}``.

    Covers longer than ``max_cover_size`` are discarded — they produce very
    weak constraints while bloating the LP. ``max_candidates`` caps the
    candidate pool per edge (cheapest per-item candidates first); both caps
    only *drop* constraints, which makes the reference larger, never invalid.

    Returns ``sum_e v_e`` unchanged when no useful cover exists (then the LP
    optimum is attained at ``p_e = v_e``).
    """
    m = instance.num_edges
    if m == 0:
        return 0.0
    edges = instance.edges
    valuations = instance.valuations
    incidence = instance.hypergraph.incidence

    model = LPModel(name="subadditive-bound", sense=Sense.MAXIMIZE)
    prices = model.add_variables(m, prefix="p")
    model.set_objective(LinExpr.sum_of(prices))
    for index in range(m):
        model.add_constraint(prices[index] <= float(valuations[index]))

    added_any = False
    for index in range(m):
        target = edges[index]
        if not target:
            # Empty bundles are covered by the empty set: a monotone pricing
            # with f(emptyset)=0 cannot extract revenue from them. (A flat
            # fee could, but the LP bound follows the paper's normalization.)
            model.add_constraint(prices[index] <= 0.0)
            added_any = True
            continue
        # Only edges sharing an item with the target can participate in a
        # cover; among those, prefer the cheapest value-per-item candidates.
        overlapping = {
            other
            for item in target
            for other in incidence[item]
            if other != index
        }
        pool = sorted(
            overlapping,
            key=lambda other: valuations[other] / max(len(edges[other]), 1),
        )[:max_candidates]
        candidates = [
            (other, edges[other], float(valuations[other])) for other in pool
        ]
        cover = greedy_cover(target, candidates)
        if cover is None or len(cover) > max_cover_size:
            continue
        cover_value = float(valuations[list(cover)].sum())
        if cover_value >= valuations[index]:
            # Constraint can never bind below v_e; skip it.
            continue
        total = LinExpr.sum_of([prices[other] for other in cover])
        model.add_constraint(prices[index] <= total)
        added_any = True

    if not added_any:
        return float(valuations.sum())
    solution = model.solve()
    return min(float(solution.objective), float(valuations.sum()))
