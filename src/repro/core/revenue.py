"""Revenue accounting for a pricing function over a pricing instance.

A single-minded buyer with valuation ``v_e`` purchases iff ``p(e) <= v_e``
(we allow a tiny relative tolerance so LP round-off does not flip sales).
Revenue is the sum of prices of sold edges — the unlimited-supply objective
``R(p)`` of Section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hypergraph import PricingInstance
from repro.core.pricing import PricingFunction

#: Relative tolerance when comparing price to valuation. LP-based algorithms
#: (LPIP, CIP) produce prices that should exactly equal a valuation but differ
#: by solver round-off; the paper's CVXPY implementation has the same issue.
PRICE_TOLERANCE = 1e-9


@dataclass(frozen=True)
class RevenueReport:
    """Outcome of offering a pricing function to the instance's buyers."""

    revenue: float
    num_sold: int
    num_edges: int
    prices: np.ndarray
    sold: np.ndarray  # boolean mask over edges

    @property
    def sell_through(self) -> float:
        """Fraction of buyers who purchased."""
        if self.num_edges == 0:
            return 0.0
        return self.num_sold / self.num_edges

    def normalized(self, reference: float) -> float:
        """Revenue normalized by a reference bound (e.g. sum of valuations)."""
        if reference <= 0:
            return 0.0
        return self.revenue / reference


def compute_revenue(
    pricing: PricingFunction,
    instance: PricingInstance,
    tolerance: float = PRICE_TOLERANCE,
) -> RevenueReport:
    """Evaluate ``pricing`` against every buyer of ``instance``."""
    prices = pricing.price_edges(instance.edges)
    valuations = instance.valuations
    # p <= v with relative tolerance: p <= v * (1 + tol) + tol.
    sold = prices <= valuations * (1.0 + tolerance) + tolerance
    revenue = float(prices[sold].sum())
    return RevenueReport(
        revenue=revenue,
        num_sold=int(sold.sum()),
        num_edges=instance.num_edges,
        prices=prices,
        sold=sold,
    )


def revenue_of_item_weights(
    weights: np.ndarray,
    instance: PricingInstance,
    tolerance: float = PRICE_TOLERANCE,
) -> float:
    """Fast path: revenue of an additive pricing given as a weight vector."""
    prices = np.array(
        [sum(weights[item] for item in edge) for edge in instance.edges]
    )
    sold = prices <= instance.valuations * (1.0 + tolerance) + tolerance
    return float(prices[sold].sum())
