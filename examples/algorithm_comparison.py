"""Algorithm shoot-out across valuation distributions (Figures 5-7 in brief).

Builds one hypergraph from the TPC-H workload and sweeps the paper's
valuation families, printing the normalized-revenue table each figure plots.
Shows the paper's headline: worst-case-optimal CIP is *not* the best
empirically; LPIP is.

Run:  python examples/algorithm_comparison.py      (a few minutes)
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms import default_algorithm_suite
from repro.core.bounds import subadditive_upper_bound
from repro.experiments.report import format_series_table
from repro.valuations import (
    AdditiveValuations,
    ExponentialScaledValuations,
    UniformValuations,
    ZipfValuations,
)
from repro.workloads.tpch import tpch_workload


def main() -> None:
    workload = tpch_workload(scale=0.4)
    support = workload.support(size=500, seed=0, cells_per_instance=2)
    hypergraph = workload.hypergraph(support)
    stats = hypergraph.stats()
    print(
        f"TPC-H hypergraph: m={stats.num_edges}, n={stats.num_items}, "
        f"B={stats.max_degree}, avg |e|={stats.avg_edge_size:.1f}, "
        f"empty edges={stats.num_empty_edges}\n"
    )

    models = [
        ("uniform[1,100]", UniformValuations(100)),
        ("zipf(a=1.75)", ZipfValuations(1.75)),
        ("exp(|e|^1)", ExponentialScaledValuations(1.0)),
        ("additive(k=100)", AdditiveValuations(100, assigner="uniform")),
    ]
    algorithms = default_algorithm_suite(lpip_max_programs=60, cip_epsilon=0.5)

    series: dict[str, list[float]] = {}
    parameters: list[str] = []
    wins: dict[str, int] = {}
    for label, model in models:
        instance = model.instance(hypergraph, rng=np.random.default_rng(7))
        total = instance.total_valuation()
        bound = subadditive_upper_bound(instance)
        parameters.append(label)
        series.setdefault("subadditive bound", []).append(bound / total)
        best_name, best_value = None, -1.0
        for algorithm in algorithms:
            result = algorithm.run(instance)
            normalized = result.revenue / total
            series.setdefault(result.algorithm, []).append(normalized)
            if normalized > best_value:
                best_name, best_value = result.algorithm, normalized
        wins[best_name] = wins.get(best_name, 0) + 1

    print(
        format_series_table(
            "valuation model",
            parameters,
            series,
            title="normalized revenue by algorithm and valuation model",
        )
    )
    print("\nwinners per distribution:", wins)
    print(
        "takeaway: LPIP leads in practice even though CIP has the best "
        "worst-case guarantee — matching the paper's Section 7 lessons."
    )


if __name__ == "__main__":
    main()
