"""Valuation distributions: closed forms, survival semantics, reserves."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bayesian import (
    DiscreteValuation,
    EmpiricalValuation,
    ExponentialValuation,
    NormalValuation,
    ParetoValuation,
    UniformValuation,
    has_monotone_hazard_rate,
    myerson_reserve,
    optimal_posted_price,
)
from repro.exceptions import PricingError


class TestUniform:
    def test_closed_form_optimum(self):
        price, revenue = optimal_posted_price(UniformValuation(0.0, 10.0))
        assert price == pytest.approx(5.0)
        assert revenue == pytest.approx(2.5)

    def test_optimum_clamps_to_support(self):
        # Uniform[8, 10]: unconstrained peak 5 lies below the support, so
        # the optimum is the low end (sell always at 8).
        price, revenue = optimal_posted_price(UniformValuation(8.0, 10.0))
        assert price == pytest.approx(8.0)
        assert revenue == pytest.approx(8.0)

    def test_survival_endpoints(self):
        dist = UniformValuation(2.0, 4.0)
        assert dist.survival(0.0) == 1.0
        assert dist.survival(2.0) == 1.0
        assert dist.survival(3.0) == pytest.approx(0.5)
        assert dist.survival(4.0) == 0.0

    def test_rejects_bad_bounds(self):
        with pytest.raises(PricingError):
            UniformValuation(5.0, 5.0)
        with pytest.raises(PricingError):
            UniformValuation(-1.0, 5.0)

    def test_is_mhr(self):
        assert has_monotone_hazard_rate(UniformValuation(0.0, 1.0))

    def test_myerson_reserve_matches_posted_optimum(self):
        reserve = myerson_reserve(UniformValuation(0.0, 1.0))
        assert reserve == pytest.approx(0.5, abs=1e-3)


class TestExponential:
    def test_closed_form_optimum(self):
        price, revenue = optimal_posted_price(ExponentialValuation(3.0))
        assert price == pytest.approx(3.0)
        assert revenue == pytest.approx(3.0 / math.e)

    def test_survival(self):
        dist = ExponentialValuation(2.0)
        assert dist.survival(0.0) == 1.0
        assert dist.survival(2.0) == pytest.approx(math.exp(-1))

    def test_is_mhr(self):
        # Constant hazard rate — the boundary case of MHR.
        assert has_monotone_hazard_rate(ExponentialValuation(1.0))

    def test_myerson_reserve(self):
        assert myerson_reserve(ExponentialValuation(2.0)) == pytest.approx(
            2.0, rel=1e-3
        )


class TestPareto:
    def test_optimum_at_minimum(self):
        price, revenue = optimal_posted_price(ParetoValuation(2.0, 5.0))
        assert price == pytest.approx(5.0)
        assert revenue == pytest.approx(5.0)

    def test_rejects_infinite_revenue_shapes(self):
        with pytest.raises(PricingError):
            ParetoValuation(1.0, 5.0)
        with pytest.raises(PricingError):
            ParetoValuation(2.0, 0.0)

    def test_mean(self):
        assert ParetoValuation(3.0, 6.0).mean() == pytest.approx(9.0)

    def test_heavy_tail_is_not_mhr(self):
        # Pareto hazard rate decreases — the canonical non-MHR example.
        assert not has_monotone_hazard_rate(ParetoValuation(2.0, 1.0))


class TestNormal:
    def test_survival_is_normal_tail_when_mostly_positive(self):
        dist = NormalValuation(10.0, 1.0)
        assert dist.survival(10.0) == pytest.approx(0.5, abs=1e-6)
        assert dist.mean() == pytest.approx(10.0, abs=1e-6)

    def test_truncation_raises_mean(self):
        assert NormalValuation(0.0, 1.0).mean() == pytest.approx(
            math.sqrt(2.0 / math.pi), abs=1e-9
        )

    def test_numeric_optimum_is_near_analytic(self):
        # For N(10, 1) the revenue curve peaks just below two sigma above
        # the mean... actually near mu for small sigma/mu; just verify the
        # numeric optimum beats nearby prices.
        dist = NormalValuation(10.0, 1.0)
        price, revenue = optimal_posted_price(dist)
        assert revenue >= dist.revenue(price - 0.05) - 1e-9
        assert revenue >= dist.revenue(price + 0.05) - 1e-9

    def test_sampling_is_non_negative(self):
        dist = NormalValuation(0.5, 2.0)
        draws = dist.sample(np.random.default_rng(0), size=500)
        assert np.all(draws >= 0)

    def test_is_mhr(self):
        assert has_monotone_hazard_rate(NormalValuation(5.0, 2.0))


class TestDiscrete:
    def test_optimum_is_a_support_point(self):
        dist = DiscreteValuation([1.0, 2.0, 10.0], [0.5, 0.3, 0.2])
        price, revenue = optimal_posted_price(dist)
        # Candidates: 1*1=1, 2*0.5=1, 10*0.2=2.
        assert price == pytest.approx(10.0)
        assert revenue == pytest.approx(2.0)

    def test_survival_with_purchase_at_equality(self):
        dist = DiscreteValuation([1.0, 3.0], [0.4, 0.6])
        assert dist.survival(1.0) == pytest.approx(1.0)
        assert dist.survival(1.5) == pytest.approx(0.6)
        assert dist.survival(3.0) == pytest.approx(0.6)
        assert dist.survival(3.1) == 0.0

    def test_validation(self):
        with pytest.raises(PricingError):
            DiscreteValuation([1.0], [0.5])
        with pytest.raises(PricingError):
            DiscreteValuation([1.0, -2.0], [0.5, 0.5])
        with pytest.raises(PricingError):
            DiscreteValuation([], [])

    def test_empirical_is_uniform_over_samples(self):
        dist = EmpiricalValuation([4.0, 1.0, 4.0, 7.0])
        assert dist.mean() == pytest.approx(4.0)
        assert dist.survival(4.0) == pytest.approx(0.75)
        price, revenue = optimal_posted_price(dist)
        assert price == pytest.approx(4.0)
        assert revenue == pytest.approx(3.0)


class TestGenericProperties:
    DISTRIBUTIONS = [
        UniformValuation(1.0, 9.0),
        ExponentialValuation(2.5),
        NormalValuation(4.0, 1.5),
        ParetoValuation(2.5, 1.0),
        DiscreteValuation([1.0, 5.0, 20.0], [0.6, 0.3, 0.1]),
    ]

    @pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=repr)
    def test_survival_is_monotone_decreasing(self, dist):
        grid = np.linspace(0.0, dist.upper_bound(), 64)
        tails = [dist.survival(float(p)) for p in grid]
        assert all(b <= a + 1e-9 for a, b in zip(tails, tails[1:]))
        assert tails[0] == pytest.approx(1.0)

    @pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=repr)
    def test_optimal_revenue_below_mean(self, dist):
        # p * P(v >= p) <= E[v] for non-negative v (Markov's inequality).
        _, revenue = optimal_posted_price(dist)
        assert revenue <= dist.mean() + 1e-9

    @pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=repr)
    def test_optimum_beats_grid(self, dist):
        _, revenue = optimal_posted_price(dist)
        for price in np.linspace(0.0, dist.upper_bound(), 97):
            assert revenue >= dist.revenue(float(price)) - 1e-6 * (1 + revenue)

    @pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=repr)
    def test_sample_mean_approaches_mean(self, dist):
        draws = np.asarray(dist.sample(np.random.default_rng(42), size=20000))
        assert float(draws.mean()) == pytest.approx(
            dist.mean(), rel=0.1
        )

    @pytest.mark.parametrize("dist", DISTRIBUTIONS, ids=repr)
    def test_negative_price_rejected(self, dist):
        with pytest.raises(PricingError):
            dist.revenue(-1.0)

    @given(
        low=st.floats(0, 10, allow_nan=False),
        width=st.floats(0.1, 10, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_uniform_optimum_closed_form_matches_numeric(self, low, width):
        dist = UniformValuation(low, low + width)
        price, revenue = dist.optimal_price()
        # Numeric scan confirms the closed form.
        grid = np.linspace(low, low + width, 501)
        best_grid = max(dist.revenue(float(p)) for p in grid)
        assert revenue >= best_grid - 1e-6 * (1 + best_grid)
