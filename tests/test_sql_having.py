"""HAVING clause: parsing, planning, and end-to-end evaluation."""

from __future__ import annotations

import pytest

from repro.db.sql.ast import AggregateCall
from repro.db.sql.parser import parse_select
from repro.exceptions import QueryError, SQLSyntaxError, UnsupportedSQLError


@pytest.fixture
def run(mini_db):
    """Execute SQL against the shared mini database, returning row tuples."""

    def _run(sql: str):
        from repro.db.query import sql_query

        return sql_query(sql, mini_db).run(mini_db).rows

    return _run


class TestParsing:
    def test_having_with_aggregate_call(self):
        statement = parse_select(
            "select Continent, count(*) from Country "
            "group by Continent having count(*) > 1"
        )
        assert statement.having is not None
        call = statement.having.left
        assert isinstance(call, AggregateCall)
        assert call.func == "count"
        assert call.arg is None

    def test_having_with_alias_reference(self):
        statement = parse_select(
            "select Continent, count(*) as c from Country "
            "group by Continent having c > 1"
        )
        assert statement.having is not None

    def test_having_before_order_by(self):
        statement = parse_select(
            "select Continent, count(*) as c from Country "
            "group by Continent having c > 1 order by c desc limit 2"
        )
        assert statement.having is not None
        assert len(statement.order_by) == 1
        assert statement.limit == 2

    def test_aggregate_still_rejected_in_where(self):
        with pytest.raises(UnsupportedSQLError, match="SELECT list or HAVING"):
            parse_select("select Name from Country where count(*) > 1")

    def test_having_supports_boolean_combinations(self):
        statement = parse_select(
            "select Continent, count(*) from Country group by Continent "
            "having count(*) > 1 and max(Population) < 100 or min(Population) > 5"
        )
        assert statement.having is not None


class TestExecution:
    def test_filters_groups_by_count(self, run):
        rows = run(
            "select Continent, count(*) from Country "
            "group by Continent having count(*) > 1"
        )
        # mini_db: Europe has GRC + FRA; the other continents have one each.
        assert rows == [("Europe", 2)]

    def test_having_on_alias(self, run):
        rows = run(
            "select Continent, count(*) as c from Country "
            "group by Continent having c > 1"
        )
        assert rows == [("Europe", 2)]

    def test_having_aggregate_not_in_select_list(self, run):
        # max(Population) is computed only for the filter; the output keeps
        # exactly the SELECT list shape.
        rows = run(
            "select Continent from Country "
            "group by Continent having max(Population) > 500000000"
        )
        assert rows == [("Asia",)]
        assert all(len(row) == 1 for row in rows)

    def test_having_on_group_key(self, run):
        rows = run(
            "select Continent, count(*) from Country "
            "group by Continent having Continent = 'Europe'"
        )
        assert rows == [("Europe", 2)]

    def test_having_with_scalar_aggregate_no_group_by(self, run):
        # A global aggregate forms one group; HAVING filters it in or out.
        assert run("select count(*) from Country having count(*) >= 4") == [(4,)]
        assert run("select count(*) from Country having count(*) > 4") == []

    def test_having_reuses_matching_select_aggregate(self, mini_db):
        # The plan should not compute count(*) twice when HAVING repeats it.
        from repro.db.plan import Aggregate
        from repro.db.query import sql_query

        query = sql_query(
            "select Continent, count(*) from Country "
            "group by Continent having count(*) > 1",
            mini_db,
        )
        aggregate_nodes = [
            node for node in _walk(query.plan) if isinstance(node, Aggregate)
        ]
        assert len(aggregate_nodes) == 1
        assert len(aggregate_nodes[0].aggregates) == 1

    def test_having_combined_with_order_and_limit(self, run):
        rows = run(
            "select Continent, count(*) as c from Country "
            "group by Continent having c >= 1 order by c desc limit 2"
        )
        assert rows[0] == ("Europe", 2)
        assert len(rows) == 2

    def test_having_over_join(self, run):
        rows = run(
            "select Country.Continent, count(*) as c "
            "from Country, City where Code = CountryCode "
            "group by Country.Continent having c > 1"
        )
        assert rows == [("Europe", 2)]


class TestErrors:
    def test_having_without_group_or_aggregates(self, run):
        with pytest.raises(UnsupportedSQLError, match="HAVING requires"):
            run("select Name from Country having Name = 'Greece'")

    def test_having_on_ungrouped_column(self, run):
        with pytest.raises(QueryError, match="HAVING reference"):
            run(
                "select Continent, count(*) from Country "
                "group by Continent having Name = 'Greece'"
            )

    def test_having_needs_predicate(self):
        with pytest.raises(SQLSyntaxError):
            parse_select(
                "select Continent, count(*) from Country "
                "group by Continent having"
            )


def _walk(node):
    yield node
    for child in node.children():
        yield from _walk(child)
