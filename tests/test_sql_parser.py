"""Unit tests for the SQL parser (AST construction only)."""

import pytest

from repro.db.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.db.sql.ast import SelectAggregate, SelectColumn, SelectStar
from repro.db.sql.parser import parse_select
from repro.exceptions import SQLSyntaxError, UnsupportedSQLError


class TestSelectList:
    def test_star(self):
        statement = parse_select("select * from T")
        assert isinstance(statement.items[0], SelectStar)

    def test_qualified_star(self):
        statement = parse_select("select C.* from Country C")
        assert statement.items[0].qualifier == "C"

    def test_column_item(self):
        statement = parse_select("select Name from T")
        item = statement.items[0]
        assert isinstance(item, SelectColumn)
        assert item.expr == ColumnRef("Name")

    def test_qualified_column(self):
        statement = parse_select("select C.Name from T C")
        assert statement.items[0].expr == ColumnRef("Name", "C")

    def test_alias_with_as(self):
        statement = parse_select("select Name as n from T")
        assert statement.items[0].alias == "n"

    def test_bare_alias(self):
        statement = parse_select("select Name n from T")
        assert statement.items[0].alias == "n"

    def test_multiple_items(self):
        statement = parse_select("select a, b, c from T")
        assert len(statement.items) == 3

    def test_literal_item(self):
        statement = parse_select("select 1 from T")
        assert statement.items[0].expr == Literal(1)

    def test_aggregate_count_star(self):
        statement = parse_select("select count(*) from T")
        item = statement.items[0]
        assert isinstance(item, SelectAggregate)
        assert item.func == "count" and item.arg is None

    def test_aggregate_with_column(self):
        item = parse_select("select max(Population) from T").items[0]
        assert item.func == "max"
        assert item.arg == ColumnRef("Population")

    def test_aggregate_distinct(self):
        item = parse_select("select count(distinct Continent) from T").items[0]
        assert item.distinct

    def test_aggregate_expression_argument(self):
        item = parse_select("select sum(a * b) from T").items[0]
        assert isinstance(item.arg, Arithmetic)

    def test_aggregate_distinct_star_rejected(self):
        with pytest.raises(UnsupportedSQLError):
            parse_select("select count(distinct *) from T")

    def test_nested_aggregate_rejected(self):
        with pytest.raises(UnsupportedSQLError):
            parse_select("select a from T where max(b) > 1")


class TestFromClause:
    def test_single_table(self):
        statement = parse_select("select * from Country")
        assert statement.tables[0].table == "Country"

    def test_alias(self):
        statement = parse_select("select * from Country C")
        assert statement.tables[0].alias == "C"

    def test_as_alias(self):
        statement = parse_select("select * from Country as C")
        assert statement.tables[0].alias == "C"

    def test_comma_join(self):
        statement = parse_select("select * from A, B, C")
        assert [t.table for t in statement.tables] == ["A", "B", "C"]


class TestWhereClause:
    def test_comparison(self):
        statement = parse_select("select * from T where a = 1")
        assert statement.where == Comparison("=", ColumnRef("a"), Literal(1))

    def test_and_or_precedence(self):
        statement = parse_select("select * from T where a=1 or b=2 and c=3")
        assert isinstance(statement.where, Or)
        assert isinstance(statement.where.right, And)

    def test_parenthesized_predicate(self):
        statement = parse_select("select * from T where (a=1 or b=2) and c=3")
        assert isinstance(statement.where, And)
        assert isinstance(statement.where.left, Or)

    def test_not(self):
        statement = parse_select("select * from T where not a = 1")
        assert isinstance(statement.where, Not)

    def test_between(self):
        statement = parse_select("select * from T where a between 1 and 5")
        assert statement.where == Between(ColumnRef("a"), Literal(1), Literal(5))

    def test_between_binds_tighter_than_and(self):
        statement = parse_select("select * from T where a between 1 and 5 and b = 2")
        assert isinstance(statement.where, And)
        assert isinstance(statement.where.left, Between)

    def test_like(self):
        statement = parse_select("select * from T where name like 'A%'")
        assert statement.where == Like(ColumnRef("name"), "A%")

    def test_not_like(self):
        statement = parse_select("select * from T where name not like 'A%'")
        assert statement.where == Like(ColumnRef("name"), "A%", negated=True)

    def test_like_requires_string(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("select * from T where a like 5")

    def test_in_list(self):
        statement = parse_select("select * from T where a in (1, 2, 3)")
        assert statement.where == InList(ColumnRef("a"), (1, 2, 3))

    def test_in_list_strings(self):
        statement = parse_select("select * from T where a in ('x', 'y')")
        assert statement.where.values == ("x", "y")

    def test_not_in(self):
        statement = parse_select("select * from T where a not in (1)")
        assert statement.where.negated

    def test_is_null(self):
        statement = parse_select("select * from T where a is null")
        assert statement.where == IsNull(ColumnRef("a"))

    def test_is_not_null(self):
        statement = parse_select("select * from T where a is not null")
        assert statement.where == IsNull(ColumnRef("a"), negated=True)

    def test_arithmetic_in_predicate(self):
        statement = parse_select("select * from T where a * 2 > b + 1")
        assert isinstance(statement.where, Comparison)
        assert isinstance(statement.where.left, Arithmetic)

    def test_negative_literal(self):
        statement = parse_select("select * from T where a > -5")
        bound = statement.where.right
        assert isinstance(bound, Arithmetic)

    def test_qualified_comparison(self):
        statement = parse_select("select * from A x, B y where x.k = y.k")
        assert statement.where == Comparison(
            "=", ColumnRef("k", "x"), ColumnRef("k", "y")
        )


class TestClauses:
    def test_group_by(self):
        statement = parse_select("select a, count(*) from T group by a")
        assert statement.group_by == [ColumnRef("a")]

    def test_group_by_multiple(self):
        statement = parse_select("select a, b, count(*) from T group by a, b")
        assert len(statement.group_by) == 2

    def test_order_by_default_ascending(self):
        statement = parse_select("select a from T order by a")
        assert statement.order_by[0].ascending

    def test_order_by_desc(self):
        statement = parse_select("select a from T order by a desc")
        assert not statement.order_by[0].ascending

    def test_limit(self):
        assert parse_select("select a from T limit 5").limit == 5

    def test_limit_requires_number(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("select a from T limit x")

    def test_distinct_flag(self):
        assert parse_select("select distinct a from T").distinct

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError, match="trailing"):
            parse_select("select a from T alias 123")

    def test_missing_from_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse_select("select a")

    def test_has_aggregates_property(self):
        assert parse_select("select count(*) from T").has_aggregates
        assert not parse_select("select a from T").has_aggregates
