"""Randomized differential testing of the incremental conflict checker.

Random databases x random (generated) queries x random patches — the
incremental decision must equal the definition ``Q(D') != Q(D)`` whenever it
decides. This complements the hand-picked cases in test_incremental.py with
breadth: hundreds of (query, patch) combinations per run, all seeded.
"""

import numpy as np
import pytest

from repro.db.query import sql_query
from repro.db.testing import random_query_text, random_star_database
from repro.qirana.incremental import build_incremental_checker
from repro.support.generator import NeighborSampler


def make_db(rng: np.random.Generator, rows: int = 25):
    return random_star_database(rng, fact_rows=rows)


@pytest.mark.parametrize("seed", range(6))
def test_random_differential(seed):
    rng = np.random.default_rng(seed)
    db = make_db(rng)
    sampler = NeighborSampler(
        db, rng=np.random.default_rng(seed + 100), cells_per_instance=1
    )
    support = sampler.generate(40)

    for _ in range(8):
        sql = random_query_text(rng)
        query = sql_query(sql, db)
        checker = build_incremental_checker(query, db)
        assert checker is not None, sql
        baseline = query.run(db)
        for instance in support:
            decision = checker(instance)
            if decision is None:
                continue
            truth = query.run(instance.materialize(db)) != baseline
            assert decision == truth, (sql, instance.deltas)


@pytest.mark.parametrize("seed", range(3))
def test_random_differential_multicell(seed):
    rng = np.random.default_rng(seed + 50)
    db = make_db(rng)
    sampler = NeighborSampler(
        db, rng=np.random.default_rng(seed + 200), cells_per_instance=3
    )
    support = sampler.generate(25)

    for _ in range(6):
        sql = random_query_text(rng)
        query = sql_query(sql, db)
        checker = build_incremental_checker(query, db)
        baseline = query.run(db)
        for instance in support:
            decision = checker(instance)
            if decision is None:
                continue
            truth = query.run(instance.materialize(db)) != baseline
            assert decision == truth, (sql, instance.deltas)
