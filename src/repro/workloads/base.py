"""Workload container and instance-building helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.db.database import Database
from repro.db.query import Query
from repro.qirana.conflict import ConflictSetEngine
from repro.support.generator import NeighborSampler, SupportSet
from repro.valuations.base import ValuationModel


@dataclass
class Workload:
    """A database plus the buyers' queries.

    ``default_support_size`` is the laptop-scale default used by benchmarks;
    the paper's sizes (15,000 for world, 100,000 for TPC-H/SSB) are reachable
    by passing an explicit size, they just take correspondingly longer in a
    pure-Python engine.
    """

    name: str
    database: Database
    queries: list[Query]
    description: str = ""
    default_support_size: int = 1000
    #: (id(support), backend) -> (support, hypergraph). The support object is
    #: pinned in the value so its id() cannot be recycled for a different
    #: support set after garbage collection.
    _hypergraph_cache: dict[tuple[int, str], tuple[SupportSet, Hypergraph]] = field(
        default_factory=dict, repr=False, compare=False
    )

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def support(
        self,
        size: int | None = None,
        seed: int = 0,
        cells_per_instance: int = 1,
        mode: str = "row",
    ) -> SupportSet:
        """Sample a support set for this workload's database.

        ``mode="row"`` (default) perturbs one row per instance, which is how
        Qirana's neighboring databases behave and what reproduces the
        paper's hypergraph densities; ``mode="cell"`` perturbs
        ``cells_per_instance`` individual cells.
        """
        size = size if size is not None else self.default_support_size
        sampler = NeighborSampler(
            self.database,
            rng=np.random.default_rng(seed),
            cells_per_instance=cells_per_instance,
            mode=mode,
        )
        return sampler.generate(size)

    def hypergraph(self, support: SupportSet, backend: str = "auto") -> Hypergraph:
        """Conflict-set hypergraph of all queries over ``support``.

        ``backend`` names a registered conflict backend; every backend
        produces identical hyperedges, so the cache is keyed by (support,
        backend) only to keep per-backend timing experiments honest. Cached
        per support identity (the conflict computation dominates experiment
        time, and every figure reuses the same hypergraph with different
        valuation models — as the paper does).
        """
        key = (id(support), backend.lower())
        cached = self._hypergraph_cache.get(key)
        if cached is None:
            hypergraph = ConflictSetEngine(support, backend=backend).build_hypergraph(
                self.queries
            )
            # Bound the cache (FIFO): each pinned SupportSet retains its
            # materialization caches, so a long sweep must not hoard them.
            while len(self._hypergraph_cache) >= 8:
                self._hypergraph_cache.pop(next(iter(self._hypergraph_cache)))
            self._hypergraph_cache[key] = cached = (support, hypergraph)
        return cached[1]


def build_support(
    database: Database,
    size: int,
    seed: int = 0,
    cells_per_instance: int = 1,
) -> SupportSet:
    """Sample a support set of ``size`` neighbors of ``database``."""
    sampler = NeighborSampler(
        database,
        rng=np.random.default_rng(seed),
        cells_per_instance=cells_per_instance,
    )
    return sampler.generate(size)


def build_workload_instance(
    workload: Workload,
    valuation_model: ValuationModel,
    support_size: int | None = None,
    support_seed: int = 0,
    valuation_seed: int = 1,
) -> tuple[PricingInstance, SupportSet]:
    """End-to-end: support sampling, conflict sets, valuations.

    Returns the priced instance and the support set used to build it.
    """
    support = workload.support(size=support_size, seed=support_seed)
    hypergraph = workload.hypergraph(support)
    instance = valuation_model.instance(
        hypergraph,
        rng=np.random.default_rng(valuation_seed),
        name=f"{workload.name}/{valuation_model.name}",
    )
    return instance, support
