"""Unit tests for plan operators and aggregate functions."""

import pytest

from repro.db.aggregates import compute_aggregate, is_aggregate_name
from repro.db.expr import ColumnRef, Comparison, Literal
from repro.db.plan import (
    Aggregate,
    AggregateSpec,
    CrossJoin,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    Project,
    ProjectItem,
    Sort,
    SortKey,
    TableScan,
    run_plan,
)
from repro.exceptions import QueryError


class TestAggregateFunctions:
    def test_count_star(self):
        assert compute_aggregate("count", [1, None, 2], count_star=True) == 3

    def test_count_skips_nulls(self):
        assert compute_aggregate("count", [1, None, 2]) == 2

    def test_count_distinct(self):
        assert compute_aggregate("count", [1, 1, 2, None], distinct=True) == 2

    def test_sum(self):
        assert compute_aggregate("sum", [1, 2, 3]) == 6

    def test_sum_empty_is_null(self):
        assert compute_aggregate("sum", []) is None
        assert compute_aggregate("sum", [None]) is None

    def test_avg(self):
        assert compute_aggregate("avg", [1, 2, 3, None]) == 2.0

    def test_min_max(self):
        assert compute_aggregate("min", [3, 1, 2]) == 1
        assert compute_aggregate("max", [3, 1, 2]) == 3

    def test_unknown_aggregate(self):
        with pytest.raises(QueryError):
            compute_aggregate("median", [1])

    def test_is_aggregate_name(self):
        assert is_aggregate_name("COUNT")
        assert not is_aggregate_name("median")


class TestScanFilterProject:
    def test_scan_rows(self, mini_db):
        rows = TableScan("Country").execute(mini_db)
        assert len(rows) == 4

    def test_scan_scope_uses_alias(self, mini_db):
        scope = TableScan("Country", "C").output_scope(mini_db)
        assert scope.resolve("c", "code") == 0

    def test_filter(self, mini_db):
        plan = Filter(
            TableScan("Country"),
            Comparison("=", ColumnRef("Continent"), Literal("Europe")),
        )
        assert len(plan.execute(mini_db)) == 2

    def test_project(self, mini_db):
        plan = Project(TableScan("Country"), [ProjectItem(ColumnRef("Name"), "Name")])
        result = run_plan(plan, mini_db)
        assert result.columns == ["Name"]
        assert ("Greece",) in result.rows


class TestJoins:
    def test_hash_join_matches(self, mini_db):
        join = HashJoin(
            TableScan("Country", "C"),
            TableScan("City", "T"),
            [ColumnRef("Code", "C")],
            [ColumnRef("CountryCode", "T")],
        )
        rows = join.execute(mini_db)
        assert len(rows) == 4  # every city matches its country

    def test_hash_join_null_keys_never_match(self, mini_db):
        patched = mini_db.with_table_replaced(
            mini_db.table("City").with_cell_replaced(0, "CountryCode", None)
        )
        join = HashJoin(
            TableScan("Country", "C"),
            TableScan("City", "T"),
            [ColumnRef("Code", "C")],
            [ColumnRef("CountryCode", "T")],
        )
        assert len(join.execute(patched)) == 3

    def test_hash_join_requires_keys(self, mini_db):
        join = HashJoin(TableScan("Country"), TableScan("City"), [], [])
        with pytest.raises(QueryError):
            join.execute(mini_db)

    def test_cross_join_size(self, mini_db):
        cross = CrossJoin(TableScan("Country"), TableScan("City"))
        assert len(cross.execute(mini_db)) == 16


class TestAggregatePlan:
    def test_group_by(self, mini_db):
        plan = Aggregate(
            TableScan("Country"),
            [ProjectItem(ColumnRef("Continent"), "Continent")],
            [AggregateSpec("count", ColumnRef("Code"), "n")],
        )
        rows = dict(plan.execute(mini_db))
        assert rows["Europe"] == 2
        assert rows["Asia"] == 1

    def test_scalar_aggregate_on_empty_input(self, mini_db):
        plan = Aggregate(
            Filter(
                TableScan("Country"),
                Comparison("=", ColumnRef("Continent"), Literal("Atlantis")),
            ),
            [],
            [AggregateSpec("count", None, "n")],
        )
        assert plan.execute(mini_db) == [(0,)]

    def test_count_star_spec(self, mini_db):
        plan = Aggregate(TableScan("City"), [], [AggregateSpec("count", None, "n")])
        assert plan.execute(mini_db) == [(4,)]

    def test_non_count_star_rejected(self, mini_db):
        plan = Aggregate(TableScan("City"), [], [AggregateSpec("sum", None, "s")])
        with pytest.raises(QueryError):
            plan.execute(mini_db)


class TestDistinctSortLimit:
    def test_distinct(self, mini_db):
        plan = Distinct(
            Project(TableScan("Country"), [ProjectItem(ColumnRef("Continent"), "c")])
        )
        assert len(plan.execute(mini_db)) == 3

    def test_sort_ascending(self, mini_db):
        plan = Sort(
            Project(TableScan("Country"), [ProjectItem(ColumnRef("Population"), "p")]),
            [SortKey(ColumnRef("p"))],
        )
        values = [row[0] for row in plan.execute(mini_db)]
        assert values == sorted(values)

    def test_sort_descending(self, mini_db):
        plan = Sort(
            Project(TableScan("Country"), [ProjectItem(ColumnRef("Population"), "p")]),
            [SortKey(ColumnRef("p"), ascending=False)],
        )
        values = [row[0] for row in plan.execute(mini_db)]
        assert values == sorted(values, reverse=True)

    def test_limit(self, mini_db):
        plan = Limit(TableScan("Country"), 2)
        assert len(plan.execute(mini_db)) == 2

    def test_limit_negative_rejected(self, mini_db):
        with pytest.raises(QueryError):
            Limit(TableScan("Country"), -1).execute(mini_db)

    def test_referenced_tables(self, mini_db):
        join = HashJoin(
            TableScan("Country", "C"),
            TableScan("City", "T"),
            [ColumnRef("Code", "C")],
            [ColumnRef("CountryCode", "T")],
        )
        assert join.referenced_tables() == {"country", "city"}
