"""Tests for the structural instance analysis (containment caps)."""

import numpy as np
import pytest

from repro.core.analysis import (
    containment_stats,
    frontier_cap,
    lpip_structural_bound,
    subset_relation,
)
from repro.core.hypergraph import Hypergraph, PricingInstance


@pytest.fixture
def nested():
    """Umbrella {0,1,2,3} over disjoint singletons, plus an unrelated edge."""
    edges = [{0}, {1}, {2}, {0, 1, 2, 3}, {4}]
    return Hypergraph(5, edges)


class TestSubsetRelation:
    def test_finds_strict_subsets(self, nested):
        children = subset_relation(nested)
        assert sorted(children[3]) == [0, 1, 2]

    def test_no_self_or_equal(self):
        hypergraph = Hypergraph(2, [{0, 1}, {0, 1}])
        assert subset_relation(hypergraph) == {}

    def test_empty_edges_excluded(self):
        hypergraph = Hypergraph(2, [set(), {0, 1}])
        assert subset_relation(hypergraph) == {}

    def test_chain(self):
        hypergraph = Hypergraph(3, [{0}, {0, 1}, {0, 1, 2}])
        children = subset_relation(hypergraph)
        assert sorted(children[2]) == [0, 1]
        assert children[1] == [0]


class TestContainmentStats:
    def test_counts(self, nested):
        stats = containment_stats(nested)
        assert stats.num_subset_pairs == 3
        assert stats.num_umbrella_edges == 1
        assert stats.max_children == 3
        assert stats.nesting_ratio == pytest.approx(3 / 5)

    def test_flat_instance(self):
        stats = containment_stats(Hypergraph(4, [{0}, {1}, {2}, {3}]))
        assert stats.num_subset_pairs == 0
        assert stats.nesting_ratio == 0.0


class TestFrontierCap:
    def test_cheap_umbrella_caps_disjoint_subs(self, nested):
        # Singletons valued 10 each, umbrella valued 5, unrelated valued 10.
        instance = PricingInstance(nested, [10.0, 10.0, 10.0, 5.0, 10.0])
        cap = frontier_cap(instance, threshold=1.0)
        # Selling all: subs jointly capped at 1 * v_umbrella = 5;
        # umbrella itself 5; unrelated 10 -> 20 total (vs naive 45).
        assert cap == pytest.approx(5.0 + 5.0 + 10.0)

    def test_threshold_above_umbrella_uncaps(self, nested):
        instance = PricingInstance(nested, [10.0, 10.0, 10.0, 5.0, 10.0])
        cap = frontier_cap(instance, threshold=6.0)
        # Umbrella out of the frontier: singletons + unrelated all full.
        assert cap == pytest.approx(40.0)

    def test_overlapping_subs_use_multiplicity(self):
        # Two identical singletons under one umbrella: multiplicity 2.
        hypergraph = Hypergraph(2, [{0}, {0}, {0, 1}])
        instance = PricingInstance(hypergraph, [10.0, 10.0, 3.0])
        cap = frontier_cap(instance, threshold=1.0)
        # subs capped at 2 * 3 = 6, umbrella 3 -> 9.
        assert cap == pytest.approx(9.0)

    def test_empty_frontier(self, nested):
        instance = PricingInstance(nested, [1.0] * 5)
        assert frontier_cap(instance, threshold=99.0) == 0.0


class TestStructuralBound:
    def test_picks_best_threshold(self, nested):
        instance = PricingInstance(nested, [10.0, 10.0, 10.0, 5.0, 10.0])
        # threshold 6 gives 40 (umbrella excluded), threshold 1 gives 20.
        assert lpip_structural_bound(instance) == pytest.approx(40.0)

    def test_bound_dominates_lpip_frontier_revenue(self):
        # On the cap construction, realized LPIP revenue stays within the
        # structural bound + uncapped cheap edges.
        from repro.core.algorithms import LPIP

        edges = [{i} for i in range(8)] + [set(range(8))]
        rng = np.random.default_rng(0)
        valuations = np.concatenate([rng.uniform(5, 10, 8), [2.0]])
        instance = PricingInstance(Hypergraph(8, edges), valuations)
        bound = lpip_structural_bound(instance)
        result = LPIP().run(instance)
        # All singleton value is reachable by excluding the umbrella.
        assert bound >= valuations[:8].sum() - 1e-9
        assert result.revenue <= instance.total_valuation() + 1e-9

    def test_flat_instance_bound_is_total(self):
        hypergraph = Hypergraph(3, [{0}, {1}, {2}])
        instance = PricingInstance(hypergraph, [3.0, 4.0, 5.0])
        assert lpip_structural_bound(instance) == pytest.approx(12.0)
