"""Unit tests for the online posted-price learning extension."""

import numpy as np
import pytest

from repro.exceptions import PricingError
from repro.online import (
    BuyerStream,
    EpsilonGreedyPolicy,
    Exp3Policy,
    FixedPricePolicy,
    PriceWalkPolicy,
    UCBPolicy,
    simulate,
)
from repro.online.env import OnlineMarketEnv
from repro.online.policies import geometric_grid
from repro.online.simulate import best_fixed_price_revenue
from repro.workloads.synthetic import random_instance


@pytest.fixture
def instance():
    return random_instance(40, 25, valuation_high=80.0, rng=1)


class TestGrid:
    def test_geometric_coverage(self):
        grid = geometric_grid(1.0, 100.0, ratio=2.0)
        assert grid[0] == 1.0
        assert grid[-1] >= 100.0

    def test_invalid_parameters(self):
        with pytest.raises(PricingError):
            geometric_grid(0.0, 10.0)
        with pytest.raises(PricingError):
            geometric_grid(1.0, 10.0, ratio=1.0)
        with pytest.raises(PricingError):
            geometric_grid(10.0, 1.0)


class TestStream:
    def test_deterministic(self, instance):
        a = [arrival.edge_index for arrival in BuyerStream(instance, 50, rng=3)]
        b = [arrival.edge_index for arrival in BuyerStream(instance, 50, rng=3)]
        assert a == b

    def test_valuations_match_instance(self, instance):
        for arrival in BuyerStream(instance, 30, rng=4):
            assert arrival.valuation == instance.valuations[arrival.edge_index]

    def test_weighted_arrivals(self, instance):
        weights = np.zeros(instance.num_edges)
        weights[7] = 1.0
        stream = BuyerStream(instance, 20, rng=5, weights=weights)
        assert all(arrival.edge_index == 7 for arrival in stream)

    def test_invalid_weights(self, instance):
        with pytest.raises(PricingError):
            BuyerStream(instance, 10, weights=np.zeros(instance.num_edges))

    def test_invalid_horizon(self, instance):
        with pytest.raises(PricingError):
            BuyerStream(instance, 0)


class TestEnv:
    def test_accept_iff_price_at_most_valuation(self, instance):
        stream = BuyerStream(instance, 1, rng=6)
        env = OnlineMarketEnv(stream)
        arrival = next(iter(stream))
        assert env.play(arrival, arrival.valuation) is True
        assert env.play(arrival, arrival.valuation + 1e-6) is False
        assert env.revenue == pytest.approx(arrival.valuation)


class TestPolicies:
    @pytest.mark.parametrize(
        "policy_factory",
        [
            lambda grid: EpsilonGreedyPolicy(grid, rng=0),
            lambda grid: UCBPolicy(grid, rng=0),
            lambda grid: Exp3Policy(grid, rng=0),
            lambda grid: PriceWalkPolicy(grid, rng=0),
        ],
    )
    def test_policy_learns_something(self, instance, policy_factory):
        grid = geometric_grid(1.0, 80.0, ratio=1.3)
        result = simulate(BuyerStream(instance, 3000, rng=7), policy_factory(grid))
        # Learned revenue should beat always-posting-the-max-price.
        worst = simulate(
            BuyerStream(instance, 3000, rng=7),
            FixedPricePolicy(float(grid[-1])),
        )
        assert result.revenue > worst.revenue

    def test_ucb_approaches_best_fixed(self, instance):
        grid = geometric_grid(1.0, 80.0, ratio=1.2)
        result = simulate(BuyerStream(instance, 8000, rng=8), UCBPolicy(grid, rng=8))
        assert result.competitive_ratio > 0.5

    def test_fixed_policy_revenue_matches_oracle(self, instance):
        price, expected = best_fixed_price_revenue(BuyerStream(instance, 5000, rng=9))
        result = simulate(
            BuyerStream(instance, 5000, rng=9), FixedPricePolicy(price)
        )
        # Sampled revenue concentrates near the expectation.
        assert result.revenue == pytest.approx(expected, rel=0.15)

    def test_regret_definition(self, instance):
        result = simulate(
            BuyerStream(instance, 500, rng=10),
            FixedPricePolicy(1.0),
        )
        assert result.regret == pytest.approx(
            result.best_fixed_revenue - result.revenue
        )

    def test_revenue_curve_monotone(self, instance):
        result = simulate(
            BuyerStream(instance, 300, rng=11),
            EpsilonGreedyPolicy(geometric_grid(1, 80), rng=11),
        )
        assert np.all(np.diff(result.revenue_curve) >= -1e-9)

    def test_invalid_policy_parameters(self):
        grid = geometric_grid(1, 10)
        with pytest.raises(PricingError):
            EpsilonGreedyPolicy(grid, epsilon=2.0)
        with pytest.raises(PricingError):
            Exp3Policy(grid, gamma=0.0)
