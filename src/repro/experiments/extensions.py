"""Config-driven experiments for the extension layers.

Companions to :mod:`repro.experiments.figures`, but for the experiments
*beyond* the paper: the new heuristics, the limited-supply market, and the
Bayesian/SAA setting. Each returns a :class:`FigureData` so the CLI and
benchmarks render them through the same machinery as the paper's artifacts.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bayesian import (
    BayesianInstance,
    ExpectedRevenueUBP,
    ExponentialValuation,
    UniformValuation,
    average_realized_revenue,
    saa_uniform_bundle_price,
)
from repro.core.algorithms import (
    CoordinateAscent,
    GeometricGridItemPricing,
    Layering,
    LPIP,
    UBP,
    UIP,
)
from repro.core.hypergraph import PricingInstance
from repro.experiments.figures import FigureData, workload_hypergraph
from repro.experiments.report import format_table
from repro.limited import (
    LimitedCIP,
    LimitedSupplyInstance,
    LimitedUniformPricing,
    fractional_max_welfare,
)
from repro.valuations import UniformValuations


def _uniform_instance(
    workload_name: str,
    scale: float | None,
    support_size: int | None,
    valuation_k: float,
    seed: int,
) -> PricingInstance:
    _, _, hypergraph = workload_hypergraph(workload_name, scale, support_size)
    model = UniformValuations(valuation_k)
    return model.instance(hypergraph, rng=np.random.default_rng(seed))


def extension_heuristics(
    workload_name: str = "skewed",
    scale: float | None = None,
    support_size: int | None = None,
    valuation_k: float = 100.0,
    seed: int = 1,
) -> FigureData:
    """Coordinate ascent / geometric grid vs the paper's fast algorithms."""
    instance = _uniform_instance(workload_name, scale, support_size, valuation_k, seed)
    total = instance.total_valuation()
    rows = []
    for label, algorithm in (
        ("uip", UIP()),
        ("grid-uip(r=2)", GeometricGridItemPricing(ratio=2.0)),
        ("layering", Layering()),
        ("ascent(uip)", CoordinateAscent(seed="uip")),
        ("ascent(layering)", CoordinateAscent(seed=Layering())),
        ("lpip", LPIP(max_programs=60)),
    ):
        start = time.perf_counter()
        result = algorithm.run(instance)
        elapsed = time.perf_counter() - start
        rows.append((label, result.revenue / total, elapsed))
    text = format_table(
        ["algorithm", "normalized revenue", "seconds"], rows
    )
    return FigureData(
        figure_id=f"ext-heuristics-{workload_name}",
        title="new heuristics vs fast paper algorithms (ours)",
        text=text,
        data={"rows": rows, "total_valuation": total},
    )


def extension_limited_capacity(
    workload_name: str = "skewed",
    scale: float | None = None,
    support_size: int | None = None,
    capacities: tuple[int, ...] = (1, 2, 4, 8, 16),
    valuation_k: float = 100.0,
    seed: int = 1,
) -> FigureData:
    """Revenue vs per-item capacity: scarcity rents under exclusivity."""
    instance = _uniform_instance(workload_name, scale, support_size, valuation_k, seed)
    rows = []
    for capacity in capacities:
        market = LimitedSupplyInstance.uniform(instance, capacity)
        welfare = fractional_max_welfare(market).welfare
        cip = LimitedCIP(scale_range=10).run(market)
        uip = LimitedUniformPricing().run(market)
        rows.append((capacity, welfare, cip.revenue, uip.revenue,
                     cip.report.num_served))
    text = format_table(
        ["capacity", "welfare LP", "limited-CIP", "limited-UIP", "CIP sold"],
        rows,
    )
    return FigureData(
        figure_id=f"ext-limited-{workload_name}",
        title="limited-supply capacity sweep (ours)",
        text=text,
        data={"rows": rows},
    )


def _default_distributions(hypergraph) -> list:
    """Size-correlated distributions mirroring the scaled-valuation model."""
    distributions = []
    for edge in hypergraph.edges:
        size = len(edge)
        if size <= 10:
            distributions.append(UniformValuation(1.0, 4.0 + size))
        else:
            distributions.append(ExponentialValuation(float(size) ** 0.75))
    return distributions


def extension_bayesian_saa(
    workload_name: str = "skewed",
    scale: float | None = None,
    support_size: int | None = None,
    sample_sizes: tuple[int, ...] = (1, 4, 16, 64, 256),
    num_seeds: int = 3,
    hindsight_rounds: int = 20,
) -> FigureData:
    """SAA sample-efficiency plus the ex-ante vs hindsight comparison."""
    _, _, hypergraph = workload_hypergraph(workload_name, scale, support_size)
    instance = BayesianInstance(
        hypergraph,
        _default_distributions(hypergraph),
        name=f"{workload_name}-bayesian",
    )
    _, ev_optimal = ExpectedRevenueUBP().run(instance)
    rows = []
    for num_samples in sample_sizes:
        fractions = [
            saa_uniform_bundle_price(
                instance, num_samples, rng=1000 * seed + num_samples
            ).true_expected_revenue
            / ev_optimal
            for seed in range(num_seeds)
        ]
        rows.append((num_samples, float(np.mean(fractions))))
    hindsight = average_realized_revenue(
        UBP(), instance, num_rounds=hindsight_rounds, rng=0
    )
    text = format_table(["N sampled profiles", "fraction of EV-optimal"], rows)
    text += (
        f"\nEV-optimal flat fee: {ev_optimal:.1f}; "
        f"hindsight UBP: {hindsight:.1f} "
        f"(ex-ante captures {ev_optimal / hindsight:.1%})"
    )
    return FigureData(
        figure_id=f"ext-saa-{workload_name}",
        title="Bayesian SAA sample-efficiency (ours)",
        text=text,
        data={
            "rows": rows,
            "ev_optimal": ev_optimal,
            "hindsight": hindsight,
        },
    )
