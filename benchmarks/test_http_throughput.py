"""Over-the-wire serving benchmark: the HTTP front-end vs in-process.

The claim: putting a real socket, HTTP/1.1 framing, JSON, and the
event-loop -> thread-pool bridge in front of the pricing tier keeps a
meaningful fraction of in-process throughput — **wire retention** — while
prices stay bit-equal to the in-process oracle (asserted inside the
figure). The tracked ratio lands in ``BENCH_http.json``; absolute req/s is
machine noise, the retention ratio is not, which is what
``repro-pricing bench-check`` gates (legs that cannot open sockets pass
``--allow-missing BENCH_http.json``).

The figure also scrapes and parses ``/metrics`` after the run, so this
benchmark doubles as a load test of the observability surface.
"""

import socket

import pytest

from repro.experiments.figures import http_throughput

from benchmarks.conftest import save_bench_json

#: The lowest acceptable http/in-process throughput ratio. At CI scale the
#: in-process path serves almost entirely from the quote cache (~25k req/s),
#: so loopback HTTP's per-request syscall cost dominates; ~0.12 measured,
#: 0.05 is a conservative floor that still catches a front-end that starts
#: serializing requests or leaking event-loop stalls.
MIN_WIRE_RETENTION = 0.05

CI_KWARGS = {
    "workload_name": "uniform",
    "scale": 0.15,
    "support_size": 250,
    "num_queries": 120,
    "num_requests": 1500,
    "zipf_s": 1.1,
    "num_clients": 8,
}

FULL_KWARGS = {
    "workload_name": "uniform",
    "scale": 0.3,
    "support_size": 600,
    "num_queries": 300,
    "num_requests": 6000,
    "zipf_s": 1.1,
    "num_clients": 8,
}


def _sockets_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
        finally:
            probe.close()
        return True
    except OSError:
        return False


needs_sockets = pytest.mark.skipif(
    not _sockets_available(), reason="cannot bind a loopback socket here"
)


def _check(artifact, num_requests: int) -> None:
    retention = artifact.data["speedups"]["wire_retention"]
    assert retention >= MIN_WIRE_RETENTION, artifact.data["speedups"]
    http_report = artifact.data["diagnostics"]["http"]
    # Every offered request completed over the wire — none errored, none
    # shed, and the latency percentiles cover the full stream.
    assert http_report["errors"] == 0, http_report
    assert http_report["shed"] == 0, http_report
    assert http_report["completed"] == num_requests, http_report
    assert http_report["latency"]["count"] == num_requests, http_report
    # The scrape parsed and the wire-side counters prove cache traffic.
    scraped = artifact.data["diagnostics"]["scraped_counters"]
    assert scraped["repro_quote_cache_hits_total"] > 0, scraped
    assert scraped["repro_http_requests_total"] >= num_requests, scraped


@needs_sockets
def test_http_throughput_uniform(benchmark):
    artifact = benchmark.pedantic(
        http_throughput, kwargs=CI_KWARGS, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_bench_json(artifact, "BENCH_http.json")
    _check(artifact, CI_KWARGS["num_requests"])


@needs_sockets
@pytest.mark.slow
def test_http_throughput_uniform_full(benchmark):
    """Laptop-scale variant, part of the workflow_dispatch --runslow job."""
    artifact = benchmark.pedantic(
        http_throughput, kwargs=FULL_KWARGS, rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_bench_json(artifact, "BENCH_http_full.json")
    _check(artifact, FULL_KWARGS["num_requests"])
