"""Unit tests for PricingService: caching, batching, sessions, persistence."""

import pytest

from repro.core.pricing import ItemPricing
from repro.exceptions import PricingError, ServiceError
from repro.qirana.broker import QueryMarket
from repro.qirana.weighted import uniform_calibrated_pricing
from repro.service import PricingService

QUERIES = [
    "select Name from Country",
    "select avg(Population) from Country",
    "select Name from City where Population > 1000000",
    "select Continent, count(*) from Country group by Continent",
]


@pytest.fixture
def market(mini_support):
    market = QueryMarket(mini_support)
    market.set_pricing(uniform_calibrated_pricing(mini_support, 100.0))
    return market


@pytest.fixture
def service(market):
    with PricingService(market, max_batch_delay=0.0005) as service:
        yield service


@pytest.fixture
def sync_service(mini_support):
    """Single-threaded service (no scheduler): deterministic counters."""
    market = QueryMarket(mini_support)
    market.set_pricing(uniform_calibrated_pricing(mini_support, 100.0))
    return PricingService(market, start=False)


class TestQuoting:
    def test_prices_match_the_plain_market(self, service, mini_support):
        oracle = QueryMarket(mini_support)
        oracle.set_pricing(uniform_calibrated_pricing(mini_support, 100.0))
        for sql in QUERIES:
            served = service.quote(sql)
            expected = oracle.quote(sql)
            assert served.price == expected.price
            assert served.bundle == expected.bundle
            assert served.query_text == sql

    def test_repeat_text_hits_the_cache(self, sync_service):
        sync_service.quote(QUERIES[0])
        sync_service.quote(QUERIES[0])
        stats = sync_service.stats()
        assert stats.quotes.hits == 1
        assert stats.quotes.misses == 1

    def test_textual_variants_share_one_entry(self, sync_service):
        # The acceptance bar: whitespace/alias variants of one query are
        # cache hits, not fresh conflict computations.
        cold = sync_service.quote("select Name from Country where Population > 1000")
        variants = [
            "SELECT Name  FROM Country\nWHERE Population > 1000",
            "select c.Name from Country as c where c.Population > 1000",
            "select Name from Country c where 1000 < c.Population",
        ]
        for variant in variants:
            quote = sync_service.quote(variant)
            assert quote.price == cold.price
            assert quote.bundle == cold.bundle
            assert quote.query_text == variant
        stats = sync_service.stats()
        assert stats.quotes.hits == len(variants)
        assert stats.quotes.misses == 1
        assert stats.batches == 1  # one micro-batch computed the one miss

    def test_quote_many_mixes_hits_and_misses(self, sync_service):
        sync_service.quote(QUERIES[0])
        quotes = sync_service.quote_many(QUERIES)
        assert [quote.query_text for quote in quotes] == QUERIES
        stats = sync_service.stats()
        assert stats.quotes.hits == 1
        assert stats.quotes.misses == len(QUERIES)

    def test_unpriced_market_raises_through_the_batcher(self, mini_support):
        with PricingService(QueryMarket(mini_support)) as service:
            with pytest.raises(PricingError, match="no pricing installed"):
                service.quote(QUERIES[0])

    def test_closed_service_rejects_quotes(self, market):
        service = PricingService(market)
        service.close()
        with pytest.raises(ServiceError, match="closed"):
            service.quote(QUERIES[0])

    def test_close_is_idempotent(self, market):
        service = PricingService(market)
        service.close()
        service.close()


class TestPricingInstalls:
    def test_install_reprices_cached_quotes_in_place(
        self, sync_service, mini_support
    ):
        before = sync_service.quote(QUERIES[0])
        doubled = ItemPricing(
            uniform_calibrated_pricing(mini_support, 100.0).weights * 2.0
        )
        sync_service.install_pricing(doubled)
        after = sync_service.quote(QUERIES[0])
        assert after.price == pytest.approx(2.0 * before.price)
        # An install changes prices, not conflict sets: the cached entry is
        # re-priced under the new pricing rather than dropped, so the second
        # quote is a warm hit at the new price.
        stats = sync_service.stats().quotes
        assert stats.stale_drops == 0
        assert stats.hits == 1

    def test_optimize_pricing_runs_and_invalidates(self, mini_support):
        from repro.core.algorithms import get_algorithm

        service = PricingService(QueryMarket(mini_support), start=False)
        result = service.optimize_pricing(
            QUERIES[:2], [30.0, 10.0], get_algorithm("lpip")
        )
        assert service.pricing is result.pricing
        assert service.quote(QUERIES[0]).price >= 0.0


class TestPurchases:
    def test_purchase_records_transaction(self, sync_service):
        answer, quote = sync_service.purchase(QUERIES[0], buyer="alice")
        assert answer is not None
        assert len(sync_service.transactions) == 1
        assert sync_service.transactions[0].price == quote.price

    def test_budget_buyer_walks_away(self, sync_service):
        answer, quote = sync_service.purchase(
            QUERIES[0], buyer="alice", valuation=quote_below(sync_service)
        )
        assert answer is None
        assert sync_service.transactions == []

    def test_session_marginal_pricing_telescopes(self, sync_service):
        session = sync_service.session("alice")
        first = session.quote(QUERIES[0])
        assert first.marginal_price == first.fresh_price
        session.purchase(QUERIES[0])
        again = session.quote(QUERIES[0])
        assert again.marginal_price == 0.0  # fully owned
        session.purchase(QUERIES[2])
        expected = sync_service.pricing.price(session.holdings)
        assert session.total_paid == pytest.approx(expected)

    def test_session_walks_away_on_marginal_price(self, sync_service):
        session = sync_service.session("bob")
        answer, marginal = session.purchase(QUERIES[0], valuation=-1.0)
        assert answer is None
        assert session.holdings == frozenset()
        assert sync_service.transactions == []

    def test_sessions_are_per_buyer(self, sync_service):
        sync_service.session("alice").purchase(QUERIES[0])
        bob = sync_service.session("bob").quote(QUERIES[0])
        assert bob.marginal_price == bob.fresh_price


def quote_below(service) -> float:
    """A valuation strictly below the query's price (price is > 0 here)."""
    return service.quote(QUERIES[0]).price - 1e-6


class TestSnapshotRestore:
    def test_round_trip_restores_everything(self, sync_service, mini_support, tmp_path):
        session = sync_service.session("alice")
        session.purchase(QUERIES[0])
        session.purchase(QUERIES[2])
        sync_service.purchase(QUERIES[1], buyer="carol")
        path = tmp_path / "service.json"
        sync_service.snapshot(path)

        fresh = PricingService(QueryMarket(mini_support), start=False)
        fresh.restore(path)
        # Prices identical, including marginal prices against restored
        # holdings — a restarted tier must not re-charge returning buyers.
        for sql in QUERIES:
            assert fresh.quote(sql).price == sync_service.quote(sql).price
        restored = fresh.session("alice")
        assert restored.holdings == session.holdings
        assert restored.total_paid == pytest.approx(session.total_paid)
        assert restored.quote(QUERIES[0]).marginal_price == 0.0
        assert [t.buyer for t in fresh.transactions] == [
            t.buyer for t in sync_service.transactions
        ]

    def test_snapshot_without_pricing_raises(self, mini_support, tmp_path):
        service = PricingService(QueryMarket(mini_support), start=False)
        with pytest.raises(PricingError, match="nothing to snapshot"):
            service.snapshot(tmp_path / "nope.json")

    def test_restore_starts_warm(self, sync_service, mini_support, tmp_path):
        """The quote cache is persisted: a restarted tier serves hits only."""
        for sql in QUERIES:
            sync_service.quote(sql)
        path = tmp_path / "service.json"
        sync_service.snapshot(path)

        fresh = PricingService(QueryMarket(mini_support), start=False)
        fresh.restore(path)
        for sql in QUERIES:
            assert fresh.quote(sql).price == sync_service.quote(sql).price
        stats = fresh.stats()
        assert stats.quotes.hits == len(QUERIES)
        assert stats.quotes.misses == 0
        # No miss ever reached the batcher, so no conflict set was computed.
        assert stats.batcher.batches == 0

    def test_failed_restore_leaves_state_untouched(
        self, sync_service, mini_support, tmp_path
    ):
        """Restore is all-or-nothing: a corrupt snapshot changes nothing."""
        from repro.exceptions import SnapshotError

        session = sync_service.session("alice")
        session.purchase(QUERIES[0])
        before_price = sync_service.quote(QUERIES[1]).price
        before_holdings = session.holdings
        before_transactions = len(sync_service.transactions)

        corrupt = tmp_path / "corrupt.json"
        corrupt.write_text('{"pricing": {"family": "quantum"}, "bundles": {}}')
        with pytest.raises(SnapshotError, match=str(corrupt.name)):
            sync_service.restore(corrupt)
        # Pricing, ledger, and cache all still answer exactly as before.
        assert sync_service.quote(QUERIES[1]).price == before_price
        assert sync_service.session("alice").holdings == before_holdings
        assert len(sync_service.transactions) == before_transactions
        assert sync_service.session("alice").quote(QUERIES[0]).marginal_price == 0.0

    def test_restored_quotes_invalidate_on_install(
        self, sync_service, mini_support, tmp_path
    ):
        sync_service.quote(QUERIES[0])
        path = tmp_path / "service.json"
        sync_service.snapshot(path)
        fresh = PricingService(QueryMarket(mini_support), start=False)
        fresh.restore(path)
        fresh.install_pricing(uniform_calibrated_pricing(mini_support, 50.0))
        assert fresh.quote(QUERIES[0]).price == pytest.approx(
            sync_service.quote(QUERIES[0]).price / 2.0
        )


class TestAdmissionControl:
    def test_bounded_queue_sheds(self, mini_support):
        import threading

        from repro.exceptions import ServiceOverloadError

        market = QueryMarket(mini_support)
        market.set_pricing(uniform_calibrated_pricing(mini_support, 100.0))
        service = PricingService(
            market, max_batch_size=1, max_batch_delay=0.0, max_queue_depth=1
        )
        gate = threading.Event()
        original = service._execute

        def gated(batch):
            gate.wait(timeout=5)
            return original(batch)

        service._batcher._execute = gated
        distinct = [
            f"select Name from Country where Population > {bound}"
            for bound in range(100, 108)
        ]
        served, shed = [], []

        def client(sql):
            try:
                served.append(service.quote(sql).price)
            except ServiceOverloadError:
                shed.append(sql)

        threads = [
            threading.Thread(target=client, args=(sql,), daemon=True)
            for sql in distinct
        ]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=0.05)
        finally:
            gate.set()
            for thread in threads:
                thread.join()
            stats = service.stats()
            service.close()
        assert shed and served
        assert len(served) + len(shed) == len(distinct)
        assert stats.shed == len(shed)
        assert stats.accepted == len(served)

    def test_admission_disabled_with_none(self, mini_support):
        service = PricingService(mini_support, max_queue_depth=None, start=False)
        assert service.max_queue_depth is None


class TestValidation:
    def test_bad_batch_size(self, market):
        with pytest.raises(ServiceError, match="max_batch_size"):
            PricingService(market, max_batch_size=0, start=False)

    def test_bad_batch_delay(self, market):
        with pytest.raises(ServiceError, match="max_batch_delay"):
            PricingService(market, max_batch_delay=-0.1, start=False)

    def test_bad_queue_depth(self, market):
        with pytest.raises(ServiceError, match="max_queue_depth"):
            PricingService(market, max_queue_depth=0, start=False)

    def test_support_set_shorthand(self, mini_support):
        service = PricingService(mini_support, start=False)
        assert isinstance(service.market, QueryMarket)
