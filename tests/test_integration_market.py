"""End-to-end integration tests across the whole stack.

Each test exercises the full pipeline the way examples do: database →
support → conflict sets → algorithm → broker → buyers, with invariants
checked at every joint.
"""

import numpy as np
import pytest

from repro.core.algorithms import default_algorithm_suite, get_algorithm
from repro.qirana import (
    HistoryAwareLedger,
    QueryMarket,
    load_market_state,
    save_market_state,
    verify_arbitrage_freeness,
)
from repro.qirana.weighted import uniform_calibrated_pricing
from repro.support.designer import designed_support
from repro.workloads.world import world_workload


@pytest.fixture(scope="module")
def workload():
    return world_workload(scale=0.1, expanded=False)


@pytest.fixture(scope="module")
def market(workload):
    support = workload.support(size=150, seed=0)
    return QueryMarket(support)


@pytest.fixture(scope="module")
def priced_market(workload, market):
    rng = np.random.default_rng(1)
    valuations = rng.uniform(5, 100, size=workload.num_queries)
    market.optimize_pricing(
        workload.queries, valuations, get_algorithm("lpip", max_programs=20)
    )
    return market, valuations


class TestFullPipeline:
    def test_all_algorithms_complete_on_real_workload(self, workload, market):
        rng = np.random.default_rng(2)
        valuations = rng.uniform(5, 100, size=workload.num_queries)
        instance = market.build_instance(workload.queries, valuations)
        for algorithm in default_algorithm_suite(lpip_max_programs=10, cip_epsilon=2.0):
            result = algorithm.run(instance)
            assert 0 <= result.revenue <= instance.total_valuation() + 1e-6

    def test_installed_pricing_is_arbitrage_free(self, priced_market):
        market, _ = priced_market
        violations = verify_arbitrage_freeness(
            market.pricing, len(market.support), trials=200, rng=3
        )
        assert violations == []

    def test_buyers_with_valuations_behave_rationally(self, priced_market, workload):
        market, valuations = priced_market
        sold = walked = 0
        for query, valuation in list(zip(workload.queries, valuations))[:15]:
            answer, quote = market.purchase(
                query, buyer="it", valuation=float(valuation)
            )
            if answer is None:
                walked += 1
                assert quote.price > valuation
            else:
                sold += 1
                assert quote.price <= valuation
        assert sold + walked == 15

    def test_quote_answer_consistency(self, priced_market, workload):
        market, _ = priced_market
        query = workload.queries[0]
        answer, quote = market.purchase(query, buyer="checker")
        assert answer == query.run(market.base)

    def test_history_ledger_on_market_pricing(self, priced_market, workload):
        market, _ = priced_market
        ledger = HistoryAwareLedger(market.pricing)
        bundles = [market.quote(q).bundle for q in workload.queries[:6]]
        for bundle in bundles:
            ledger.record_purchase("eve", bundle)
        assert ledger.cumulative_price_consistent("eve")

    def test_market_state_roundtrip_preserves_quotes(
        self, priced_market, workload, tmp_path
    ):
        market, _ = priced_market
        path = tmp_path / "state.json"
        save_market_state(market.pricing, market._bundle_cache, path)
        state = load_market_state(path)
        fresh = QueryMarket(market.support)
        fresh.set_pricing(state.pricing)
        fresh._bundle_cache.update(state.bundles)
        for query in workload.queries[:8]:
            assert fresh.quote(query).price == pytest.approx(
                market.quote(query).price
            )

    def test_calibrated_baseline_is_dominated(self, priced_market, workload):
        market, valuations = priced_market
        from repro.core.revenue import compute_revenue

        instance = market.build_instance(workload.queries, valuations)
        calibrated = uniform_calibrated_pricing(market.support, 100.0)
        optimized = get_algorithm("lpip", max_programs=20).run(instance)
        assert (
            optimized.revenue
            >= compute_revenue(calibrated, instance).revenue - 1e-9
        )


class TestDesignedSupportMarket:
    def test_market_over_designed_support(self, workload):
        queries = workload.queries[:10]
        report = designed_support(workload.database, queries, rng=4, padding=5)
        market = QueryMarket(report.support)
        rng = np.random.default_rng(5)
        valuations = rng.uniform(10, 50, size=len(queries))
        result = market.optimize_pricing(
            queries, valuations, get_algorithm("layering")
        )
        # Every separated query is sold at its full valuation.
        separated_value = sum(
            valuations[i] for i in report.dedicated_items
        )
        assert result.revenue >= separated_value - 1e-6
