"""Unit tests for the LP modeling layer and scipy backend."""

import numpy as np
import pytest

from repro.exceptions import LPError, LPInfeasibleError, LPUnboundedError
from repro.lp import LinExpr, LPModel, Relation, Sense


class TestLinExpr:
    def test_variable_addition(self):
        model = LPModel()
        x, y = model.add_variables(2)
        expr = x + y
        assert expr.coeffs == {0: 1.0, 1: 1.0}

    def test_scalar_multiplication(self):
        model = LPModel()
        x = model.add_variable()
        assert (3 * x).coeffs == {0: 3.0}
        assert (x * 0.5).coeffs == {0: 0.5}

    def test_subtraction_and_negation(self):
        model = LPModel()
        x, y = model.add_variables(2)
        expr = x - y
        assert expr.coeffs == {0: 1.0, 1: -1.0}
        assert (-x).coeffs == {0: -1.0}

    def test_constants_fold(self):
        model = LPModel()
        x = model.add_variable()
        expr = x + 5 - 2
        assert expr.constant == 3.0

    def test_sum_of_linear_in_terms(self):
        model = LPModel()
        xs = model.add_variables(100)
        expr = LinExpr.sum_of(xs)
        assert len(expr.coeffs) == 100

    def test_sum_of_merges_duplicates(self):
        model = LPModel()
        x = model.add_variable()
        expr = LinExpr.sum_of([x, x, x])
        assert expr.coeffs == {0: 3.0}

    def test_weighted_sum(self):
        model = LPModel()
        x, y = model.add_variables(2)
        expr = LinExpr.weighted_sum([(x, 2.0), (y, -1.0)])
        assert expr.coeffs == {0: 2.0, 1: -1.0}

    def test_evaluate(self):
        model = LPModel()
        x, y = model.add_variables(2)
        assert (2 * x + y + 1).evaluate({0: 3.0, 1: 4.0}) == 11.0

    def test_type_errors(self):
        model = LPModel()
        x = model.add_variable()
        with pytest.raises(TypeError):
            x + "str"
        with pytest.raises(TypeError):
            (x + x) * (x + x)


class TestModel:
    def test_duplicate_constraint_name_rejected(self):
        model = LPModel()
        x = model.add_variable()
        model.add_constraint(x <= 1, name="c")
        with pytest.raises(LPError, match="duplicate"):
            model.add_constraint(x <= 2, name="c")

    def test_counts(self):
        model = LPModel()
        x = model.add_variable()
        model.add_constraint(x <= 1)
        assert model.num_variables == 1
        assert model.num_constraints == 1


class TestSolver:
    def test_simple_maximization(self):
        model = LPModel(sense=Sense.MAXIMIZE)
        x = model.add_variable(upper=4.0)
        y = model.add_variable(upper=3.0)
        model.add_constraint(x + y <= 5.0)
        model.set_objective(x + 2 * y)
        solution = model.solve()
        assert solution.objective == pytest.approx(8.0)
        assert solution.value(x) == pytest.approx(2.0)
        assert solution.value(y) == pytest.approx(3.0)

    def test_simple_minimization(self):
        model = LPModel(sense=Sense.MINIMIZE)
        x = model.add_variable(lower=1.0)
        model.set_objective(x)
        assert model.solve().objective == pytest.approx(1.0)

    def test_equality_constraint(self):
        model = LPModel(sense=Sense.MAXIMIZE)
        x, y = model.add_variables(2)
        model.add_constraint((x + y).equals(4.0))
        model.add_constraint(x <= 1.0)
        model.set_objective(x)
        solution = model.solve()
        assert solution.value(x) == pytest.approx(1.0)
        assert solution.value(y) == pytest.approx(3.0)

    def test_ge_constraint(self):
        model = LPModel(sense=Sense.MINIMIZE)
        x = model.add_variable()
        model.add_constraint(x >= 7.0)
        model.set_objective(x)
        assert model.solve().objective == pytest.approx(7.0)

    def test_infeasible(self):
        model = LPModel()
        x = model.add_variable()
        model.add_constraint(x <= -1.0)  # x >= 0 by default bound
        model.set_objective(x)
        with pytest.raises(LPInfeasibleError):
            model.solve()

    def test_unbounded(self):
        model = LPModel(sense=Sense.MAXIMIZE)
        x = model.add_variable()
        model.set_objective(x)
        with pytest.raises(LPUnboundedError):
            model.solve()

    def test_objective_constant_included(self):
        model = LPModel(sense=Sense.MAXIMIZE)
        x = model.add_variable(upper=1.0)
        model.set_objective(x + 10)
        assert model.solve().objective == pytest.approx(11.0)

    def test_duals_of_binding_le_constraint(self):
        # max x + y st x + y <= 5 (binding): shadow price of the constraint
        # equals the objective gain per unit of slack = 1.
        model = LPModel(sense=Sense.MAXIMIZE)
        x, y = model.add_variables(2)
        model.add_constraint(x + y <= 5.0, name="cap")
        model.set_objective(x + y)
        solution = model.solve()
        assert solution.dual("cap") == pytest.approx(1.0)

    def test_duals_of_slack_constraint_zero(self):
        model = LPModel(sense=Sense.MAXIMIZE)
        x = model.add_variable(upper=1.0)
        model.add_constraint(x <= 100.0, name="loose")
        model.set_objective(x)
        solution = model.solve()
        assert solution.dual("loose") == pytest.approx(0.0)

    def test_duals_capacity_pricing_semantics(self):
        # Knapsack-relaxation: two "buyers" compete for one capacity unit;
        # the dual is the market-clearing item price (CIP's core mechanism).
        model = LPModel(sense=Sense.MAXIMIZE)
        x1 = model.add_variable(upper=1.0)
        x2 = model.add_variable(upper=1.0)
        model.add_constraint(x1 + x2 <= 1.0, name="item")
        model.set_objective(10 * x1 + 4 * x2)
        solution = model.solve()
        assert solution.value(x1) == pytest.approx(1.0)
        # Relaxing capacity by 1 admits the second buyer: dual = 4.
        assert solution.dual("item") == pytest.approx(4.0)

    def test_dual_by_index(self):
        model = LPModel(sense=Sense.MAXIMIZE)
        x = model.add_variable()
        model.add_constraint(x <= 2.0)
        model.set_objective(x)
        solution = model.solve()
        assert solution.dual_by_index(0) == pytest.approx(1.0)

    def test_stats_populated(self):
        model = LPModel(sense=Sense.MAXIMIZE)
        x = model.add_variable(upper=1.0)
        model.set_objective(x)
        solution = model.solve()
        assert solution.stats.status == "optimal"
        assert solution.stats.num_variables == 1


class TestConstraintBlocks:
    """Bulk CSR constraint blocks and the from_arrays constructor."""

    def test_from_arrays_matches_expression_model(self):
        # max 2x0 + x1 + x2  s.t.  x0+x1 <= 4, x1+x2 <= 3, x0 <= 2.5, x >= 0
        model = LPModel.from_arrays(
            num_variables=3,
            objective=np.array([2.0, 1.0, 1.0]),
            indptr=np.array([0, 2, 4, 5]),
            indices=np.array([0, 1, 1, 2, 0]),
            rhs=np.array([4.0, 3.0, 2.5]),
        )
        expected = LPModel(sense=Sense.MAXIMIZE)
        x = expected.add_variables(3)
        expected.add_constraint(x[0] + x[1] <= 4.0)
        expected.add_constraint(x[1] + x[2] <= 3.0)
        expected.add_constraint(LinExpr.of(x[0]) <= 2.5)
        expected.set_objective(2 * x[0] + x[1] + x[2])
        assert model.num_constraints == 3
        assert model.solve().objective == pytest.approx(expected.solve().objective)

    def test_block_with_data_coefficients(self):
        # max x0 + x1  s.t.  2 x0 + 3 x1 <= 6
        model = LPModel.from_arrays(
            num_variables=2,
            objective=np.array([1.0, 1.0]),
            indptr=np.array([0, 2]),
            indices=np.array([0, 1]),
            rhs=np.array([6.0]),
            data=np.array([2.0, 3.0]),
        )
        assert model.solve().objective == pytest.approx(3.0)

    def test_block_duals_by_name_and_index(self):
        # Two buyers, one capacity unit: dual = displaced value (cf. CIP).
        model = LPModel.from_arrays(
            num_variables=2,
            objective=np.array([10.0, 4.0]),
            indptr=np.array([0, 2]),
            indices=np.array([0, 1]),
            rhs=np.array([1.0]),
            upper=1.0,
            names=["item"],
        )
        solution = model.solve()
        assert solution.dual("item") == pytest.approx(4.0)
        assert solution.dual_by_index(0) == pytest.approx(4.0)

    def test_scalar_constraints_and_blocks_compose(self):
        model = LPModel(sense=Sense.MAXIMIZE)
        x = model.add_variables(2)
        model.add_constraint(x[0] + x[1] <= 5.0, name="cap")
        model.add_constraint_block(
            indptr=np.array([0, 1]),
            indices=np.array([0]),
            rhs=np.array([2.0]),
            names=["solo"],
        )
        model.set_objective(x[0] + x[1])
        assert model.num_constraints == 2
        solution = model.solve()
        assert solution.objective == pytest.approx(5.0)
        # Block rows are numbered after the scalar constraints.
        assert solution.dual("cap") == pytest.approx(1.0)
        assert solution.dual("solo") == pytest.approx(0.0)

    def test_ge_block_relation(self):
        model = LPModel.from_arrays(
            num_variables=1,
            objective=np.array([1.0]),
            indptr=np.array([0, 1]),
            indices=np.array([0]),
            rhs=np.array([7.0]),
            sense=Sense.MINIMIZE,
            relation=Relation.GE,
        )
        assert model.solve().objective == pytest.approx(7.0)

    def test_block_validation_errors(self):
        model = LPModel()
        model.add_variables(2)
        with pytest.raises(LPError, match="indptr"):
            model.add_constraint_block(
                indptr=np.array([0, 1, 2]),
                indices=np.array([0, 1]),
                rhs=np.array([1.0]),
            )
        with pytest.raises(LPError, match="out of range"):
            model.add_constraint_block(
                indptr=np.array([0, 1]),
                indices=np.array([5]),
                rhs=np.array([1.0]),
            )
        with pytest.raises(LPError, match="names"):
            model.add_constraint_block(
                indptr=np.array([0, 1]),
                indices=np.array([0]),
                rhs=np.array([1.0]),
                names=["a", "b"],
            )
        model.add_constraint_block(
            indptr=np.array([0, 1]),
            indices=np.array([0]),
            rhs=np.array([1.0]),
            names=["dup"],
        )
        with pytest.raises(LPError, match="duplicate"):
            model.add_constraint_block(
                indptr=np.array([0, 1]),
                indices=np.array([0]),
                rhs=np.array([1.0]),
                names=["dup"],
            )
