"""Equivalence tests: incremental conflict checks vs full re-evaluation.

The incremental checker must return *exactly* ``Q(D') != Q(D)`` whenever it
decides. These tests sweep query shapes x hand-crafted and sampled patches.
"""

import numpy as np
import pytest

from repro.db.query import sql_query
from repro.qirana.incremental import build_incremental_checker
from repro.support.generator import NeighborSampler

QUERIES = [
    # Shape A: selection / projection
    "select * from Country",
    "select Name from Country",
    "select Name from Country where Continent = 'Europe'",
    "select Name, Population from Country where Population > 50000000",
    "select Name from Country where Name like 'F%'",
    "select * from City where Population between 1000000 and 9000000",
    # Shape A + Sort
    "select Name from Country order by Name",
    # Shape B: aggregates
    "select count(*) from Country",
    "select count(Name) from Country where Continent = 'Asia'",
    "select count(distinct Continent) from Country",
    "select avg(Population) from Country",
    "select min(LifeExpectancy) from Country",
    "select max(Population) from Country where Continent = 'Europe'",
    "select Continent, count(Code) from Country group by Continent",
    "select Continent, sum(Population), avg(LifeExpectancy) from Country group by Continent",
    "select CountryCode, count(ID) from City group by CountryCode",
    # Joins
    "select Name, Language from Country , CountryLanguage where Code = CountryCode",
    "select Name from Country , CountryLanguage where Code = CountryCode and Language = 'Greek'",
    "select C.Name, count(L.Language) from Country C, CountryLanguage L "
    "where C.Code = L.CountryCode group by C.Name",
    "select C.Continent, sum(T.Population) from Country C, City T "
    "where C.Code = T.CountryCode group by C.Continent",
    # Three-way join
    "select C.Name, T.Name, L.Language from Country C, City T, CountryLanguage L "
    "where C.Code = T.CountryCode and C.Code = L.CountryCode",
]

UNSUPPORTED = [
    "select distinct Continent from Country",      # Distinct node
    "select * from Country limit 2",                # Limit node
]


def _all_instances(mini_db, seed=9, size=120, cells=2):
    sampler = NeighborSampler(
        mini_db, rng=np.random.default_rng(seed), cells_per_instance=cells
    )
    return sampler.generate(size)


class TestEquivalence:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_checker_matches_full_eval(self, sql, mini_db):
        query = sql_query(sql, mini_db)
        checker = build_incremental_checker(query, mini_db)
        assert checker is not None, f"expected incremental support for: {sql}"
        support = _all_instances(mini_db)
        baseline = query.run(mini_db)
        for instance in support:
            decision = checker(instance)
            truth = query.run(instance.materialize(mini_db)) != baseline
            if decision is None:
                continue  # checker declined; engine would fall back
            assert decision == truth, (sql, instance.deltas)

    @pytest.mark.parametrize("sql", QUERIES)
    def test_checker_with_single_cell_patches(self, sql, mini_db):
        query = sql_query(sql, mini_db)
        checker = build_incremental_checker(query, mini_db)
        support = _all_instances(mini_db, seed=21, cells=1)
        baseline = query.run(mini_db)
        undecided = 0
        for instance in support:
            decision = checker(instance)
            if decision is None:
                undecided += 1
                continue
            truth = query.run(instance.materialize(mini_db)) != baseline
            assert decision == truth, (sql, instance.deltas)
        # Single-cell patches always touch exactly one table: decidable.
        assert undecided == 0

    @pytest.mark.parametrize("sql", UNSUPPORTED)
    def test_unsupported_shapes_return_none(self, sql, mini_db):
        query = sql_query(sql, mini_db)
        assert build_incremental_checker(query, mini_db) is None

    def test_self_join_unsupported(self, mini_db):
        query = sql_query(
            "select A.Name from Country A, Country B where A.Code = B.Code",
            mini_db,
        )
        assert build_incremental_checker(query, mini_db) is None

    def test_patch_on_both_join_sides_declines(self, mini_db):
        from repro.support.delta import CellDelta, SupportInstance

        query = sql_query(
            "select Name, Language from Country , CountryLanguage "
            "where Code = CountryCode",
            mini_db,
        )
        checker = build_incremental_checker(query, mini_db)
        both = SupportInstance(
            0,
            (
                CellDelta("Country", 0, "Name", "X"),
                CellDelta("CountryLanguage", 0, "Language", "Y"),
            ),
        )
        assert checker(both) is None

    def test_patch_on_unreferenced_table_is_no_conflict(self, mini_db):
        from repro.support.delta import CellDelta, SupportInstance

        query = sql_query("select Name from Country", mini_db)
        checker = build_incremental_checker(query, mini_db)
        patch = SupportInstance(0, (CellDelta("City", 0, "Name", "Z"),))
        assert checker(patch) is False
