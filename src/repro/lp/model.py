"""Declarative LP model: variables, linear expressions, constraints.

This is a deliberately small modeling layer — just enough expressiveness for
the pricing LPs in the paper (LPIP, CIP, the subadditive bound, and the UBP
post-processing refinement). Expressions support ``+``, ``-``, scalar ``*``,
and comparisons ``<=``, ``>=``, ``==`` that produce :class:`Constraint`
objects, mirroring the CVXPY idiom used by the authors.

For the LPs the revenue engine assembles thousands of times (one bundle-price
constraint per hyperedge, one capacity constraint per item), the
expression-per-row idiom is the bottleneck, so the model also accepts
**constraint blocks**: CSR ``(indptr, indices, data)`` triples that flow to
the scipy backend without ever materializing per-row ``LinExpr`` dicts.
:meth:`LPModel.from_arrays` builds a whole model — variables, dense objective
vector, one block — directly from the hypergraph's CSR slices.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import LPError


class Sense(enum.Enum):
    """Optimization direction of an :class:`LPModel`."""

    MINIMIZE = "min"
    MAXIMIZE = "max"


class Relation(enum.Enum):
    """Comparison relation of a :class:`Constraint`."""

    LE = "<="
    GE = ">="
    EQ = "=="


@dataclass(frozen=True)
class Variable:
    """A decision variable.

    Variables are created through :meth:`LPModel.add_variable`; ``index`` is
    the column index assigned by the owning model.
    """

    name: str
    index: int
    lower: float | None = 0.0
    upper: float | None = None

    def __add__(self, other: object) -> "LinExpr":
        return LinExpr.of(self) + other

    def __radd__(self, other: object) -> "LinExpr":
        return LinExpr.of(self) + other

    def __sub__(self, other: object) -> "LinExpr":
        return LinExpr.of(self) - other

    def __rsub__(self, other: object) -> "LinExpr":
        return (-1.0) * LinExpr.of(self) + other

    def __mul__(self, coef: object) -> "LinExpr":
        return LinExpr.of(self) * coef

    def __rmul__(self, coef: object) -> "LinExpr":
        return LinExpr.of(self) * coef

    def __neg__(self) -> "LinExpr":
        return LinExpr.of(self) * -1.0

    def __le__(self, other: object) -> "Constraint":
        return LinExpr.of(self) <= other

    def __ge__(self, other: object) -> "Constraint":
        return LinExpr.of(self) >= other

    # dataclass(frozen=True) already provides __eq__/__hash__ on identity
    # fields; constraint construction uses LinExpr explicitly via `==` on
    # expressions, not on bare variables, to keep hashing intact.


class LinExpr:
    """A linear expression ``sum_j coeffs[j] * x_j + constant``.

    Stored sparsely as a mapping from variable index to coefficient.
    Instances are immutable from the caller's perspective: all operators
    return new expressions.
    """

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: Mapping[int, float] | None = None, constant: float = 0.0):
        self.coeffs: dict[int, float] = dict(coeffs) if coeffs else {}
        self.constant = float(constant)

    @classmethod
    def of(cls, var: Variable, coef: float = 1.0) -> "LinExpr":
        """Expression consisting of a single scaled variable."""
        return cls({var.index: float(coef)})

    @classmethod
    def constant_of(cls, value: float) -> "LinExpr":
        """Expression with no variables."""
        return cls(constant=value)

    @classmethod
    def sum_of(cls, terms: Iterable["Variable | LinExpr"]) -> "LinExpr":
        """Efficient sum of many variables/expressions (avoids O(n^2) adds)."""
        coeffs: dict[int, float] = {}
        constant = 0.0
        for term in terms:
            if isinstance(term, Variable):
                coeffs[term.index] = coeffs.get(term.index, 0.0) + 1.0
            elif isinstance(term, LinExpr):
                constant += term.constant
                for idx, coef in term.coeffs.items():
                    coeffs[idx] = coeffs.get(idx, 0.0) + coef
            else:
                raise TypeError(f"cannot sum term of type {type(term).__name__}")
        return cls(coeffs, constant)

    @classmethod
    def weighted_sum(cls, pairs: Iterable[tuple["Variable", float]]) -> "LinExpr":
        """Expression ``sum coef * var`` from (var, coef) pairs."""
        coeffs: dict[int, float] = {}
        for var, coef in pairs:
            coeffs[var.index] = coeffs.get(var.index, 0.0) + float(coef)
        return cls(coeffs)

    def _coerce(self, other: object) -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return LinExpr.of(other)
        if isinstance(other, (int, float)):
            return LinExpr.constant_of(float(other))
        raise TypeError(f"cannot combine LinExpr with {type(other).__name__}")

    def __add__(self, other: object) -> "LinExpr":
        rhs = self._coerce(other)
        coeffs = dict(self.coeffs)
        for idx, coef in rhs.coeffs.items():
            coeffs[idx] = coeffs.get(idx, 0.0) + coef
        return LinExpr(coeffs, self.constant + rhs.constant)

    __radd__ = __add__

    def __sub__(self, other: object) -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other: object) -> "LinExpr":
        return self._coerce(other) + (self * -1.0)

    def __mul__(self, coef: object) -> "LinExpr":
        if not isinstance(coef, (int, float)):
            raise TypeError("LinExpr supports only scalar multiplication")
        scale = float(coef)
        return LinExpr({i: c * scale for i, c in self.coeffs.items()}, self.constant * scale)

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __le__(self, other: object) -> "Constraint":
        return Constraint(self - self._coerce(other), Relation.LE)

    def __ge__(self, other: object) -> "Constraint":
        return Constraint(self - self._coerce(other), Relation.GE)

    def equals(self, other: object) -> "Constraint":
        """Equality constraint (``==`` is kept for object identity)."""
        return Constraint(self - self._coerce(other), Relation.EQ)

    def evaluate(self, values: Mapping[int, float]) -> float:
        """Value of the expression under an assignment index -> value."""
        return self.constant + sum(coef * values.get(idx, 0.0) for idx, coef in self.coeffs.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = " + ".join(f"{c:g}*x{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms or '0'} + {self.constant:g})"


@dataclass
class Constraint:
    """A constraint ``expr (<=|>=|==) 0`` after moving everything left.

    Created by comparing expressions; named via :meth:`LPModel.add_constraint`.
    """

    expr: LinExpr
    relation: Relation
    name: str | None = None

    def normalized(self) -> tuple[dict[int, float], float]:
        """Return (coeffs, rhs) with the constant moved to the right side."""
        return self.expr.coeffs, -self.expr.constant


@dataclass(frozen=True)
class ConstraintBlock:
    """A bulk block of sparse constraint rows sharing one relation.

    Row ``r`` constrains ``sum(data[k] * x[indices[k]] for k in
    indptr[r]:indptr[r+1])`` against ``rhs[r]``. Blocks are appended to the
    model verbatim and compiled to scipy CSR without per-row dict assembly;
    their rows are numbered after every scalar constraint (for
    ``dual_by_index``) and may carry names for ``dual`` lookup.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    rhs: np.ndarray
    relation: Relation = Relation.LE
    names: tuple[str, ...] | None = None

    @property
    def num_rows(self) -> int:
        return len(self.rhs)


@dataclass
class LPModel:
    """A linear program under construction.

    The model owns its variables and constraints; :meth:`solve` delegates to
    :func:`repro.lp.solver.solve_model`.
    """

    name: str = "lp"
    sense: Sense = Sense.MAXIMIZE
    variables: list[Variable] = field(default_factory=list)
    constraints: list[Constraint] = field(default_factory=list)
    blocks: list[ConstraintBlock] = field(default_factory=list)
    objective: LinExpr = field(default_factory=LinExpr)
    _names: set[str] = field(default_factory=set, repr=False)

    def add_variable(
        self,
        name: str | None = None,
        lower: float | None = 0.0,
        upper: float | None = None,
    ) -> Variable:
        """Create and register a new decision variable.

        Bounds default to ``[0, +inf)`` which is what every pricing LP in the
        paper uses (prices are non-negative).
        """
        index = len(self.variables)
        var = Variable(name or f"x{index}", index, lower, upper)
        self.variables.append(var)
        return var

    def add_variables(self, count: int, prefix: str = "x", lower: float | None = 0.0,
                      upper: float | None = None) -> list[Variable]:
        """Create ``count`` homogeneous variables named ``{prefix}{i}``."""
        return [self.add_variable(f"{prefix}{i}", lower, upper) for i in range(count)]

    def add_constraint(self, constraint: Constraint, name: str | None = None) -> Constraint:
        """Register a constraint, optionally naming it for dual lookup."""
        if name is not None:
            if name in self._names:
                raise LPError(f"duplicate constraint name: {name!r}")
            self._names.add(name)
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def add_constraint_block(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        rhs: np.ndarray,
        data: np.ndarray | None = None,
        relation: Relation = Relation.LE,
        names: Sequence[str] | None = None,
    ) -> ConstraintBlock:
        """Register a CSR block of constraints in one call.

        ``data=None`` means all-ones coefficients (the common
        bundle-price/capacity case). ``names`` (one per row) enables
        :meth:`LPSolution.dual` lookup for block rows.
        """
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        rhs = np.ascontiguousarray(rhs, dtype=np.float64)
        if data is None:
            data = np.ones(len(indices), dtype=np.float64)
        else:
            data = np.ascontiguousarray(data, dtype=np.float64)
        if len(indptr) != len(rhs) + 1:
            raise LPError(
                f"block indptr has {len(indptr)} entries for {len(rhs)} rows"
            )
        if len(data) != len(indices) or int(indptr[-1]) != len(indices):
            raise LPError("block indices/data lengths disagree with indptr")
        if len(indices) and (indices.min() < 0 or indices.max() >= len(self.variables)):
            raise LPError("block column index out of range")
        if names is not None:
            if len(names) != len(rhs):
                raise LPError(f"{len(names)} names for {len(rhs)} block rows")
            for name in names:
                if name in self._names:
                    raise LPError(f"duplicate constraint name: {name!r}")
            self._names.update(names)
            names = tuple(names)
        block = ConstraintBlock(indptr, indices, data, rhs, relation, names)
        self.blocks.append(block)
        return block

    @classmethod
    def from_arrays(
        cls,
        num_variables: int,
        objective: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        rhs: np.ndarray,
        data: np.ndarray | None = None,
        *,
        name: str = "lp",
        sense: Sense = Sense.MAXIMIZE,
        relation: Relation = Relation.LE,
        lower: float | None = 0.0,
        upper: float | None = None,
        variable_prefix: str = "x",
        names: Sequence[str] | None = None,
    ) -> "LPModel":
        """Bulk constructor: homogeneous variables, a dense objective vector,
        and one CSR constraint block.

        This is the scipy-ready shape the vectorized pricing algorithms
        (LPIP, UBP+LP, CIP, limited-CIP) produce straight from the
        hypergraph's CSR slices — no per-row ``LinExpr`` assembly.
        """
        model = cls(name=name, sense=sense)
        model.add_variables(num_variables, prefix=variable_prefix,
                            lower=lower, upper=upper)
        objective = np.asarray(objective, dtype=np.float64)
        if objective.shape != (num_variables,):
            raise LPError(
                f"objective vector has shape {objective.shape}, "
                f"expected ({num_variables},)"
            )
        nonzero = np.flatnonzero(objective)
        model.objective = LinExpr(
            {int(index): float(objective[index]) for index in nonzero}
        )
        model.add_constraint_block(
            indptr, indices, rhs, data, relation=relation, names=names
        )
        return model

    def set_objective(self, expr: LinExpr | Variable) -> None:
        """Set the objective expression (direction comes from ``sense``)."""
        self.objective = LinExpr.of(expr) if isinstance(expr, Variable) else expr

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints) + sum(block.num_rows for block in self.blocks)

    def solve(self, **kwargs) -> "LPSolution":
        """Solve with the default scipy backend. See :func:`solve_model`."""
        from repro.lp.solver import solve_model

        return solve_model(self, **kwargs)
