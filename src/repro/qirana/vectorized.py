"""Vectorized conflict-set backend: batch evaluation over delta tensors.

For the plan shapes that dominate the paper's workloads — selection/projection
queries and (grouped, HAVING-filtered, ordered) aggregates over a single table
or a left-deep tree of equi-joins — whether a support instance changes the
answer is a function of the *patched rows only*:

- **flat** (``[Sort] Project [Filter] <source>``): the answer changes iff the
  keyed multiset of contributions induced by the patched rows changes between
  their old and new versions. Each contribution carries an *order key* — its
  position in the left-major lexicographic enumeration the scalar executor
  uses — so ordered answers are decided exactly whenever positions are
  preserved.
- **aggregates** (``[Sort] Project [Filter(HAVING)] Aggregate([Filter]
  <source>)``): per-instance deltas are applied against precomputed per-group
  base state and the affected groups' visible output rows compared as
  multisets. COUNT is always exact; SUM/AVG are delta-vectorized over INT
  columns (float64 accumulation of integers below 2**53 is exact); MIN/MAX
  are decided by an order-statistic walk over *sorted-group segments* of the
  base values; float SUM/AVG — over single tables *and* joins — are
  recomputed exactly in contribution order-key order, the same order full
  re-execution sums in, so every decision matches the naive oracle bit for
  bit. HAVING is a visibility mask: a group's output row enters the answer
  bag only when the predicate passes over its full aggregate output tuple.
- **joins**: each side has its own
  :class:`~repro.support.tensor.TableDeltaTensor`; a patched side row's
  old/new contributions are found by probing hash indexes through the join
  tree — the prefix index of its level to find left partners, then the right
  indexes of every downstream level (a cascade, for 3-way and deeper trees) —
  and the expanded contribution batches are evaluated columnar. Instances
  patching more than one side are re-executed.

Templates: plans are compiled through a shape-keyed *template cache*
(:class:`~repro.service.cache.TemplateCache`). The fingerprint is the
canonical serialization with literals stripped
(:func:`~repro.service.canonical.template_fingerprint`); compiled evaluators
read literal values through a shared :class:`~repro.db.columnar.LiteralBindings`
vector, so the Nth literal-variant of a template skips shape matching and
batch compilation entirely — binding installs its literal vector and clones
the per-variant state holders. Entries are stamped with the support set's
``data_version`` and invalidate lazily when it changes.

All candidates of a query are decided together: their patched rows are
gathered into old/new columnar batches of the query's referenced cells, and
the plan's expressions are evaluated once per batch via
:func:`~repro.db.columnar.compile_expr`. Queries whose plan shape is not
vectorizable fall back — per query, not per engine — to the incremental
backend, tagging the computation with a *fallback reason*. Plan-shape rules
are shared with the incremental checkers through :mod:`repro.qirana.shapes`.
"""

from __future__ import annotations

import copy
import time
from collections import Counter
from dataclasses import dataclass, replace

import numpy as np

from repro.db.columnar import (
    BatchEvaluator,
    ColumnarBatch,
    ColumnVector,
    LiteralBindings,
    build_key_index,
    compile_expr,
    hash_join_indices,
    key_tuples,
    null_aware_neq,
    truth,
    vector_from_values,
)
from repro.db.database import Database
from repro.db.expr import ColumnRef, Scope
from repro.db.query import Query
from repro.db.schema import ColumnType
from repro.exceptions import QueryError
from repro.qirana.backends import (
    ConflictBackend,
    ConflictComputation,
    IncrementalBackend,
    register_backend,
)
from repro.qirana.shapes import QueryShape, resolve_shape
from repro.support.generator import SupportSet

#: Aggregate kinds decided purely by vectorized delta arithmetic.
_DELTA_KINDS = frozenset({"count_star", "count", "int_sum", "int_avg"})

#: Aggregate kinds recomputed exactly in contribution order per group.
_ORDER_KINDS = frozenset({"float_sum", "float_avg"})

#: Join products larger than this cannot be order-keyed in int64.
_MAX_ORDER_KEY = 2**62


@dataclass
class _AggSpec:
    """One compiled aggregate with its decision strategy (``kind``)."""

    func: str  # count / sum / avg / min / max
    kind: str  # count_star | count | int_sum | int_avg | float_sum | float_avg | minmax
    arg_eval: BatchEvaluator | None  # None encodes COUNT(*)
    compared: bool  # referenced by the projection (changes are visible)


# ---------------------------------------------------------------------------
# Contribution sources
# ---------------------------------------------------------------------------


@dataclass
class _Chunk:
    """One batch of contributions: patched rows expanded through the source.

    ``old_instances``/``new_instances`` give the owning instance id per
    contribution (grouped ascending). For single-table sources old and new
    are position-aligned (contribution == patched pair); join expansion
    produces differently sized sides. ``old_rows``/``new_rows`` carry each
    contribution's *order key* — its position in the left-major lexicographic
    enumeration of the source — which the ordered and float kernels use to
    reason about output positions exactly.
    """

    old_instances: np.ndarray
    old_batch: ColumnarBatch
    old_pass: np.ndarray
    new_instances: np.ndarray
    new_batch: ColumnarBatch
    new_pass: np.ndarray
    old_rows: np.ndarray | None = None
    new_rows: np.ndarray | None = None
    aligned: bool = False  # old/new are position-aligned pair batches


def _gather_pairs(backend, table, scope, needed_slots, tensor, selected_mask, selected, rows):
    """Old/new columnar batches of the referenced cells of selected pairs."""
    base = backend._table_batch(table)
    schema = backend.base.table(table).schema
    num_slots = scope.arity

    old_columns: list[ColumnVector | None] = [None] * num_slots
    new_columns: list[ColumnVector | None] = [None] * num_slots
    for slot in needed_slots:
        old_columns[slot] = base.columns[slot].take(rows)
        new_columns[slot] = old_columns[slot].copy()

    inverse = np.full(tensor.num_pairs, -1, dtype=np.int64)
    inverse[selected] = np.arange(len(selected), dtype=np.int64)
    for column, patches in tensor.column_patches.items():
        slot = schema.column_index(column)
        vector = new_columns[slot]
        if vector is None:
            continue
        applicable = selected_mask[patches.positions]
        if not applicable.any():
            continue
        local = inverse[patches.positions[applicable]]
        values = patches.values[applicable]
        null = np.fromiter(
            (value is None for value in values), dtype=bool, count=len(values)
        )
        if vector.is_numeric:
            vector.values[local] = np.fromiter(
                (np.nan if value is None else float(value) for value in values),
                dtype=np.float64,
                count=len(values),
            )
        else:
            vector.values[local] = values
        vector.null[local] = null

    num = len(selected)
    return (
        ColumnarBatch(scope, old_columns, num),
        ColumnarBatch(scope, new_columns, num),
    )


class _TableSource:
    """Contributions of a one-table plan: the (filtered) rows themselves."""

    is_join = False
    num_sides = 1

    def __init__(self, base: Database, scan, predicate, bindings=None, param_slots=None):
        self.base = base
        self.table = scan.table.lower()
        self.tables = (self.table,)
        self.scope: Scope = scan.output_scope(base)
        self.schema = base.table(scan.table).schema
        self.filter_expr = predicate.predicate if predicate is not None else None
        self.filter_eval = (
            compile_expr(self.filter_expr, self.scope, bindings, param_slots)
            if self.filter_expr
            else None
        )
        self.needed_slots: list[int] = []
        self._base_pass: np.ndarray | None = None

    def clone(self) -> "_TableSource":
        """A shallow copy with fresh per-variant base state."""
        dup = copy.copy(self)
        dup._base_pass = None
        return dup

    def dtype(self, slot: int) -> ColumnType:
        return self.schema.columns[slot].dtype

    def finalize(self) -> None:
        pass

    def base_contributions(self, backend) -> tuple[ColumnarBatch, np.ndarray]:
        batch = backend._table_batch(self.table)
        if self._base_pass is None:
            self._base_pass = (
                truth(self.filter_eval(batch))
                if self.filter_eval
                else np.ones(batch.num_rows, dtype=bool)
            )
        return batch, self._base_pass

    def base_order_keys(self, backend) -> np.ndarray:
        """A contribution's order key is its own base row position."""
        batch, _ = self.base_contributions(backend)
        return np.arange(batch.num_rows, dtype=np.int64)

    def pair_data(self, backend, candidate_array):
        """(tensor, instances, rows, old/new pair batches, old/new pass)."""
        tensor = backend.support.delta_tensor(self.table)
        mask, selected = tensor.select_pairs(candidate_array)
        if len(selected) == 0:
            return None
        instances = tensor.pair_instance[selected]
        rows = tensor.pair_row[selected]
        old_batch, new_batch = _gather_pairs(
            backend, self.table, self.scope, self.needed_slots,
            tensor, mask, selected, rows,
        )
        ones = np.ones(len(selected), dtype=bool)
        old_pass = truth(self.filter_eval(old_batch)) if self.filter_eval else ones
        new_pass = (
            truth(self.filter_eval(new_batch)) if self.filter_eval else ones.copy()
        )
        return tensor, instances, rows, old_batch, new_batch, old_pass, new_pass

    def chunks(self, backend, candidate_array) -> tuple[list[_Chunk], list[int]]:
        data = self.pair_data(backend, candidate_array)
        if data is None:
            return [], []
        _, instances, rows, old_batch, new_batch, old_pass, new_pass = data
        chunk = _Chunk(
            instances, old_batch, old_pass,
            instances, new_batch, new_pass,
            old_rows=rows, new_rows=rows, aligned=True,
        )
        return [chunk], []


class _TreeJoinSource:
    """Contributions of a left-deep equi-join tree (2-way and deeper).

    The base join is enumerated strictly left-major — probe the accumulated
    prefix through each level's right index — which is exactly the order
    ``HashJoin.execute`` produces, so every contribution gets an *order key*
    ``sum(row_s * stride_s)`` that equals its output position rank. A patched
    side row's contributions are found by probing its level's *prefix index*
    for left partners and then cascading through the right indexes of every
    downstream level.
    """

    is_join = True

    def __init__(self, base: Database, shape: QueryShape, bindings=None, param_slots=None):
        sides = (shape.leftmost,) + tuple(level.right for level in shape.levels)
        self.base = base
        self.num_sides = len(sides)
        self.tables = tuple(side.table for side in sides)
        self.side_scopes = tuple(side.scan.output_scope(base) for side in sides)
        self.side_schemas = tuple(base.table(side.table).schema for side in sides)
        self.side_offsets: list[int] = []
        self.prefix_scopes: list[Scope] = []
        offset = 0
        scope: Scope | None = None
        for side_scope in self.side_scopes:
            self.side_offsets.append(offset)
            offset += side_scope.arity
            scope = side_scope if scope is None else scope.concat(side_scope)
            self.prefix_scopes.append(scope)
        self.scope: Scope = scope
        self.side_filter_exprs = tuple(
            side.predicate.predicate if side.predicate is not None else None
            for side in sides
        )
        self.side_filter_evals = tuple(
            compile_expr(expr, side_scope, bindings, param_slots)
            if expr is not None
            else None
            for expr, side_scope in zip(self.side_filter_exprs, self.side_scopes)
        )
        # Per join level i: the prefix of sides 0..i joins side i+1. Left
        # keys compile against the *prefix* scope — its slots are a prefix of
        # the full scope's, so the compiled evaluators work on full-scope
        # batches unchanged.
        self.level_left_exprs: list[list] = []
        self.level_left_evals: list[list[BatchEvaluator]] = []
        self.level_right_exprs: list[list] = []
        self.level_right_evals: list[list[BatchEvaluator]] = []
        self.level_right_slots: list[tuple[int, ...] | None] = []
        for position, level in enumerate(shape.levels):
            join = level.join
            right_scope = self.side_scopes[position + 1]
            self.level_left_exprs.append(list(join.left_keys))
            self.level_left_evals.append([
                compile_expr(key, self.prefix_scopes[position], bindings, param_slots)
                for key in join.left_keys
            ])
            self.level_right_exprs.append(list(join.right_keys))
            self.level_right_evals.append([
                compile_expr(key, right_scope, bindings, param_slots)
                for key in join.right_keys
            ])
            # Column-only right keys resolve to table slots, making the
            # side's key tuples and unfiltered hash index cacheable.
            if all(isinstance(key, ColumnRef) for key in join.right_keys):
                self.level_right_slots.append(tuple(
                    right_scope.resolve(key.qualifier, key.name)
                    for key in join.right_keys
                ))
            else:
                self.level_right_slots.append(None)
        # Level-0 left keys live entirely on the leftmost side, so
        # column-only ones share the per-table key/index cache too.
        self.left_key_slots: tuple[int, ...] | None = None
        if all(isinstance(key, ColumnRef) for key in self.level_left_exprs[0]):
            self.left_key_slots = tuple(
                self.side_scopes[0].resolve(key.qualifier, key.name)
                for key in self.level_left_exprs[0]
            )
        # Per level: left keys as (side, local-slot) pairs when every key is
        # a bare column, else None. All-column levels make the *unfiltered*
        # join enumeration a property of (tables, key slots) alone — shared
        # across every literal variant via the backend's cascade cache.
        self.level_left_slot_keys: list[tuple[tuple[int, int], ...] | None] = []
        for position in range(self.num_sides - 1):
            keys = self.level_left_exprs[position]
            if all(isinstance(key, ColumnRef) for key in keys):
                prefix_scope = self.prefix_scopes[position]
                self.level_left_slot_keys.append(tuple(
                    self._side_of_slot(
                        prefix_scope.resolve(key.qualifier, key.name)
                    )
                    for key in keys
                ))
            else:
                self.level_left_slot_keys.append(None)
        self.cascade_key: tuple | None = None
        if all(pairs is not None for pairs in self.level_left_slot_keys) and all(
            slots is not None for slots in self.level_right_slots
        ):
            self.cascade_key = (
                self.tables,
                tuple(self.level_left_slot_keys),
                tuple(self.level_right_slots),
            )
        self.filter_expr = (
            shape.residual.predicate if shape.residual is not None else None
        )
        self.filter_eval = (
            compile_expr(self.filter_expr, self.scope, bindings, param_slots)
            if self.filter_expr
            else None
        )
        # Order-key strides: stride_s is the product of all downstream table
        # sizes, so keys are unique and lexicographic order == key order.
        strides = [1] * self.num_sides
        for position in range(self.num_sides - 2, -1, -1):
            strides[position] = strides[position + 1] * max(
                1, len(base.table(self.tables[position + 1]))
            )
        total = strides[0] * max(1, len(base.table(self.tables[0])))
        self.overflow = total >= _MAX_ORDER_KEY
        self.strides = (
            None if self.overflow else np.asarray(strides, dtype=np.int64)
        )
        self.needed_slots: list[int] = []  # joined-scope slots, set by compile
        self._side_needed: tuple[list[int], ...] | None = None
        self._level_left_slot_pairs: list[list[tuple[int, int]]] | None = None
        self._gather_slot_pairs: list[tuple[int, int]] | None = None
        self._state: dict | None = None

    def clone(self) -> "_TreeJoinSource":
        """A shallow copy with fresh per-variant join state."""
        dup = copy.copy(self)
        dup._state = None
        return dup

    def _side_of_slot(self, slot: int) -> tuple[int, int]:
        for side in range(self.num_sides - 1, -1, -1):
            if slot >= self.side_offsets[side]:
                return side, slot - self.side_offsets[side]
        raise QueryError(f"slot {slot} outside joined scope")

    def dtype(self, slot: int) -> ColumnType:
        side, local = self._side_of_slot(slot)
        return self.side_schemas[side].columns[local].dtype

    def finalize(self) -> None:
        """Split joined needed slots per side; add key/side-filter slots."""
        side_needed: list[set[int]] = [set() for _ in range(self.num_sides)]
        for slot in self.needed_slots:
            side, local = self._side_of_slot(slot)
            side_needed[side].add(local)
        for side in range(self.num_sides):
            expr = self.side_filter_exprs[side]
            if expr is None:
                continue
            for qualifier, column in expr.referenced_columns():
                side_needed[side].add(
                    self.side_scopes[side].resolve(qualifier, column)
                )
        level_left_slot_pairs: list[list[tuple[int, int]]] = []
        for position in range(self.num_sides - 1):
            pairs: list[tuple[int, int]] = []
            prefix_scope = self.prefix_scopes[position]
            for key in self.level_left_exprs[position]:
                for qualifier, column in key.referenced_columns():
                    side, local = self._side_of_slot(
                        prefix_scope.resolve(qualifier, column)
                    )
                    side_needed[side].add(local)
                    pairs.append((side, local))
            level_left_slot_pairs.append(pairs)
            for key in self.level_right_exprs[position]:
                for qualifier, column in key.referenced_columns():
                    side_needed[position + 1].add(
                        self.side_scopes[position + 1].resolve(qualifier, column)
                    )
        self._side_needed = tuple(sorted(needed) for needed in side_needed)
        self._level_left_slot_pairs = level_left_slot_pairs
        self._gather_slot_pairs = [
            (side, local)
            for side in range(self.num_sides)
            for local in self._side_needed[side]
        ]

    def _rows_batch(
        self, backend, sub_rows, slot_pairs,
        patched_side=-1, side_batch=None, pair_positions=None,
    ) -> ColumnarBatch:
        """Full-scope batch of the join tuples in ``sub_rows``.

        Columns of ``patched_side`` (if any) come from ``side_batch`` at
        ``pair_positions`` — the patched values — every other side's from the
        base table at the tuple's row index. ``sub_rows`` may cover only a
        prefix of the sides as long as ``slot_pairs`` stays within it.
        """
        columns: list[ColumnVector | None] = [None] * self.scope.arity
        for side, local in slot_pairs:
            full = self.side_offsets[side] + local
            if columns[full] is not None:
                continue
            if side == patched_side:
                columns[full] = side_batch.columns[local].take(pair_positions)
            else:
                columns[full] = (
                    backend._table_batch(self.tables[side])
                    .columns[local]
                    .take(sub_rows[:, side])
                )
        return ColumnarBatch(self.scope, columns, len(sub_rows))

    # -- base-side state ----------------------------------------------------

    def _build_cascade(self, backend) -> dict:
        """The *unfiltered* left-major join enumeration and its indexes.

        Pure join structure — base tables, key columns — with no per-query
        filters applied, so every literal variant of a template (and every
        other query over the same join chain) shares one enumeration via
        the backend's cascade cache. Only built when ``cascade_key`` is set
        (every join key a bare column).
        """
        num = self.num_sides
        left_keys0, left_index0 = backend._join_key_cache(
            self.tables[0],
            tuple(local for _, local in self.level_left_slot_keys[0]),
        )
        right_indexes = []
        for position in range(num - 1):
            _, index = backend._join_key_cache(
                self.tables[position + 1], self.level_right_slots[position]
            )
            right_indexes.append(index)
        level_prefixes = [
            np.arange(len(left_keys0), dtype=np.int64)[:, None]
        ]  # prefix entering level i (sides 0..i); level 0 is the identity
        left_indexes = [left_index0]
        if num == 2:
            # Probe whichever side is smaller; one lexsort restores the
            # left-major order the order keys require.
            right_keys0, right_index0 = backend._join_key_cache(
                self.tables[1], self.level_right_slots[0]
            )
            if len(right_keys0) < len(left_keys0):
                probe_positions, match_rows = hash_join_indices(
                    right_keys0, left_index0
                )
                rows = np.column_stack([match_rows, probe_positions])
                if len(rows):
                    rows = rows[np.lexsort((rows[:, 1], rows[:, 0]))]
            else:
                probe_positions, match_rows = hash_join_indices(
                    left_keys0, right_index0
                )
                rows = np.column_stack([probe_positions, match_rows])
        else:
            probe_positions, match_rows = hash_join_indices(
                left_keys0, right_indexes[0]
            )
            prefix = np.column_stack([probe_positions, match_rows])
            for position in range(1, num - 1):
                vectors = [
                    backend._table_batch(self.tables[side])
                    .columns[local]
                    .take(prefix[:, side])
                    for side, local in self.level_left_slot_keys[position]
                ]
                left_keys = key_tuples(vectors)
                level_prefixes.append(prefix)
                left_indexes.append(build_key_index(left_keys))
                probe_positions, match_rows = hash_join_indices(
                    left_keys, right_indexes[position]
                )
                prefix = np.hstack([prefix[probe_positions], match_rows[:, None]])
            rows = prefix
        return {
            "rows": rows,
            "level_prefixes": level_prefixes,
            "left_indexes": left_indexes,
            "right_indexes": right_indexes,
        }

    def _prepare(self, backend) -> dict:
        if self._state is not None:
            return self._state
        batches = [backend._table_batch(table) for table in self.tables]
        has_side_filters = any(
            evaluate is not None for evaluate in self.side_filter_evals
        )
        passes = []
        for side in range(self.num_sides):
            evaluate = self.side_filter_evals[side]
            passes.append(
                truth(evaluate(batches[side]))
                if evaluate
                else np.ones(batches[side].num_rows, dtype=bool)
            )
        if self.cascade_key is not None:
            # Shared unfiltered enumeration; this query's side filters are
            # numpy masks over it. The prefix/right indexes stay unfiltered
            # — _expand post-filters matches with prefix_pass/passes.
            cascade = backend._cascade(self)
            rows = cascade["rows"]
            prefix_pass = None
            if has_side_filters:
                keep = passes[0][rows[:, 0]]
                for side in range(1, self.num_sides):
                    keep &= passes[side][rows[:, side]]
                base_rows = rows[keep]
                prefix_pass = []
                for position, prefix in enumerate(cascade["level_prefixes"]):
                    mask = passes[0][prefix[:, 0]]
                    for side in range(1, position + 1):
                        mask &= passes[side][prefix[:, side]]
                    prefix_pass.append(mask)
            else:
                base_rows = rows
            right_indexes = cascade["right_indexes"]
            left_indexes = cascade["left_indexes"]
            level_prefixes = cascade["level_prefixes"]
        else:
            prefix_pass = None
            right_indexes = []
            for position in range(self.num_sides - 1):
                side = position + 1
                slots = self.level_right_slots[position]
                if slots is not None:
                    # Key tuples (and, for unfiltered sides, the hash index)
                    # are a property of the table and key columns alone —
                    # shared across the workload via the backend cache.
                    side_keys, unfiltered_index = backend._join_key_cache(
                        self.tables[side], slots
                    )
                else:
                    side_keys = key_tuples(
                        [ev(batches[side]) for ev in self.level_right_evals[position]]
                    )
                    unfiltered_index = None
                if self.side_filter_evals[side] is None and unfiltered_index is not None:
                    right_indexes.append(unfiltered_index)
                else:
                    right_indexes.append(build_key_index(side_keys, passes[side]))
            # Level-0 left index: since the level-0 "prefix" is just the
            # leftmost side's rows, index positions can be the row indices
            # themselves (identity prefix) — which makes the cached per-table
            # index directly usable and skips re-keying the table per query.
            if self.left_key_slots is not None:
                left_keys0, unfiltered_left = backend._join_key_cache(
                    self.tables[0], self.left_key_slots
                )
                if self.side_filter_evals[0] is None:
                    left_index0 = unfiltered_left
                else:
                    left_index0 = build_key_index(left_keys0, passes[0])
            else:
                left_keys0 = key_tuples(
                    [ev(batches[0]) for ev in self.level_left_evals[0]]
                )
                left_index0 = build_key_index(left_keys0, passes[0])
            level_prefixes = [
                np.arange(batches[0].num_rows, dtype=np.int64)[:, None]
            ]  # prefix entering level i (sides 0..i)
            left_indexes = [left_index0]

            # Base enumeration must come out left-major lexicographic by row
            # indices — HashJoin.execute's order — so order keys rank output
            # positions. Two-way joins probe whichever side is smaller and
            # restore the order with one lexsort; deeper trees cascade the
            # prefix through each right index (already in order).
            if self.num_sides == 2:
                slots = self.level_right_slots[0]
                if slots is not None:
                    right_keys0, _ = backend._join_key_cache(self.tables[1], slots)
                else:
                    right_keys0 = key_tuples(
                        [ev(batches[1]) for ev in self.level_right_evals[0]]
                    )
                counts = [int(passes[0].sum()), int(passes[1].sum())]
                if counts[1] < counts[0]:
                    probe_positions, match_rows = hash_join_indices(
                        right_keys0, left_index0, passes[1]
                    )
                    base_rows = np.column_stack([match_rows, probe_positions])
                    if len(base_rows):
                        order = np.lexsort((base_rows[:, 1], base_rows[:, 0]))
                        base_rows = base_rows[order]
                else:
                    probe_positions, match_rows = hash_join_indices(
                        left_keys0, right_indexes[0], passes[0]
                    )
                    base_rows = np.column_stack([probe_positions, match_rows])
            else:
                probe_positions, match_rows = hash_join_indices(
                    left_keys0, right_indexes[0], passes[0]
                )
                prefix = np.column_stack([probe_positions, match_rows])
                for position in range(1, self.num_sides - 1):
                    prefix_batch = self._rows_batch(
                        backend, prefix, self._level_left_slot_pairs[position]
                    )
                    left_keys = key_tuples(
                        [ev(prefix_batch) for ev in self.level_left_evals[position]]
                    )
                    level_prefixes.append(prefix)
                    left_indexes.append(build_key_index(left_keys))
                    probe_positions, match_rows = hash_join_indices(
                        left_keys, right_indexes[position]
                    )
                    prefix = np.hstack(
                        [prefix[probe_positions], match_rows[:, None]]
                    )
                base_rows = prefix
        base_batch = self._rows_batch(backend, base_rows, self._gather_slot_pairs)
        base_pass = (
            truth(self.filter_eval(base_batch))
            if self.filter_eval
            else np.ones(base_batch.num_rows, dtype=bool)
        )
        order_keys = (base_rows * self.strides[None, :]).sum(axis=1)
        self._state = {
            "batches": batches,
            "passes": passes,
            "right_indexes": right_indexes,
            "left_indexes": left_indexes,
            "level_prefixes": level_prefixes,
            "prefix_pass": prefix_pass,
            "base_batch": base_batch,
            "base_pass": base_pass,
            "order_keys": order_keys,
        }
        return self._state

    def base_contributions(self, backend) -> tuple[ColumnarBatch, np.ndarray]:
        state = self._prepare(backend)
        return state["base_batch"], state["base_pass"]

    def base_order_keys(self, backend) -> np.ndarray:
        return self._prepare(backend)["order_keys"]

    # -- per-candidate expansion --------------------------------------------

    def _expand(self, backend, state, side, pair_rows, side_batch, side_pass):
        """All join tuples containing each patched row of ``side``.

        Returns (pair positions, sub_rows): which pair each tuple came from
        and its per-side base row indices (column ``side`` is the patched
        row's base position; its *values* come from ``side_batch``). Tuples
        come out grouped by pair in pair order, so instance ids stay
        ascending.
        """
        num = self.num_sides
        # With a shared cascade, prefix/right indexes are *unfiltered*; this
        # query's side filters are applied by masking probe matches instead.
        # ``side_pass=None`` requests the fully unfiltered expansion (for
        # the backend's expansion cache) — no side filters applied at all.
        prefix_pass = state.get("prefix_pass") if side_pass is not None else None
        if side == 0:
            pair_positions = (
                np.arange(len(pair_rows), dtype=np.int64)
                if side_pass is None
                else np.nonzero(side_pass)[0].astype(np.int64)
            )
            sub_rows = np.full((len(pair_positions), num), -1, dtype=np.int64)
            sub_rows[:, 0] = pair_rows[pair_positions]
        else:
            right_keys = key_tuples(
                [ev(side_batch) for ev in self.level_right_evals[side - 1]]
            )
            pair_positions, prefix_positions = hash_join_indices(
                right_keys, state["left_indexes"][side - 1], side_pass
            )
            if prefix_pass is not None and len(pair_positions):
                keep = prefix_pass[side - 1][prefix_positions]
                pair_positions = pair_positions[keep]
                prefix_positions = prefix_positions[keep]
            sub_rows = np.full((len(pair_positions), num), -1, dtype=np.int64)
            if len(pair_positions):
                sub_rows[:, :side] = state["level_prefixes"][side - 1][prefix_positions]
                sub_rows[:, side] = pair_rows[pair_positions]
        for position in range(side, num - 1):
            if len(pair_positions) == 0:
                break
            level_batch = self._rows_batch(
                backend, sub_rows, self._level_left_slot_pairs[position],
                patched_side=side, side_batch=side_batch,
                pair_positions=pair_positions,
            )
            left_keys = key_tuples(
                [ev(level_batch) for ev in self.level_left_evals[position]]
            )
            probe_positions, match_rows = hash_join_indices(
                left_keys, state["right_indexes"][position]
            )
            if prefix_pass is not None and len(probe_positions):
                keep = state["passes"][position + 1][match_rows]
                probe_positions = probe_positions[keep]
                match_rows = match_rows[keep]
            pair_positions = pair_positions[probe_positions]
            sub_rows = sub_rows[probe_positions]
            sub_rows[:, position + 1] = match_rows
        return pair_positions, sub_rows

    def _expand_cached(
        self, backend, state, side, pair_rows, side_batch, side_pass,
        which, selected,
    ):
        """Expand through the backend's shared expansion cache.

        With a cascade key, the *unfiltered* expansion of a side's candidate
        pairs is query-independent: old values are the base table's, new
        values come from the shared delta tensor, and every join key is a
        bare column. Queries over the same join chain (every literal variant
        of a template, for one) reuse the probe work and apply their side
        filters as masks over the cached tuples.
        """
        if self.cascade_key is None:
            return self._expand(
                backend, state, side, pair_rows, side_batch, side_pass
            )
        cache_key = (self.cascade_key, side, which)
        stamp = backend.support.data_version
        cached = backend._expansions.get(cache_key)
        if (
            cached is not None
            and cached[0] == stamp
            and np.array_equal(cached[1], selected)
        ):
            pair_positions, sub_rows = cached[2], cached[3]
        else:
            pair_positions, sub_rows = self._expand(
                backend, state, side, pair_rows, side_batch, None
            )
            backend._expansions[cache_key] = (
                stamp, selected.copy(), pair_positions, sub_rows,
            )
        keep = side_pass[pair_positions]
        for other in range(self.num_sides):
            if other != side and self.side_filter_evals[other] is not None:
                keep &= state["passes"][other][sub_rows[:, other]]
        if keep.all():
            return pair_positions, sub_rows
        return pair_positions[keep], sub_rows[keep]

    def chunks(self, backend, candidate_array) -> tuple[list[_Chunk], list[int]]:
        state = self._prepare(backend)
        tensors = [backend.support.delta_tensor(table) for table in self.tables]
        touched = np.concatenate(
            [tensor.touched_instances for tensor in tensors]
        )
        values, counts = np.unique(touched, return_counts=True)
        multi = values[counts >= 2]
        multi = multi[np.isin(multi, candidate_array)]
        reexecute = [int(instance) for instance in multi]

        chunks: list[_Chunk] = []
        for side in range(self.num_sides):
            tensor = tensors[side]
            mask, selected = tensor.select_pairs(candidate_array)
            if len(selected) and len(multi):
                keep = ~np.isin(tensor.pair_instance[selected], multi)
                selected = selected[keep]
                mask = np.zeros(tensor.num_pairs, dtype=bool)
                mask[selected] = True
            if len(selected) == 0:
                continue
            instances = tensor.pair_instance[selected]
            pair_rows = tensor.pair_row[selected]
            old_side, new_side = _gather_pairs(
                backend, self.tables[side], self.side_scopes[side],
                self._side_needed[side], tensor, mask, selected, pair_rows,
            )
            ones = np.ones(len(selected), dtype=bool)
            evaluate = self.side_filter_evals[side]
            old_side_pass = truth(evaluate(old_side)) if evaluate else ones
            new_side_pass = (
                truth(evaluate(new_side)) if evaluate else ones.copy()
            )
            old_pairs, old_tuple_rows = self._expand_cached(
                backend, state, side, pair_rows, old_side, old_side_pass,
                "old", selected,
            )
            new_pairs, new_tuple_rows = self._expand_cached(
                backend, state, side, pair_rows, new_side, new_side_pass,
                "new", selected,
            )
            old_batch = self._rows_batch(
                backend, old_tuple_rows, self._gather_slot_pairs,
                patched_side=side, side_batch=old_side, pair_positions=old_pairs,
            )
            new_batch = self._rows_batch(
                backend, new_tuple_rows, self._gather_slot_pairs,
                patched_side=side, side_batch=new_side, pair_positions=new_pairs,
            )
            old_pass = (
                truth(self.filter_eval(old_batch))
                if self.filter_eval
                else np.ones(old_batch.num_rows, dtype=bool)
            )
            new_pass = (
                truth(self.filter_eval(new_batch))
                if self.filter_eval
                else np.ones(new_batch.num_rows, dtype=bool)
            )
            old_order = (old_tuple_rows * self.strides[None, :]).sum(axis=1)
            new_order = (new_tuple_rows * self.strides[None, :]).sum(axis=1)
            chunks.append(
                _Chunk(
                    instances[old_pairs], old_batch, old_pass,
                    instances[new_pairs], new_batch, new_pass,
                    old_rows=old_order, new_rows=new_order,
                )
            )
        return chunks, reexecute


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


@dataclass
class _BatchQuery:
    """A query compiled for batch conflict evaluation."""

    kernel: str  # flat | flat_join | scalar | grouped
    source: _TableSource | _TreeJoinSource
    project_evals: list[BatchEvaluator] | None  # flat kernels
    group_evals: list[BatchEvaluator] | None  # grouped kernel
    agg_specs: list[_AggSpec] | None
    project_slots: list[int] | None  # grouped: output-scope slots, projection order
    has_groups: bool = False
    ordered: bool = False  # ORDER BY: the answer is a sequence, not a bag
    having_eval: BatchEvaluator | None = None  # visibility mask over outputs
    having_slots: tuple[int, ...] = ()  # output slots HAVING references
    output_scope: Scope | None = None  # aggregate output scope (HAVING eval)
    bindings: LiteralBindings | None = None  # shared literal vector (template)
    literals: tuple = ()  # this variant's literal values, canonical order
    base_state: list | None = None  # lazily computed scalar-aggregate state
    grouped_state: "_GroupedState | None" = None  # lazily computed group state

    @property
    def kernel_label(self) -> str:
        """Kernel name qualified with the join width for 3-way and deeper."""
        num_sides = self.source.num_sides
        if num_sides >= 3:
            return f"{self.kernel}_join{num_sides}"
        return self.kernel


@dataclass
class BatchTemplate:
    """One compiled template: a pristine plan plus its literal bindings.

    ``bind`` produces a per-variant plan — a shallow copy with fresh lazy
    state holders, sharing the compiled evaluators — whose ``literals`` are
    installed into the shared bindings vector on every compute. Negative
    templates (``plan is None``) cache the compile-failure ``reason``: every
    rejection condition is literal-independent, so variants share the
    verdict.
    """

    fingerprint: str
    plan: _BatchQuery | None
    reason: str | None
    bindings: LiteralBindings | None
    num_params: int

    def bind(self, literals: tuple) -> _BatchQuery | None:
        if self.plan is None or len(literals) != self.num_params:
            return None
        plan = copy.copy(self.plan)
        plan.source = self.plan.source.clone()
        plan.base_state = None
        plan.grouped_state = None
        plan.literals = tuple(literals)
        return plan


def compile_batch_query(
    query: Query,
    base,
    bindings: LiteralBindings | None = None,
    param_slots: dict[int, int] | None = None,
    shape: QueryShape | None = None,
) -> tuple[_BatchQuery | None, str | None]:
    """Compile ``query`` for batch evaluation: (plan, None) or (None, reason).

    ``bindings``/``param_slots`` parameterize the compilation for template
    reuse (see :class:`BatchTemplate`); without them literals are baked in.
    """
    if shape is None:
        shape = resolve_shape(query.plan)
    if shape is None:
        return None, "unmatched-shape"
    ordered = shape.ordered or query.ordered

    try:
        if shape.single is not None:
            if not base.has_table(shape.single.scan.table):
                return None, "missing-table"
            source: _TableSource | _TreeJoinSource = _TableSource(
                base, shape.single.scan, shape.single.predicate,
                bindings, param_slots,
            )
        else:
            for level in shape.levels:
                join = level.join
                if not join.left_keys or len(join.left_keys) != len(join.right_keys):
                    return None, "no-join-keys"
            if not all(base.has_table(table) for table in shape.tables):
                return None, "missing-table"
            source = _TreeJoinSource(base, shape, bindings, param_slots)
            if source.overflow:
                return None, "order-key-overflow"

        needed_expressions = []
        if source.filter_expr is not None:
            needed_expressions.append(source.filter_expr)
        aggregate = shape.aggregate
        project = shape.project
        having_eval = None
        having_slots: tuple[int, ...] = ()
        output_scope = None

        if aggregate is None:
            project_evals = [
                compile_expr(item.expr, source.scope, bindings, param_slots)
                for item in project.items
            ]
            needed_expressions.extend(item.expr for item in project.items)
            group_evals = agg_specs = project_slots = None
            kernel = "flat_join" if source.is_join else "flat"
            has_groups = False
        else:
            output_scope = aggregate.output_scope(base)
            project_slots = []
            for item in project.items:
                # The projection must be a simple column selection over the
                # aggregate's output row — then a change is visible iff a
                # *projected* output column changes (or HAVING visibility
                # flips).
                if not isinstance(item.expr, ColumnRef):
                    return None, "agg-projection"
                project_slots.append(
                    output_scope.resolve(item.expr.qualifier, item.expr.name)
                )
            agg_specs, reason = _compile_agg_specs(
                aggregate, source, project_slots, bindings, param_slots
            )
            if agg_specs is None:
                return None, reason
            group_evals = [
                compile_expr(item.expr, source.scope, bindings, param_slots)
                for item in aggregate.group_items
            ]
            needed_expressions.extend(item.expr for item in aggregate.group_items)
            needed_expressions.extend(
                spec.arg for spec in aggregate.aggregates if spec.arg is not None
            )
            if shape.having is not None:
                # HAVING is evaluated over the aggregate's *output* scope —
                # no extra source slots; its aggregate inputs are already in
                # the spec list (the planner materializes hidden aggregates).
                having_eval = compile_expr(
                    shape.having.predicate, output_scope, bindings, param_slots
                )
                having_slots = tuple(sorted({
                    output_scope.resolve(qualifier, column)
                    for qualifier, column
                    in shape.having.predicate.referenced_columns()
                }))
            has_groups = bool(aggregate.group_items)
            project_evals = None
            if (
                not has_groups
                and shape.having is None
                and all(spec.kind in _DELTA_KINDS for spec in agg_specs)
            ):
                kernel = "scalar"
            else:
                kernel = "grouped"

        needed: set[int] = set()
        for expression in needed_expressions:
            for qualifier, column in expression.referenced_columns():
                needed.add(source.scope.resolve(qualifier, column))
        source.needed_slots = sorted(needed)
        source.finalize()
    except QueryError:
        return None, "compile-error"

    plan = _BatchQuery(
        kernel=kernel,
        source=source,
        project_evals=project_evals,
        group_evals=group_evals,
        agg_specs=agg_specs,
        project_slots=project_slots,
        has_groups=has_groups,
        ordered=ordered,
        having_eval=having_eval,
        having_slots=having_slots,
        output_scope=output_scope,
        bindings=bindings,
    )
    return plan, None


def _compile_agg_specs(
    aggregate, source, project_slots, bindings=None, param_slots=None
) -> tuple[list[_AggSpec] | None, str | None]:
    """Compile aggregates with per-spec decision kinds, or (None, reason)."""
    num_groups = len(aggregate.group_items)
    compared = set(project_slots)
    specs: list[_AggSpec] = []
    for index, spec in enumerate(aggregate.aggregates):
        func = spec.func.lower()
        if spec.distinct:
            return None, "distinct-agg"
        if spec.arg is None:
            if func != "count":
                return None, "unsupported-agg"
            kind = "count_star"
            arg_eval = None
        else:
            arg_eval = compile_expr(spec.arg, source.scope, bindings, param_slots)
            if func == "count":
                kind = "count"
            elif func in ("sum", "avg"):
                dtype = None
                if isinstance(spec.arg, ColumnRef):
                    slot = source.scope.resolve(spec.arg.qualifier, spec.arg.name)
                    dtype = source.dtype(slot)
                if dtype is ColumnType.INT:
                    # float64 accumulation of integers is exact (below
                    # 2**53), so incremental deltas agree with re-execution.
                    kind = "int_sum" if func == "sum" else "int_avg"
                elif dtype is ColumnType.TEXT:
                    return None, "text-sum"  # the oracle itself raises
                else:
                    # Float (or derived) accumulation is order-sensitive:
                    # recomputed exactly in contribution order-key order,
                    # for single tables and joins alike.
                    kind = "float_sum" if func == "sum" else "float_avg"
            else:  # min / max
                # Restrict to columns so group values are homogeneous and the
                # order-statistic walk compares like with like.
                if not isinstance(spec.arg, ColumnRef):
                    return None, "non-column-minmax"
                kind = "minmax"
        specs.append(
            _AggSpec(
                func=func,
                kind=kind,
                arg_eval=arg_eval,
                compared=(num_groups + index) in compared,
            )
        )
    return specs, None


# ---------------------------------------------------------------------------
# Grouped base state: sorted-group segments over the base contributions
# ---------------------------------------------------------------------------


class _GroupedState:
    """Per-group base state for the grouped kernel.

    Groups are factorized once over the base contributions; per group the
    state keeps its contribution positions (the *segment*, in base order),
    exact delta-friendly count/sum accumulators, ascending value lists for
    MIN/MAX order statistics, and — for float aggregates — the base output
    computed by summing the segment in base order-key order (bit-identical
    to re-execution). ``order_keys`` maps contribution positions to their
    order keys; segments are ascending in both.
    """

    def __init__(
        self,
        plan: _BatchQuery,
        batch: ColumnarBatch,
        passing: np.ndarray,
        order_keys: np.ndarray,
    ):
        self.plan = plan
        self.order_keys = order_keys
        keys = (
            key_tuples([evaluate(batch) for evaluate in plan.group_evals])
            if plan.group_evals
            else [()] * batch.num_rows
        )
        self.key_to_gid: dict[tuple, int] = {}
        self.keys: list[tuple] = []
        positions_by_gid: list[list[int]] = []
        for position in np.nonzero(passing)[0]:
            key = keys[position]
            gid = self.key_to_gid.get(key)
            if gid is None:
                gid = len(self.keys)
                self.key_to_gid[key] = gid
                self.keys.append(key)
                positions_by_gid.append([])
            positions_by_gid[gid].append(int(position))
        self.segments: list[list[int]] = positions_by_gid
        self.counts: list[int] = [len(segment) for segment in positions_by_gid]

        #: Per aggregate: (valid counts, sums, ascending values, arg vector).
        self.valid: list[list[int] | None] = []
        self.sums: list[list[float] | None] = []
        self.sorted_values: list[list[list] | None] = []
        self.vectors: list[ColumnVector | None] = []
        for spec in plan.agg_specs:
            if spec.arg_eval is None:
                self.valid.append(None)
                self.sums.append(None)
                self.sorted_values.append(None)
                self.vectors.append(None)
                continue
            vector = spec.arg_eval(batch)
            self.vectors.append(vector)
            valid: list[int] = []
            sums: list[float] = []
            ordered_values: list[list] = []
            for segment in positions_by_gid:
                values = [
                    vector.value_at(position)
                    for position in segment
                    if not vector.null[position]
                ]
                valid.append(len(values))
                sums.append(float(sum(value for value in values)) if values and spec.kind in ("int_sum", "int_avg") else 0.0)
                ordered_values.append(sorted(values) if spec.kind == "minmax" else [])
            self.valid.append(valid)
            self.sums.append(sums)
            self.sorted_values.append(ordered_values if spec.kind == "minmax" else None)
        self._outputs: dict[int, tuple | None] = {}
        self._segment_arrays: dict[int, np.ndarray] = {}
        self._visible: dict[tuple, bool] = {}  # HAVING verdicts per subtuple
        self._float_totals: dict[tuple[int, int], float] = {}  # base sums

    def segment_array(self, gid: int) -> np.ndarray:
        """The group's segment as an int64 position array (memoized)."""
        array = self._segment_arrays.get(gid)
        if array is None:
            array = np.asarray(self.segments[gid], dtype=np.int64)
            self._segment_arrays[gid] = array
        return array

    def gid_of(self, key: tuple) -> int:
        """Group id for ``key``, creating an empty group on first sight."""
        gid = self.key_to_gid.get(key)
        if gid is None:
            gid = len(self.keys)
            self.key_to_gid[key] = gid
            self.keys.append(key)
            self.segments.append([])
            self.counts.append(0)
            for index, spec in enumerate(self.plan.agg_specs):
                if self.valid[index] is not None:
                    self.valid[index].append(0)
                    self.sums[index].append(0.0)
                if self.sorted_values[index] is not None:
                    self.sorted_values[index].append([])
        return gid

    def base_output(self, gid: int) -> tuple | None:
        """The visible projected row of group ``gid`` in the base (cached)."""
        cached = self._outputs.get(gid, "miss")
        if cached != "miss":
            return cached
        plan = self.plan
        count = self.counts[gid]
        if count == 0 and plan.has_groups:
            output = None
        else:
            values = []
            for index, spec in enumerate(plan.agg_specs):
                values.append(self._base_aggregate(gid, index, spec))
            output = _visible_output(plan, self.keys[gid], values, self._visible)
        self._outputs[gid] = output
        return output

    def base_output_value(self, gid: int, index: int):
        """The base value of one aggregate of one group."""
        return self._base_aggregate(gid, index, self.plan.agg_specs[index])

    def _base_aggregate(self, gid: int, index: int, spec: _AggSpec):
        if spec.kind == "count_star":
            return self.counts[gid]
        valid = self.valid[index][gid]
        if spec.kind == "count":
            return valid
        if valid == 0:
            return None
        if spec.kind == "minmax":
            ordered = self.sorted_values[index][gid]
            return ordered[0] if spec.func == "min" else ordered[-1]
        if spec.kind in ("int_sum", "int_avg"):
            total = self.sums[index][gid]
            return total if spec.kind == "int_sum" else total / valid
        # float_sum / float_avg: exact in-order recompute over the segment.
        # Segments are ascending in order key, so a left-to-right sum over
        # the gathered values is the re-execution order; gather with numpy,
        # accumulate as Python floats (np.sum's pairwise order differs).
        total = self._float_totals.get((gid, index))
        if total is None:
            vector = self.vectors[index]
            positions = self.segment_array(gid)
            keep = ~vector.null[positions]
            total = sum(vector.values[positions[keep]].tolist())
            self._float_totals[(gid, index)] = total
        return total if spec.kind == "float_sum" else total / valid


class _AggEdit:
    """One instance's effect on one aggregate of one group."""

    __slots__ = ("dvalid", "dsum", "removed", "added", "rows_removed", "rows_added")

    def __init__(self):
        self.dvalid = 0  # delta of non-NULL passing contributions
        self.dsum = 0.0  # int_sum/int_avg: exact value delta
        self.removed: list = []  # minmax: values; float kinds: (order key, value)
        self.added: list = []
        self.rows_removed: list = []  # membership order keys regardless of NULLs
        self.rows_added: list = []


class _GroupEdit:
    """One instance's accumulated effect on one group."""

    __slots__ = ("dcount", "aggs", "keys_removed", "keys_added")

    def __init__(self, specs: list[_AggSpec]):
        self.dcount = 0
        self.aggs = [_AggEdit() for _ in specs]
        self.keys_removed: list[int] = []  # order keys of removed contributions
        self.keys_added: list[int] = []


def _project_output(plan: _BatchQuery, key: tuple, agg_values: list) -> tuple:
    output = key + tuple(agg_values)
    return tuple(output[slot] for slot in plan.project_slots)


def _visible_output(
    plan: _BatchQuery, key: tuple, agg_values: list, memo: dict | None = None
) -> tuple | None:
    """The projected output row, or None when HAVING hides the group.

    Visibility is decided over the *full* aggregate output tuple — group key
    plus every aggregate, including hidden ones the HAVING rewriter added —
    via a one-row columnar batch, reusing the same compiled predicate every
    variant binds. ``memo`` (per-variant: the predicate reads that variant's
    bound literals) short-circuits repeated rows — edits keep producing the
    same handful of outputs per group.
    """
    if plan.having_eval is not None:
        row = key + tuple(agg_values)
        # Visibility depends only on the output slots the predicate reads
        # (and the variant's bound literals — ``memo`` is per-variant), so
        # the verdict is memoized on that subtuple: e.g. a count(*)
        # threshold keys on the count alone, hitting even while a float
        # sum in the row changes with every edit.
        memo_key = (
            tuple(row[slot] for slot in plan.having_slots)
            if memo is not None
            else None
        )
        visible = memo.get(memo_key) if memo is not None else None
        if visible is None:
            batch = ColumnarBatch(
                plan.output_scope,
                [vector_from_values([value]) for value in row],
                1,
            )
            visible = bool(truth(plan.having_eval(batch))[0])
            if memo is not None:
                memo[memo_key] = visible
        if not visible:
            return None
    return _project_output(plan, key, agg_values)


def _extreme(base_sorted: list, removed: Counter, added: list, want_max: bool):
    """Order-statistic walk: the new MIN/MAX after removals and additions."""
    best = None
    if removed:
        remaining = Counter(removed)
        iterator = reversed(base_sorted) if want_max else iter(base_sorted)
        for value in iterator:
            if remaining.get(value):
                remaining[value] -= 1
                continue
            best = value
            break
    elif base_sorted:
        best = base_sorted[-1] if want_max else base_sorted[0]
    for value in added:
        if best is None or (value > best if want_max else value < best):
            best = value
    return best


# ---------------------------------------------------------------------------
# The backend
# ---------------------------------------------------------------------------


#: Lazily imported to avoid a cycle (repro.service imports the broker, which
#: imports this module).
_TEMPLATE_FINGERPRINT = None


def _template_fingerprint(query, catalog, shape):
    global _TEMPLATE_FINGERPRINT
    if _TEMPLATE_FINGERPRINT is None:
        from repro.service.canonical import template_fingerprint

        _TEMPLATE_FINGERPRINT = template_fingerprint
    return _TEMPLATE_FINGERPRINT(query, catalog, shape)


class VectorizedBackend(ConflictBackend):
    """Columnar batch backend with per-query fallback to ``incremental``."""

    name = "vectorized"

    #: Compiled-plan cache bound: compilation is cheap relative to conflict
    #: computation, so wholesale clearing at the cap keeps a long-lived
    #: market (a stream of unique ad-hoc queries) from growing unboundedly.
    MAX_COMPILED_PLANS = 4096

    #: Default bound on distinct templates kept compiled (LRU).
    TEMPLATE_CACHE_SIZE = 512

    def __init__(
        self,
        support: SupportSet,
        fallback: ConflictBackend | None = None,
        template_cache_size: int | None = None,
    ):
        super().__init__(support)
        self._fallback = fallback or IncrementalBackend(support)
        # Keyed by query identity, not text: programmatic queries may share
        # text with different plans. The query object is pinned in the value
        # so its id() cannot be recycled while the cache lives.
        self._compiled: dict[
            int, tuple[Query, _BatchQuery | None, str | None]
        ] = {}
        self._table_batches: dict[str, ColumnarBatch] = {}
        self._join_keys: dict[tuple[str, tuple[int, ...]], tuple[list, dict]] = {}
        self._cascades: dict[tuple, dict] = {}
        #: (cascade key, side, old/new) -> (data version, selected pairs,
        #: unfiltered expansion). One entry per key: candidate sets rarely
        #: differ across queries of one build, and a mismatch just recomputes.
        self._expansions: dict[tuple, tuple] = {}
        from repro.service.cache import TemplateCache  # deferred: cycle

        size = (
            self.TEMPLATE_CACHE_SIZE
            if template_cache_size is None
            else template_cache_size
        )
        self._templates = TemplateCache(size)

    # -- compilation caches -------------------------------------------------

    def batch_plan(self, query: Query) -> _BatchQuery | None:
        return self._plan_info(query)[0]

    def template_stats(self) -> dict:
        """Template-cache counters (hits/misses/evictions/stale drops)."""
        return self._templates.stats().as_dict()

    def _plan_info(self, query: Query) -> tuple[_BatchQuery | None, str | None]:
        cached = self._compiled.get(id(query))
        if cached is not None and cached[0] is query:
            return cached[1], cached[2]
        if len(self._compiled) >= self.MAX_COMPILED_PLANS:
            self._compiled.clear()
        plan, reason = self._build_plan(query)
        self._compiled[id(query)] = (query, plan, reason)
        return plan, reason

    def _build_plan(self, query: Query) -> tuple[_BatchQuery | None, str | None]:
        """Compile through the template cache: fingerprint, bind, or build."""
        shape = resolve_shape(query.plan)
        if shape is None:
            return None, "unmatched-shape"
        stamp = self.support.data_version
        stripped = _template_fingerprint(query, self.base, shape)
        if stripped is None:
            # Not parameterizable (e.g. a Literal node shared between two
            # canonical positions): compile standalone, skip the cache.
            return compile_batch_query(query, self.base, shape=shape)
        digest, literal_nodes = stripped
        values = tuple(node.value for node in literal_nodes)
        template = self._templates.get(digest, stamp=stamp)
        if template is not None:
            if template.plan is None:
                return None, template.reason
            bound = template.bind(values)
            if bound is not None:
                return bound, None
            return compile_batch_query(query, self.base, shape=shape)
        bindings = LiteralBindings(values)
        param_slots = {
            id(node): position for position, node in enumerate(literal_nodes)
        }
        plan, reason = compile_batch_query(
            query, self.base, bindings=bindings, param_slots=param_slots,
            shape=shape,
        )
        template = BatchTemplate(
            fingerprint=digest,
            plan=plan,
            reason=reason,
            bindings=bindings if plan is not None else None,
            num_params=len(values),
        )
        self._templates.put(digest, template, stamp=stamp)
        if plan is None:
            return None, reason
        # The representative variant binds too: every variant gets its own
        # per-variant state, the template's pristine plan is never executed.
        return template.bind(values), None

    def _table_batch(self, table: str) -> ColumnarBatch:
        from repro.db.columnar import table_batch

        batch = self._table_batches.get(table)
        if batch is None:
            batch = table_batch(self.base.table(table))
            self._table_batches[table] = batch
        return batch

    def _join_key_cache(self, table: str, slots: tuple[int, ...]):
        """(key tuples, unfiltered hash index) of a table's key columns.

        Shared across all queries joining on the same columns — the SSB/TPC-H
        workloads join thousands of templates on the same handful of keys.
        """
        cache_key = (table, slots)
        cached = self._join_keys.get(cache_key)
        if cached is None:
            batch = self._table_batch(table)
            tuples = key_tuples([batch.columns[slot] for slot in slots])
            cached = (tuples, build_key_index(tuples))
            self._join_keys[cache_key] = cached
        return cached

    def _cascade(self, source) -> dict:
        """Shared unfiltered join enumeration for an all-column join chain.

        Keyed on (tables, key slots) alone — every literal variant of a
        join template, and every other query over the same chain, reuses
        one enumeration and masks it with its own filters.
        """
        cascade = self._cascades.get(source.cascade_key)
        if cascade is None:
            cascade = source._build_cascade(self)
            self._cascades[source.cascade_key] = cascade
        return cascade

    def invalidate_tables(self, tables) -> None:
        """Drop base-derived caches touching the given tables (delta path).

        Per-table columnar batches and join-key indexes are dropped only
        for the mutated tables; cascades are keyed on their full table
        chain, so any cascade mentioning a mutated table goes. Compiled
        plans embed :class:`_TableSource` objects whose cached base-pass
        masks are now stale, so the id-keyed plan cache is cleared
        wholesale (template entries are data-version stamped and drop on
        next access; expansions likewise, cleared here for promptness).
        """
        keys = {table.lower() for table in tables}
        if not keys:
            return
        for table in list(self._table_batches):
            if table.lower() in keys:
                del self._table_batches[table]
        for cache_key in list(self._join_keys):
            if cache_key[0].lower() in keys:
                del self._join_keys[cache_key]
        for cascade_key in list(self._cascades):
            chain = cascade_key[0]
            if any(table.lower() in keys for table in chain):
                del self._cascades[cascade_key]
        self._expansions.clear()
        self._compiled.clear()

    def prepare(self, queries) -> None:
        """Warm per-workload caches: compiled plans, base batches, tensors.

        Called by :meth:`ConflictSetEngine.build_hypergraph` (and through it
        by the broker's ``quote_batch``) so delta tensors — one per table,
        hence one *per join side* — and columnar base tables are built once
        and shared by every query of the batch.
        """
        tables: set[str] = set()
        for query in queries:
            plan = self.batch_plan(query)
            if plan is not None:
                tables.update(plan.source.tables)
        for table in tables:
            self._table_batch(table)
            self.support.delta_tensor(table)

    # -- the backend hook ---------------------------------------------------

    def compute(
        self, query: Query, candidates: list[int] | None = None
    ) -> ConflictComputation:
        setup_start = time.perf_counter()
        plan, reason = self._plan_info(query)
        if plan is None:
            return replace(
                self._fallback.compute(query, candidates),
                fallback_reason=reason,
            )
        if plan.bindings is not None:
            # Re-target every compiled evaluator of the template at this
            # variant's literal vector. Computes are serialized per backend
            # (the service prices under its market lock), so the shared
            # holder is safe to swap.
            plan.bindings.values = plan.literals
        if candidates is None:
            candidates = self.candidate_instances(query)
        setup = time.perf_counter() - setup_start

        start = time.perf_counter()
        try:
            conflicting, undecided = self._decide(plan, candidates)
            reexecuted = len(undecided)
            if undecided:
                baseline = query.run(self.base)
                for instance_id in sorted(undecided):
                    if query.run(self.support.materialize(instance_id)) != baseline:
                        conflicting.append(instance_id)
        except QueryError:
            # Runtime type surprises (e.g. mixed-kind ordering comparisons)
            # are rare enough to pay full fallback for the whole query.
            return replace(
                self._fallback.compute(query, candidates),
                fallback_reason="runtime-error",
            )
        elapsed = time.perf_counter() - start
        return ConflictComputation(
            conflict_set=frozenset(conflicting),
            num_candidates=len(candidates),
            num_pruned=len(self.support) - len(candidates),
            wall_time_seconds=elapsed,
            incremental=False,
            backend=self.name,
            setup_seconds=setup,
            num_reexecuted=reexecuted,
            kernel=plan.kernel_label,
        )

    # -- kernel dispatch ----------------------------------------------------

    def _decide(
        self, plan: _BatchQuery, candidates: list[int]
    ) -> tuple[list[int], set[int]]:
        """Conflicting instance ids plus instances needing re-execution."""
        if not candidates:
            return [], set()
        candidate_array = np.asarray(candidates, dtype=np.int64)
        if plan.kernel == "flat":
            return self._decide_flat(plan, candidate_array)
        chunks, reexecute = plan.source.chunks(self, candidate_array)
        undecided = set(reexecute)
        if plan.kernel == "flat_join":
            conflicting = self._decide_flat_join(plan, chunks, undecided)
        elif plan.kernel == "scalar":
            conflicting = self._decide_scalar(plan, candidate_array, chunks)
        else:
            conflicting = self._decide_grouped(plan, chunks, undecided)
        return conflicting, undecided

    # -- flat single-table kernel (aligned pairwise fast path) ---------------

    def _decide_flat(
        self, plan: _BatchQuery, candidate_array: np.ndarray
    ) -> tuple[list[int], set[int]]:
        data = plan.source.pair_data(self, candidate_array)
        if data is None:
            return [], set()
        tensor, instances, _, old_batch, new_batch, old_pass, new_pass = data

        old_projected = [evaluate(old_batch) for evaluate in plan.project_evals]
        new_projected = [evaluate(new_batch) for evaluate in plan.project_evals]

        changed = np.zeros(old_batch.num_rows, dtype=bool)
        for old_column, new_column in zip(old_projected, new_projected):
            changed |= null_aware_neq(old_column, new_column)
        pair_conflict = (old_pass != new_pass) | (old_pass & new_pass & changed)

        flagged = np.unique(instances[pair_conflict])
        conflicting: list[int] = []
        undecided: set[int] = set()
        for instance_id in flagged:
            if tensor.pair_counts[instance_id] <= 1:
                conflicting.append(int(instance_id))
                continue
            # Multi-row instance: a pairwise change can still leave the
            # answer bag unchanged (two rows swapping values). Compare the
            # exact contribution multisets, as the incremental checker does.
            # `instances` is sorted (tensor pairs are grouped by instance),
            # so the instance's slice is found by bisection, not a full scan.
            low = np.searchsorted(instances, instance_id, side="left")
            high = np.searchsorted(instances, instance_id, side="right")
            positions = np.arange(low, high)
            old_bag = _contribution_bag(old_projected, old_pass, positions)
            new_bag = _contribution_bag(new_projected, new_pass, positions)
            if old_bag != new_bag:
                # A bag change conflicts regardless of output order.
                conflicting.append(int(instance_id))
            elif plan.ordered:
                # ORDER BY answers are sequences: a bag-preserving multi-row
                # swap can still reorder a tie group. Re-execute to decide.
                undecided.add(int(instance_id))
        return conflicting, undecided

    # -- flat join kernel (order-keyed contribution sequences) ----------------

    def _decide_flat_join(
        self, plan: _BatchQuery, chunks: list[_Chunk], undecided: set[int]
    ) -> list[int]:
        conflicting: list[int] = []
        for chunk in chunks:
            old_tuples = _projected_tuples(plan.project_evals, chunk.old_batch)
            new_tuples = _projected_tuples(plan.project_evals, chunk.new_batch)
            for instance_id, (o_lo, o_hi), (n_lo, n_hi) in _instance_slices(chunk):
                old_items = sorted(
                    (
                        (int(chunk.old_rows[position]), old_tuples[position])
                        for position in range(o_lo, o_hi)
                        if chunk.old_pass[position]
                    ),
                    key=lambda item: item[0],
                )
                new_items = sorted(
                    (
                        (int(chunk.new_rows[position]), new_tuples[position])
                        for position in range(n_lo, n_hi)
                        if chunk.new_pass[position]
                    ),
                    key=lambda item: item[0],
                )
                if old_items == new_items:
                    # Identical contributions at identical order keys: every
                    # output position is preserved, ordered or not.
                    continue
                if Counter(item[1] for item in old_items) != Counter(
                    item[1] for item in new_items
                ):
                    conflicting.append(instance_id)
                elif plan.ordered:
                    # Bag-preserving contribution moves can reorder an
                    # ORDER BY tie group (join output order is left-major).
                    undecided.add(instance_id)
        return conflicting

    # -- scalar COUNT/INT-SUM/INT-AVG kernel (pure array ops) ----------------

    def _decide_scalar(
        self, plan: _BatchQuery, candidate_array: np.ndarray, chunks: list[_Chunk]
    ) -> list[int]:
        base_state = self._scalar_base_state(plan)
        num_candidates = len(candidate_array)

        count_deltas = [np.zeros(num_candidates) for _ in plan.agg_specs]
        sum_deltas = [np.zeros(num_candidates) for _ in plan.agg_specs]
        for chunk in chunks:
            for sign, instances, batch, passing in (
                (-1.0, chunk.old_instances, chunk.old_batch, chunk.old_pass),
                (+1.0, chunk.new_instances, chunk.new_batch, chunk.new_pass),
            ):
                if len(instances) == 0:
                    continue
                compact = np.searchsorted(candidate_array, instances)
                for index, spec in enumerate(plan.agg_specs):
                    if not spec.compared:
                        continue
                    if spec.arg_eval is None:
                        count_deltas[index] += sign * np.bincount(
                            compact,
                            weights=passing.astype(np.float64),
                            minlength=num_candidates,
                        )
                        continue
                    vector = spec.arg_eval(batch)
                    valid = passing & ~vector.null
                    count_deltas[index] += sign * np.bincount(
                        compact,
                        weights=valid.astype(np.float64),
                        minlength=num_candidates,
                    )
                    if spec.kind in ("int_sum", "int_avg"):
                        sum_deltas[index] += sign * np.bincount(
                            compact,
                            weights=np.where(valid, vector.values, 0.0),
                            minlength=num_candidates,
                        )

        changed_any = np.zeros(num_candidates, dtype=bool)
        for index, (spec, (base_count, base_sum)) in enumerate(
            zip(plan.agg_specs, base_state)
        ):
            if not spec.compared:
                continue
            count_delta = count_deltas[index]
            if spec.kind in ("count_star", "count"):
                changed_any |= count_delta != 0
                continue
            sum_delta = sum_deltas[index]
            new_count = base_count + count_delta
            presence_changed = (base_count > 0) != (new_count > 0)
            both_present = (base_count > 0) & (new_count > 0)
            if spec.kind == "int_sum":
                changed_any |= presence_changed | (both_present & (sum_delta != 0))
            else:  # int_avg
                with np.errstate(invalid="ignore", divide="ignore"):
                    old_average = base_sum / base_count if base_count > 0 else np.nan
                    new_average = (base_sum + sum_delta) / np.where(
                        new_count > 0, new_count, 1
                    )
                changed_any |= presence_changed | (
                    both_present & (new_average != old_average)
                )
        return [int(candidate) for candidate in candidate_array[changed_any]]

    def _scalar_base_state(self, plan: _BatchQuery) -> list[tuple[int, float]]:
        """Per aggregate: (non-NULL passing count, exact sum) over the base."""
        if plan.base_state is not None:
            return plan.base_state
        batch, passing = plan.source.base_contributions(self)
        state: list[tuple[int, float]] = []
        for spec in plan.agg_specs:
            if spec.arg_eval is None:
                state.append((int(passing.sum()), 0.0))
                continue
            vector = spec.arg_eval(batch)
            valid = passing & ~vector.null
            if spec.kind == "count":
                total = 0.0  # COUNT needs no sum (and the column may be TEXT)
            else:
                total = float(vector.values[valid].sum()) if valid.any() else 0.0
            state.append((int(valid.sum()), total))
        plan.base_state = state
        return state

    # -- grouped kernel (GROUP BY / HAVING / MIN-MAX / float segments) --------

    def _grouped_state(self, plan: _BatchQuery) -> _GroupedState:
        if plan.grouped_state is None:
            batch, passing = plan.source.base_contributions(self)
            order_keys = plan.source.base_order_keys(self)
            plan.grouped_state = _GroupedState(plan, batch, passing, order_keys)
        return plan.grouped_state

    def _decide_grouped(
        self, plan: _BatchQuery, chunks: list[_Chunk], undecided: set[int]
    ) -> list[int]:
        state = self._grouped_state(plan)
        conflicting: list[int] = []
        for chunk in chunks:
            sides = []
            raw = []
            for batch, passing, rows in (
                (chunk.old_batch, chunk.old_pass, chunk.old_rows),
                (chunk.new_batch, chunk.new_pass, chunk.new_rows),
            ):
                group_vectors = (
                    [evaluate(batch) for evaluate in plan.group_evals]
                    if plan.group_evals
                    else []
                )
                keys = (
                    key_tuples(group_vectors)
                    if group_vectors
                    else [()] * batch.num_rows
                )
                vectors = [
                    spec.arg_eval(batch) if spec.arg_eval is not None else None
                    for spec in plan.agg_specs
                ]
                sides.append((keys, vectors, passing, rows))
                raw.append((group_vectors, vectors, passing))
            old_side, new_side = sides
            changed_ids = _changed_instance_ids(chunk, raw)
            for instance_id, old_span, new_span in _instance_slices(chunk):
                if changed_ids is not None and instance_id not in changed_ids:
                    continue  # bulk-verified identical contributions
                decision = self._decide_grouped_instance(
                    plan, state, old_side, old_span, new_side, new_span
                )
                if decision is True:
                    conflicting.append(instance_id)
                elif decision is None:
                    undecided.add(instance_id)
        return conflicting

    def _decide_grouped_instance(
        self, plan, state, old_side, old_span, new_side, new_span
    ) -> bool | None:
        """True = conflict, False = none, None = re-execute to decide."""
        specs = plan.agg_specs
        contributions = []
        for (keys, vectors, passing, order_keys), (lo, hi) in (
            (old_side, old_span),
            (new_side, new_span),
        ):
            items = []
            for position in range(lo, hi):
                if not passing[position]:
                    continue
                values = tuple(
                    None
                    if vector is None
                    else (None if vector.null[position] else vector.value_at(position))
                    for vector in vectors
                )
                items.append((keys[position], values, int(order_keys[position])))
            items.sort(key=lambda item: item[2])
            contributions.append(items)
        old_items, new_items = contributions
        if old_items == new_items:
            # Identical contributions at identical order keys: group
            # memberships, aggregate inputs, and emission ranks are all
            # preserved — nothing about the answer can change.
            return False

        # Accumulate edits per affected group.
        edits: dict[int, _GroupEdit] = {}
        for items, sign in ((old_items, -1), (new_items, +1)):
            for key, values, order_key in items:
                gid = state.gid_of(key)
                edit = edits.get(gid)
                if edit is None:
                    edit = _GroupEdit(specs)
                    edits[gid] = edit
                edit.dcount += sign
                (edit.keys_removed if sign < 0 else edit.keys_added).append(order_key)
                for index, spec in enumerate(specs):
                    if spec.arg_eval is None:
                        continue
                    value = values[index]
                    slot = edit.aggs[index]
                    (slot.rows_removed if sign < 0 else slot.rows_added).append(
                        order_key
                    )
                    if value is None:
                        continue
                    slot.dvalid += sign
                    if spec.kind in ("int_sum", "int_avg"):
                        slot.dsum += sign * value
                    elif spec.kind == "minmax":
                        (slot.removed if sign < 0 else slot.added).append(value)
                    elif spec.kind in _ORDER_KINDS:
                        (slot.removed if sign < 0 else slot.added).append(
                            (order_key, value)
                        )

        old_bag: Counter = Counter()
        new_bag: Counter = Counter()
        any_change = False
        for gid, edit in edits.items():
            old_output = state.base_output(gid)
            new_output = self._edited_output(plan, state, gid, edit)
            if old_output != new_output:
                any_change = True
            if old_output is not None:
                old_bag[old_output] += 1
            if new_output is not None:
                new_bag[new_output] += 1
        if old_bag != new_bag:
            return True
        if plan.ordered and plan.has_groups:
            # GROUP BY output rows are emitted in group first-contribution
            # order, which breaks ORDER BY ties. The bag is preserved; the
            # sequence is too iff every visible edited group's output is
            # unchanged *and* its emission rank — the minimum order key of
            # its membership — is unchanged.
            if any_change:
                return None
            for gid, edit in edits.items():
                if state.base_output(gid) is None:
                    continue
                if self._emission_min_changed(state, gid, edit):
                    return None
        return False

    def _emission_min_changed(self, state, gid, edit: "_GroupEdit") -> bool:
        """Whether the group's first-contribution order key moved."""
        order_keys = state.order_keys
        segment = state.segments[gid]
        base_min = int(order_keys[segment[0]]) if segment else None
        removed = set(edit.keys_removed)
        new_min = None
        for position in segment:  # ascending order keys
            key = int(order_keys[position])
            if key not in removed:
                new_min = key
                break
        for key in edit.keys_added:
            if new_min is None or key < new_min:
                new_min = key
        return new_min != base_min

    def _edited_output(self, plan, state, gid, edit: "_GroupEdit") -> tuple | None:
        new_count = state.counts[gid] + edit.dcount
        if new_count <= 0 and plan.has_groups:
            return None
        values = []
        for index, spec in enumerate(plan.agg_specs):
            slot = edit.aggs[index]
            if spec.kind == "count_star":
                values.append(max(new_count, 0))
                continue
            new_valid = state.valid[index][gid] + slot.dvalid
            if spec.kind == "count":
                values.append(new_valid)
                continue
            if new_valid <= 0:
                values.append(None)
                continue
            if spec.kind in ("int_sum", "int_avg"):
                total = state.sums[index][gid] + slot.dsum
                values.append(total if spec.kind == "int_sum" else total / new_valid)
            elif spec.kind == "minmax":
                values.append(
                    _extreme(
                        state.sorted_values[index][gid],
                        Counter(slot.removed),
                        slot.added,
                        want_max=spec.func == "max",
                    )
                )
            else:  # float_sum / float_avg: exact order-keyed recompute
                values.append(
                    self._float_recompute(state, gid, index, spec, slot, new_valid)
                )
        return _visible_output(plan, state.keys[gid], values, state._visible)

    def _float_recompute(self, state, gid, index, spec, slot, new_valid):
        """Recompute a float SUM/AVG in order-key order (naive-exact).

        ``slot.removed``/``slot.added`` are (order key, value) pairs of the
        instance's valid old/new contributions to this group,
        ``slot.rows_removed``/``slot.rows_added`` its membership order keys
        regardless of NULLs; when both are unchanged the base output is
        reused (the common case: a patch to a *different* column).
        Otherwise the group's new value sequence is the base segment with
        the old membership keys dropped and the new valid pairs merged back
        at their order keys, summed left to right — the exact order full
        re-execution sums in, since order keys rank the left-major
        enumeration and patches never add or remove base rows.
        """
        if sorted(slot.removed) == sorted(slot.added) and sorted(
            slot.rows_removed
        ) == sorted(slot.rows_added):
            return state.base_output_value(gid, index)
        vector = state.vectors[index]
        positions = state.segment_array(gid)
        keys = state.order_keys[positions]
        keep = ~vector.null[positions]
        # Dropped sets are tiny (one patch's membership keys): a compare per
        # key beats np.isin's sort-based machinery at this size.
        for dropped in set(slot.rows_removed):
            keep &= keys != dropped
        kept_keys = keys[keep]
        kept_values = vector.values[positions[keep]]
        # Sum strictly left to right in order-key order — bit-identical to
        # full re-execution (np.sum's pairwise accumulation is not).
        if slot.added:
            merged = list(zip(kept_keys.tolist(), kept_values.tolist()))
            merged.extend(slot.added)
            merged.sort(key=lambda pair: pair[0])
            total = sum(value for _, value in merged)
        else:
            total = sum(kept_values.tolist())
        return total if spec.kind == "float_sum" else total / new_valid


def _projected_tuples(project_evals, batch: ColumnarBatch) -> list[tuple]:
    """All projected rows of a batch as Python tuples (None at NULLs)."""
    if batch.num_rows == 0:
        return []
    return key_tuples([evaluate(batch) for evaluate in project_evals])


def _changed_instance_ids(chunk: _Chunk, raw) -> set[int] | None:
    """Instances whose contributions differ between old and new, in bulk.

    Only usable when the old and new tuple sets align exactly — same
    instances, same order keys position for position (the common case: the
    patch left every join key intact). Then an instance's contributions are
    identical iff no position of its span flips a filter pass or changes a
    group key / aggregate argument — all checked vectorized over the whole
    chunk, skipping the per-instance decision loop for unchanged instances
    (which would reach its ``old_items == new_items`` early exit anyway).
    Returns None when the sides don't align; the caller falls back to
    per-instance decisions for every instance.
    """
    old = chunk.old_instances
    new = chunk.new_instances
    if len(old) != len(new) or len(old) == 0:
        return None
    if not np.array_equal(old, new) or not np.array_equal(
        chunk.old_rows, chunk.new_rows
    ):
        return None
    (old_groups, old_aggs, old_pass), (new_groups, new_aggs, new_pass) = raw
    diff = old_pass != new_pass
    both = old_pass & new_pass
    for old_vec, new_vec in zip(old_groups + old_aggs, new_groups + new_aggs):
        if old_vec is None:
            continue
        neq = (old_vec.null != new_vec.null) | (
            ~old_vec.null & ~new_vec.null & (old_vec.values != new_vec.values)
        )
        diff |= both & neq
    identifiers, starts = np.unique(old, return_index=True)
    changed = np.add.reduceat(diff.astype(np.intp), starts) > 0
    return set(identifiers[changed].tolist())


def _instance_slices(chunk: _Chunk):
    """Iterate (instance id, old slice, new slice) over a chunk's instances."""
    old = chunk.old_instances
    new = chunk.new_instances
    identifiers = np.union1d(old, new)
    o_lo = np.searchsorted(old, identifiers, side="left")
    o_hi = np.searchsorted(old, identifiers, side="right")
    n_lo = np.searchsorted(new, identifiers, side="left")
    n_hi = np.searchsorted(new, identifiers, side="right")
    for position, instance_id in enumerate(identifiers.tolist()):
        yield (
            int(instance_id),
            (int(o_lo[position]), int(o_hi[position])),
            (int(n_lo[position]), int(n_hi[position])),
        )


def _contribution_bag(projected, passing, positions) -> Counter:
    """Multiset of projected tuples contributed by the given pair positions."""
    bag: Counter = Counter()
    for position in positions:
        if not passing[position]:
            continue
        bag[tuple(column.value_at(position) for column in projected)] += 1
    return bag


class AutoBackend(ConflictBackend):
    """Per-query choice: batch evaluation when it can win, checkers otherwise.

    Dispatch consults the unified shape matcher (through the vectorized
    backend's template-cached plan info): a query is only routed to the batch
    path when it actually compiled, so the reported backend in
    :class:`ConflictComputation` is the one that decided — and when it is
    not, the computation carries the reason (``distinct-agg``,
    ``below-threshold``, ...). The batch path pays fixed costs (candidate
    gather, patch application) that only amortize across enough candidates;
    below the threshold the incremental checker's per-instance work is
    cheaper.
    """

    name = "auto"

    def __init__(
        self,
        support: SupportSet,
        min_batch_candidates: int = 48,
        template_cache_size: int | None = None,
    ):
        super().__init__(support)
        self.min_batch_candidates = min_batch_candidates
        self._incremental = IncrementalBackend(support)
        self._vectorized = VectorizedBackend(
            support,
            fallback=self._incremental,
            template_cache_size=template_cache_size,
        )

    def prepare(self, queries) -> None:
        self._vectorized.prepare(queries)

    def invalidate_tables(self, tables) -> None:
        self._vectorized.invalidate_tables(tables)
        self._incremental.invalidate_tables(tables)

    def template_stats(self) -> dict:
        return self._vectorized.template_stats()

    def compute(
        self, query: Query, candidates: list[int] | None = None
    ) -> ConflictComputation:
        plan, reason = self._vectorized._plan_info(query)
        if plan is None:
            return replace(
                self._incremental.compute(query, candidates),
                fallback_reason=reason,
            )
        if candidates is None:
            candidates = self.candidate_instances(query)
        if len(candidates) >= self.min_batch_candidates:
            return self._vectorized.compute(query, candidates)
        return replace(
            self._incremental.compute(query, candidates),
            fallback_reason="below-threshold",
        )


register_backend(VectorizedBackend.name, VectorizedBackend)
register_backend(AutoBackend.name, AutoBackend)
