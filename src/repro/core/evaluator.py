"""Revenue evaluation strategies: the registry-backed revenue engine.

The pricing half of the paper (Sections 3.3–3.4) reduces to one inner loop:
price every hyperedge under a candidate pricing function and sum the prices
of the edges that sell. :class:`RevenueEvaluator` is a facade over a registry
of :class:`RevenueStrategy` objects — mirroring
:class:`~repro.qirana.conflict.ConflictSetEngine` and its conflict-backend
registry — so that loop is pluggable:

- ``scalar`` — the definition: one :meth:`PricingFunction.price` call per
  edge and pure-Python candidate scans. Kept verbatim as the parity oracle
  for the vectorized path (see ``tests/test_revenue_parity_fuzz.py``).
- ``vectorized`` (default) — pure array ops over the hypergraph's CSR
  incidence blocks: edge prices via segment sums
  (:meth:`PricingFunction.price_edges_arrays`), coordinate-ascent line
  searches via a sorted suffix scan, and price-grid scoring as one
  matrix sweep.

Every kernel call is counted in :attr:`RevenueEvaluator.diagnostics`
(per-strategy evaluations, edges, line searches, grid sweeps, wall time),
so benchmarks can prove which strategy actually decided. A module-level
default evaluator backs :func:`repro.core.revenue.compute_revenue`;
:func:`use_strategy` swaps it for a scope (the experiment harness and CLI
select strategies this way).

**Adding a strategy**: subclass :class:`RevenueStrategy`, implement the four
kernels, and call :func:`register_revenue_strategy`. The randomized parity
fuzzer and ``repro-pricing bench-revenue`` pick it up by name.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager

import numpy as np

from repro.core.hypergraph import PricingInstance
from repro.core.pricing import PricingFunction, segment_sums
from repro.exceptions import PricingError

#: Relative tolerance when comparing price to valuation (shared with
#: :mod:`repro.core.revenue`, which re-exports it as ``PRICE_TOLERANCE``).
PRICE_TOLERANCE = 1e-9


class RevenueStrategy:
    """Base class: the four revenue kernels every strategy implements."""

    name = "abstract"

    def edge_prices(
        self, pricing: PricingFunction, instance: PricingInstance
    ) -> np.ndarray:
        """Price of every hyperedge of ``instance`` under ``pricing``."""
        raise NotImplementedError

    def item_weight_prices(
        self, weights: np.ndarray, instance: PricingInstance
    ) -> np.ndarray:
        """Edge prices of an additive pricing given as a raw weight vector."""
        raise NotImplementedError

    def line_search_gains(
        self,
        residuals: np.ndarray,
        thresholds: np.ndarray,
        candidates: np.ndarray,
        tolerance: float = PRICE_TOLERANCE,
    ) -> np.ndarray:
        """Incident revenue at each candidate weight of a 1-D line search.

        Edge ``e`` (with residual price ``r_e`` and sale threshold ``t_e``)
        sells at candidate ``w`` iff ``w <= t_e (1 + tol) + tol``, paying
        ``r_e + w``; the gain of ``w`` is the sum over sold edges. This is
        :class:`~repro.core.algorithms.local_search.CoordinateAscent`'s
        inner loop.
        """
        raise NotImplementedError

    def grid_revenues(
        self,
        grid: np.ndarray,
        sizes: np.ndarray,
        valuations: np.ndarray,
        tolerance: float = PRICE_TOLERANCE,
    ) -> np.ndarray:
        """Revenue of each uniform item price in ``grid``.

        Edge ``e`` costs ``w * sizes[e]`` and sells iff that is at most
        ``valuations[e] * (1 + tol)`` — the sweep
        :class:`~repro.core.algorithms.powers.GeometricGridItemPricing`
        scores its whole candidate grid with.
        """
        raise NotImplementedError


class ScalarRevenueStrategy(RevenueStrategy):
    """Definition-level evaluation: one Python call per edge/candidate.

    This is the pre-vectorization code path, kept byte-for-byte as the
    parity oracle — every other strategy must reproduce its decisions.
    """

    name = "scalar"

    def edge_prices(self, pricing, instance):
        return np.array(
            [pricing.price(edge) for edge in instance.edges], dtype=np.float64
        )

    def item_weight_prices(self, weights, instance):
        return np.array(
            [sum(weights[item] for item in edge) for edge in instance.edges],
            dtype=np.float64,
        )

    def line_search_gains(self, residuals, thresholds, candidates,
                          tolerance=PRICE_TOLERANCE):
        gains = np.empty(len(candidates), dtype=np.float64)
        for position, weight in enumerate(candidates):
            sold = weight <= thresholds * (1.0 + tolerance) + tolerance
            gains[position] = float((residuals[sold] + weight).sum())
        return gains

    def grid_revenues(self, grid, sizes, valuations, tolerance=PRICE_TOLERANCE):
        revenues = np.empty(len(grid), dtype=np.float64)
        for position, price in enumerate(grid):
            bundle_prices = price * sizes
            sold = bundle_prices <= valuations * (1.0 + tolerance)
            revenues[position] = float(bundle_prices[sold].sum())
        return revenues


class VectorizedRevenueStrategy(RevenueStrategy):
    """Array evaluation over the hypergraph's CSR incidence blocks."""

    name = "vectorized"

    def edge_prices(self, pricing, instance):
        indptr, items = instance.hypergraph.edge_member_matrix()
        return pricing.price_edges_arrays(indptr, items)

    def item_weight_prices(self, weights, instance):
        indptr, items = instance.hypergraph.edge_member_matrix()
        return segment_sums(np.asarray(weights, dtype=np.float64)[items], indptr)

    def line_search_gains(self, residuals, thresholds, candidates,
                          tolerance=PRICE_TOLERANCE):
        # Sort the (tolerance-adjusted) thresholds once; each candidate's
        # sold set is then a suffix, its residual mass a precomputed suffix
        # sum, and its position one binary search. The elementwise
        # comparison `w <= t_adj` and the searchsorted cut decide on the
        # *same* adjusted floats, so decisions match the scalar oracle
        # exactly — O((d + c) log d) replacing the O(d * c) scan.
        adjusted = thresholds * (1.0 + tolerance) + tolerance
        order = np.argsort(adjusted, kind="stable")
        sorted_adjusted = adjusted[order]
        suffix = np.zeros(len(thresholds) + 1, dtype=np.float64)
        suffix[:-1] = np.cumsum(residuals[order][::-1])[::-1]
        positions = np.searchsorted(sorted_adjusted, candidates, side="left")
        counts = len(thresholds) - positions
        return suffix[positions] + candidates * counts

    def grid_revenues(self, grid, sizes, valuations, tolerance=PRICE_TOLERANCE):
        bundle_prices = np.multiply.outer(np.asarray(grid), sizes)
        sold = bundle_prices <= valuations[np.newaxis, :] * (1.0 + tolerance)
        return np.where(sold, bundle_prices, 0.0).sum(axis=1)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: dict[str, Callable[[], RevenueStrategy]] = {}


def register_revenue_strategy(
    name: str, factory: Callable[[], RevenueStrategy]
) -> None:
    """Register a strategy ``factory()`` under ``name`` (lowercase)."""
    key = name.lower()
    if key in _REGISTRY:
        raise PricingError(f"revenue strategy {name!r} is already registered")
    _REGISTRY[key] = factory


def get_revenue_strategy(name: str) -> RevenueStrategy:
    """Instantiate a registered revenue strategy by name."""
    try:
        factory = _REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise PricingError(
            f"unknown revenue strategy {name!r} (known: {known})"
        ) from None
    return factory()


def available_revenue_strategies() -> list[str]:
    """Sorted names of every registered revenue strategy."""
    return sorted(_REGISTRY)


register_revenue_strategy(ScalarRevenueStrategy.name, ScalarRevenueStrategy)
register_revenue_strategy(VectorizedRevenueStrategy.name, VectorizedRevenueStrategy)


# ---------------------------------------------------------------------------
# Facade
# ---------------------------------------------------------------------------


class RevenueEvaluator:
    """Facade over a revenue strategy, with per-kernel diagnostics.

    Mirrors :class:`~repro.qirana.conflict.ConflictSetEngine`: construct it
    with a strategy name (or instance), then every kernel call is timed and
    counted under that strategy's name in :attr:`diagnostics` — the counters
    benchmarks use to prove the vectorized path actually decided.
    """

    def __init__(
        self,
        strategy: str | RevenueStrategy = "vectorized",
        tolerance: float = PRICE_TOLERANCE,
    ):
        if isinstance(strategy, str):
            strategy = get_revenue_strategy(strategy)
        self.strategy = strategy
        self.tolerance = tolerance
        #: Per-strategy counters: evaluations, edges, line_searches,
        #: grid_sweeps, wall_time_seconds.
        self.diagnostics: dict[str, dict[str, float]] = {}

    @property
    def strategy_name(self) -> str:
        return self.strategy.name

    def _record(self, counter: str, amount: float, seconds: float) -> None:
        record = self.diagnostics.setdefault(
            self.strategy.name,
            {
                "evaluations": 0,
                "edges": 0,
                "line_searches": 0,
                "grid_sweeps": 0,
                "wall_time_seconds": 0.0,
            },
        )
        record[counter] += amount
        record["wall_time_seconds"] += seconds

    def evaluate(
        self,
        pricing: PricingFunction,
        instance: PricingInstance,
        tolerance: float | None = None,
    ) -> "RevenueReport":
        """Offer ``pricing`` to every buyer of ``instance``."""
        from repro.core.revenue import RevenueReport

        tolerance = self.tolerance if tolerance is None else tolerance
        start = time.perf_counter()
        prices = self.strategy.edge_prices(pricing, instance)
        # p <= v with relative tolerance: p <= v * (1 + tol) + tol.
        sold = prices <= instance.valuations * (1.0 + tolerance) + tolerance
        revenue = float(prices[sold].sum())
        self._record("evaluations", 1, time.perf_counter() - start)
        self._record("edges", instance.num_edges, 0.0)
        return RevenueReport(
            revenue=revenue,
            num_sold=int(sold.sum()),
            num_edges=instance.num_edges,
            prices=prices,
            sold=sold,
        )

    def revenue_of_item_weights(
        self,
        weights: np.ndarray,
        instance: PricingInstance,
        tolerance: float | None = None,
    ) -> float:
        """Fast path: revenue of an additive pricing as a weight vector."""
        tolerance = self.tolerance if tolerance is None else tolerance
        start = time.perf_counter()
        prices = self.strategy.item_weight_prices(weights, instance)
        sold = prices <= instance.valuations * (1.0 + tolerance) + tolerance
        revenue = float(prices[sold].sum())
        self._record("evaluations", 1, time.perf_counter() - start)
        self._record("edges", instance.num_edges, 0.0)
        return revenue

    def item_weight_prices(
        self, weights: np.ndarray, instance: PricingInstance
    ) -> np.ndarray:
        """Edge-price vector of an additive weight vector (timed)."""
        start = time.perf_counter()
        prices = self.strategy.item_weight_prices(weights, instance)
        self._record("evaluations", 1, time.perf_counter() - start)
        self._record("edges", instance.num_edges, 0.0)
        return prices

    def line_search_gains(
        self,
        residuals: np.ndarray,
        thresholds: np.ndarray,
        candidates: np.ndarray,
        tolerance: float | None = None,
    ) -> np.ndarray:
        tolerance = self.tolerance if tolerance is None else tolerance
        start = time.perf_counter()
        gains = self.strategy.line_search_gains(
            residuals, thresholds, candidates, tolerance
        )
        self._record("line_searches", 1, time.perf_counter() - start)
        return gains

    def grid_revenues(
        self,
        grid: np.ndarray,
        sizes: np.ndarray,
        valuations: np.ndarray,
        tolerance: float | None = None,
    ) -> np.ndarray:
        tolerance = self.tolerance if tolerance is None else tolerance
        start = time.perf_counter()
        revenues = self.strategy.grid_revenues(grid, sizes, valuations, tolerance)
        self._record("grid_sweeps", 1, time.perf_counter() - start)
        return revenues


# ---------------------------------------------------------------------------
# Module-level default (what compute_revenue and the algorithms use)
# ---------------------------------------------------------------------------

_DEFAULT_EVALUATOR = RevenueEvaluator("vectorized")


def default_evaluator() -> RevenueEvaluator:
    """The process-wide evaluator backing ``compute_revenue``."""
    return _DEFAULT_EVALUATOR


def set_default_evaluator(
    evaluator: RevenueEvaluator | str,
) -> RevenueEvaluator:
    """Swap the process-wide evaluator; returns the previous one."""
    global _DEFAULT_EVALUATOR
    if isinstance(evaluator, str):
        evaluator = RevenueEvaluator(evaluator)
    previous = _DEFAULT_EVALUATOR
    _DEFAULT_EVALUATOR = evaluator
    return previous


@contextmanager
def use_strategy(
    strategy: str | RevenueStrategy | RevenueEvaluator,
) -> Iterator[RevenueEvaluator]:
    """Scope the default evaluator to ``strategy`` (name, strategy, or
    evaluator); yields the active evaluator so callers can inspect its
    diagnostics afterwards."""
    evaluator = (
        strategy
        if isinstance(strategy, RevenueEvaluator)
        else RevenueEvaluator(strategy)
    )
    previous = set_default_evaluator(evaluator)
    try:
        yield evaluator
    finally:
        set_default_evaluator(previous)
