"""Serialization of pricing functions and market state.

A broker re-optimizes prices offline and ships the result to the serving
tier; these helpers round-trip the three pricing families, the broker's
bundle cache, the transaction ledger, per-buyer purchase histories, and the
canonical quote cache through plain JSON — no pickle, no code execution on
load. The full :class:`MarketState` is what
:meth:`repro.service.server.PricingService.snapshot` / ``restore`` (and the
sharded service's equivalents) persist across serving-tier restarts, so a
restarted tier starts warm instead of recomputing its working set.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core.algorithms.exact import TabularSetPricing
from repro.core.pricing import (
    ItemPricing,
    PricingFunction,
    UniformBundlePricing,
    XOSPricing,
)
from repro.exceptions import PricingError, SnapshotError
from repro.qirana.broker import Transaction
from repro.qirana.history import HistoryAwareLedger


def pricing_to_dict(pricing: PricingFunction) -> dict:
    """JSON-serializable representation of a pricing function."""
    if isinstance(pricing, UniformBundlePricing):
        return {"family": "uniform-bundle", "price": pricing.bundle_price}
    if isinstance(pricing, XOSPricing):
        return {
            "family": "xos",
            "components": [component.weights.tolist() for component in pricing.components],
        }
    if isinstance(pricing, ItemPricing):
        return {"family": "item", "weights": pricing.weights.tolist()}
    if isinstance(pricing, TabularSetPricing):
        return {
            "family": "tabular",
            "universe": sorted(pricing.universe),
            # JSON keys must be strings; encode each subset as a sorted
            # comma-separated item list ("" for the empty set).
            "table": {
                ",".join(str(item) for item in sorted(subset)): price
                for subset, price in pricing.table.items()
            },
        }
    raise PricingError(
        f"cannot serialize pricing family {type(pricing).__name__!r}"
    )


def pricing_from_dict(payload: dict) -> PricingFunction:
    """Inverse of :func:`pricing_to_dict`."""
    family = payload.get("family")
    if family == "uniform-bundle":
        return UniformBundlePricing(float(payload["price"]))
    if family == "item":
        return ItemPricing(np.asarray(payload["weights"], dtype=float))
    if family == "xos":
        return XOSPricing([np.asarray(w, dtype=float) for w in payload["components"]])
    if family == "tabular":
        table = {}
        for key, price in payload["table"].items():
            items = [int(item) for item in key.split(",")] if key else []
            table[frozenset(items)] = float(price)
        return TabularSetPricing(payload["universe"], table)
    raise PricingError(f"unknown pricing family in payload: {family!r}")


def save_pricing(pricing: PricingFunction, path: str | Path) -> None:
    """Write a pricing function to a JSON file."""
    Path(path).write_text(json.dumps(pricing_to_dict(pricing), indent=2))


def load_pricing(path: str | Path) -> PricingFunction:
    """Read a pricing function from a JSON file."""
    return pricing_from_dict(json.loads(Path(path).read_text()))


def bundles_to_dict(bundles: dict[str, frozenset[int]]) -> dict:
    """Serialize a query-text -> conflict-set cache."""
    return {text: sorted(bundle) for text, bundle in bundles.items()}


def bundles_from_dict(payload: dict) -> dict[str, frozenset[int]]:
    """Inverse of :func:`bundles_to_dict`."""
    return {text: frozenset(items) for text, items in payload.items()}


@dataclass(frozen=True)
class QuoteEntry:
    """One persisted canonical-cache entry: a priced, served quote.

    ``key`` is the plan-level canonical fingerprint
    (:func:`repro.service.canonical.canonical_key`) — a SHA-256 digest of
    the normalized plan, so it is stable across restarts and processes and
    a restored tier routes/caches the entry exactly where a fresh
    computation would have.
    """

    key: str
    query_text: str
    price: float
    bundle: frozenset[int]


@dataclass(frozen=True)
class MarketState:
    """Everything a serving tier restores after a restart.

    ``owned`` / ``total_paid`` are the
    :class:`~repro.qirana.history.HistoryAwareLedger` fields: the union of
    bundles each buyer holds, and what they have cumulatively paid — without
    them a restart would re-charge returning buyers full freight.
    ``quotes`` is the canonical quote cache: persisting it lets a restarted
    tier serve its previous working set as cache hits without touching the
    conflict engine (warm start).
    """

    pricing: PricingFunction
    bundles: dict[str, frozenset[int]]
    transactions: tuple[Transaction, ...] = ()
    owned: dict[str, frozenset[int]] = field(default_factory=dict)
    total_paid: dict[str, float] = field(default_factory=dict)
    quotes: tuple[QuoteEntry, ...] = ()
    #: High-water data version of the delta log at snapshot time. A warm
    #: restore refuses snapshots older than the live log (stale bundles).
    data_version: int = 0


def save_market_state(
    pricing: PricingFunction,
    bundles: dict[str, frozenset[int]],
    path: str | Path,
    *,
    transactions: list[Transaction] | tuple[Transaction, ...] = (),
    ledger: HistoryAwareLedger | None = None,
    quotes: list[QuoteEntry] | tuple[QuoteEntry, ...] = (),
    data_version: int = 0,
) -> None:
    """Persist everything the serving tier needs.

    Prices and known bundles as before, plus (when given) the completed-sale
    ledger, the history-aware ledger's per-buyer holdings/payments, and the
    canonical quote-cache entries that make a restart warm.
    """
    payload = {
        "pricing": pricing_to_dict(pricing),
        "bundles": bundles_to_dict(bundles),
        "transactions": [
            {"buyer": t.buyer, "query_text": t.query_text, "price": t.price}
            for t in transactions
        ],
        "history": {
            "owned": (
                {buyer: sorted(bundle) for buyer, bundle in ledger.owned.items()}
                if ledger is not None
                else {}
            ),
            "total_paid": dict(ledger.total_paid) if ledger is not None else {},
        },
        "quotes": [
            {
                "key": entry.key,
                "query_text": entry.query_text,
                "price": entry.price,
                "bundle": sorted(entry.bundle),
            }
            for entry in quotes
        ],
        "data_version": data_version,
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_market_state(path: str | Path) -> MarketState:
    """Inverse of :func:`save_market_state`.

    Files written before transactions/history were persisted load with
    empty ledgers (missing keys default), so old snapshots stay readable.
    A truncated, corrupt, or unreadable file raises a typed
    :class:`~repro.exceptions.SnapshotError` naming the path — never a
    bare ``KeyError``/``JSONDecodeError`` — and raises it *before* any
    caller state could have been touched, so ``restore`` is all-or-nothing.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise SnapshotError(f"cannot read snapshot {path}: {exc}") from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SnapshotError(
            f"corrupt snapshot {path}: not valid JSON ({exc})"
        ) from exc
    if not isinstance(payload, dict):
        raise SnapshotError(
            f"corrupt snapshot {path}: expected a JSON object, "
            f"got {type(payload).__name__}"
        )
    try:
        return _market_state_from_payload(payload)
    except (KeyError, TypeError, ValueError, AttributeError, PricingError) as exc:
        raise SnapshotError(
            f"corrupt snapshot {path}: {type(exc).__name__}: {exc}"
        ) from exc


def _market_state_from_payload(payload: dict) -> MarketState:
    history = payload.get("history", {})
    return MarketState(
        pricing=pricing_from_dict(payload["pricing"]),
        bundles=bundles_from_dict(payload["bundles"]),
        transactions=tuple(
            Transaction(str(t["buyer"]), str(t["query_text"]), float(t["price"]))
            for t in payload.get("transactions", [])
        ),
        owned={
            str(buyer): frozenset(int(item) for item in items)
            for buyer, items in history.get("owned", {}).items()
        },
        total_paid={
            str(buyer): float(paid)
            for buyer, paid in history.get("total_paid", {}).items()
        },
        quotes=tuple(
            QuoteEntry(
                key=str(entry["key"]),
                query_text=str(entry["query_text"]),
                price=float(entry["price"]),
                bundle=frozenset(int(item) for item in entry["bundle"]),
            )
            for entry in payload.get("quotes", [])
        ),
        data_version=int(payload.get("data_version", 0)),
    )
