"""Support-set machinery.

Qirana prices queries relative to a *support set* ``S`` of alternative
database instances. Following the paper (Section 6.1), instances are sampled
as "neighbors" of the seller's database ``D`` — they differ from ``D`` in a
few cells — so each instance is stored as a small set of
:class:`~repro.support.delta.CellDelta` patches rather than a full copy.
"""

from repro.support.delta import CellDelta, SupportInstance
from repro.support.designer import DesignReport, SupportDesigner, designed_support
from repro.support.generator import NeighborSampler, SupportSet

__all__ = [
    "CellDelta",
    "DesignReport",
    "NeighborSampler",
    "SupportDesigner",
    "SupportInstance",
    "SupportSet",
    "designed_support",
]
