"""Aggregate functions for GROUP BY evaluation.

All aggregates skip NULL inputs, except ``COUNT(*)`` which counts rows.
``AVG`` returns a float; ``SUM`` over an empty (or all-NULL) input is NULL,
matching SQL semantics.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.db.schema import Value
from repro.exceptions import QueryError

#: Names of the supported aggregate functions (lowercase).
AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


def is_aggregate_name(name: str) -> bool:
    """Whether ``name`` refers to a supported aggregate function."""
    return name.lower() in AGGREGATE_NAMES


def compute_aggregate(
    name: str,
    values: Iterable[Value],
    distinct: bool = False,
    count_star: bool = False,
) -> Value:
    """Evaluate aggregate ``name`` over ``values``.

    Parameters
    ----------
    name:
        One of ``count``, ``sum``, ``avg``, ``min``, ``max``.
    values:
        Input values for the group (one per row).
    distinct:
        Deduplicate non-NULL inputs first (``COUNT(DISTINCT c)`` etc.).
    count_star:
        For ``count``: count every row including NULLs (``COUNT(*)``).
    """
    name = name.lower()
    if name not in AGGREGATE_NAMES:
        raise QueryError(f"unknown aggregate function {name!r}")

    materialized = list(values)
    if name == "count" and count_star:
        return len(materialized)

    non_null = [value for value in materialized if value is not None]
    if distinct:
        non_null = list(dict.fromkeys(non_null))

    if name == "count":
        return len(non_null)
    if not non_null:
        return None
    if name == "sum":
        return sum(non_null)
    if name == "avg":
        return sum(non_null) / len(non_null)
    if name == "min":
        return min(non_null)
    return max(non_null)
