"""Columnar batch evaluation vs the scalar path (differential tests).

``Expr.eval_batch`` must agree with ``Expr.bind`` on every expression type,
including NULL semantics; ``PlanNode.execute_batch`` must agree with
``execute`` on the flat shapes it supports and raise cleanly elsewhere.
"""

import pytest

from repro.db.columnar import (
    ColumnarBatch,
    null_aware_neq,
    table_batch,
    truth,
    vector_from_values,
)
from repro.db.database import Database
from repro.db.expr import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    InList,
    IsNull,
    Like,
    Literal,
    Not,
    Or,
)
from repro.db.plan import Aggregate, Filter, Project, ProjectItem, TableScan
from repro.db.query import sql_query
from repro.db.relation import Relation
from repro.db.schema import Column, ColumnType, TableSchema
from repro.exceptions import QueryError


@pytest.fixture
def db():
    table = Relation(
        TableSchema(
            "T",
            (
                Column("i", ColumnType.INT),
                Column("f", ColumnType.FLOAT),
                Column("s", ColumnType.TEXT),
            ),
        )
    )
    table.insert_many(
        [
            (1, 1.5, "alpha"),
            (2, None, "beta"),
            (None, 2.5, None),
            (4, 0.0, "gamma"),
            (0, -1.0, "alp"),
        ]
    )
    return Database("cols", [table])


def batch_of(db):
    return table_batch(db.table("T"))


def rows_of(db):
    return db.table("T").rows


EXPRESSIONS = [
    Comparison("=", ColumnRef("i"), Literal(2)),
    Comparison("!=", ColumnRef("s"), Literal("beta")),
    Comparison("<", ColumnRef("f"), Literal(2.0)),
    Comparison(">=", ColumnRef("i"), ColumnRef("f")),
    Between(ColumnRef("i"), Literal(1), Literal(3)),
    Like(ColumnRef("s"), "alp%"),
    Like(ColumnRef("s"), "alp%", negated=True),
    InList(ColumnRef("i"), (1, 4)),
    InList(ColumnRef("s"), ("beta", "gamma"), negated=True),
    IsNull(ColumnRef("f")),
    IsNull(ColumnRef("s"), negated=True),
    And(Comparison(">", ColumnRef("i"), Literal(0)), IsNull(ColumnRef("f"), negated=True)),
    Or(Comparison("=", ColumnRef("s"), Literal("beta")), Comparison("<", ColumnRef("i"), Literal(2))),
    Not(Comparison("=", ColumnRef("i"), Literal(1))),
    Arithmetic("+", ColumnRef("i"), Literal(10)),
    Arithmetic("*", ColumnRef("f"), ColumnRef("i")),
    Arithmetic("/", ColumnRef("i"), ColumnRef("f")),  # div by 0.0 -> NULL
    Arithmetic("-", ColumnRef("i"), ColumnRef("i")),
    Literal(None),
    Literal("const"),
    ColumnRef("s"),
]


@pytest.mark.parametrize("expression", EXPRESSIONS, ids=lambda e: type(e).__name__ + str(id(e) % 97))
def test_eval_batch_matches_bind(db, expression):
    scan = TableScan("T")
    scope = scan.output_scope(db)
    scalar = expression.bind(scope)
    batched = expression.eval_batch(scope)(batch_of(db))
    for index, row in enumerate(rows_of(db)):
        assert batched.value_at(index) == scalar(row), (index, row)


def test_mixed_kind_ordering_raises(db):
    scope = TableScan("T").output_scope(db)
    evaluate = Comparison("<", ColumnRef("s"), Literal(1)).eval_batch(scope)
    with pytest.raises(QueryError):
        evaluate(batch_of(db))


def test_truth_of_numeric_and_object_vectors():
    numeric = vector_from_values([1, 0, None, 2], ColumnType.INT)
    assert list(truth(numeric)) == [True, False, False, True]
    text = vector_from_values(["x", "", None], ColumnType.TEXT)
    assert list(truth(text)) == [True, False, False]


def test_null_aware_neq_treats_null_as_equal_to_null():
    a = vector_from_values([1, None, 3, None], ColumnType.INT)
    b = vector_from_values([1, None, 4, 5], ColumnType.INT)
    assert list(null_aware_neq(a, b)) == [False, False, True, True]


def test_table_scan_execute_batch_roundtrip(db):
    batch = TableScan("T").execute_batch(db)
    assert batch.num_rows == len(rows_of(db))
    for index, row in enumerate(rows_of(db)):
        assert tuple(
            column.value_at(index) for column in batch.columns
        ) == row


def test_filter_project_execute_batch_matches_execute(db):
    plan = Project(
        Filter(TableScan("T"), Comparison(">", ColumnRef("i"), Literal(0))),
        [
            ProjectItem(ColumnRef("s"), "s"),
            ProjectItem(Arithmetic("*", ColumnRef("i"), Literal(2)), "d"),
        ],
    )
    expected = plan.execute(db)
    batch = plan.execute_batch(db)
    got = [
        tuple(column.value_at(index) for column in batch.columns)
        for index in range(batch.num_rows)
    ]
    assert got == expected


def test_unsupported_node_raises(db):
    from repro.db.plan import Sort, SortKey

    plan = Sort(TableScan("T"), [SortKey(ColumnRef("i"))])
    with pytest.raises(QueryError):
        plan.execute_batch(db)


def _batch_rows(batch):
    return [
        tuple(column.value_at(index) for column in batch.columns)
        for index in range(batch.num_rows)
    ]


def test_aggregate_execute_batch_matches_execute(db):
    from repro.db.plan import AggregateSpec

    plan = Aggregate(
        TableScan("T"),
        [ProjectItem(ColumnRef("s"), "_g0")],
        [
            AggregateSpec("count", None, "_a0"),
            AggregateSpec("count", ColumnRef("f"), "_a1"),
            AggregateSpec("sum", ColumnRef("i"), "_a2"),
            AggregateSpec("min", ColumnRef("f"), "_a3"),
            AggregateSpec("max", ColumnRef("i"), "_a4"),
        ],
    )
    assert _batch_rows(plan.execute_batch(db)) == plan.execute(db)


def test_scalar_aggregate_execute_batch_empty_input(db):
    from repro.db.plan import AggregateSpec

    # SQL scalar-aggregate rule: an empty input still yields one output row.
    plan = Aggregate(
        Filter(TableScan("T"), Comparison(">", ColumnRef("i"), Literal(100))),
        [],
        [AggregateSpec("count", None, "_a0"), AggregateSpec("sum", ColumnRef("i"), "_a1")],
    )
    assert _batch_rows(plan.execute_batch(db)) == plan.execute(db) == [(0, None)]


def test_hash_join_execute_batch_matches_execute():
    from repro.db.plan import HashJoin

    left = Relation(
        TableSchema("L", (Column("k", ColumnType.INT), Column("a", ColumnType.TEXT)))
    )
    left.insert_many([(1, "x"), (2, "y"), (None, "z"), (1, "w")])
    right = Relation(
        TableSchema("R", (Column("k", ColumnType.INT), Column("b", ColumnType.FLOAT)))
    )
    right.insert_many([(1, 0.5), (1, 1.5), (3, 2.5), (None, 3.5)])
    join_db = Database("join", [left, right])
    plan = HashJoin(
        TableScan("L"), TableScan("R"),
        [ColumnRef("k", "l")], [ColumnRef("k", "r")],
    )
    # Output order matters: left-major with right matches in row order.
    assert _batch_rows(plan.execute_batch(join_db)) == plan.execute(join_db)


def test_hash_join_execute_batch_rejects_source_substitution(db):
    from repro.db.plan import HashJoin

    plan = HashJoin(
        TableScan("T"), TableScan("T", alias="U"),
        [ColumnRef("i", "t")], [ColumnRef("i", "u")],
    )
    with pytest.raises(QueryError, match="source"):
        plan.execute_batch(db, source=batch_of(db))


def test_execute_batch_with_source_substitution(db):
    # Substituting the scan input is how the conflict engine pushes patched
    # rows through a plan fragment.
    scan = TableScan("T")
    scope = scan.output_scope(db)
    source = ColumnarBatch(
        scope,
        [
            vector_from_values([7, None], ColumnType.INT),
            vector_from_values([1.0, 2.0], ColumnType.FLOAT),
            vector_from_values(["q", "r"], ColumnType.TEXT),
        ],
        2,
    )
    plan = Filter(scan, Comparison(">", ColumnRef("i"), Literal(0)))
    batch = plan.execute_batch(db, source)
    assert batch.num_rows == 1
    assert batch.columns[2].value_at(0) == "q"


def test_sql_flat_plan_batch_matches_scalar(db):
    query = sql_query("select s, i from T where i between 1 and 4", db)
    expected = query.run(db).rows
    batch = query.plan.execute_batch(db)
    got = [
        tuple(column.value_at(index) for column in batch.columns)
        for index in range(batch.num_rows)
    ]
    assert got == expected
