"""The Layering algorithm (Algorithm 1 of the paper).

Repeatedly peel a *minimal* set cover of the remaining items: by minimality,
every hyperedge in the cover owns an item unique within the cover, so pricing
each edge's unique item at ``v_e`` (and everything else at 0) extracts the
full value of the layer. Keep the most valuable layer. Since each peel
reduces every item's degree by at least one, there are at most ``B`` layers,
giving a ``B``-approximation in ``O(Bm)`` time.

The minimal cover is built greedily (largest uncovered gain first) and then
pruned: an edge is dropped if the remaining edges still cover the layer
universe, which restores minimality and hence the unique-item property.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm
from repro.core.hypergraph import PricingInstance
from repro.core.pricing import ItemPricing, PricingFunction


def minimal_cover(edge_ids: list[int], edges: list[frozenset[int]]) -> list[int]:
    """A minimal set cover of ``union of edges[edge_ids]`` by those edges.

    Greedy max-gain construction followed by a pruning pass. The result
    covers the same universe, and no edge can be removed — hence each chosen
    edge has an item not present in any other chosen edge.
    """
    universe: set[int] = set()
    for edge_id in edge_ids:
        universe |= edges[edge_id]
    if not universe:
        return []

    uncovered = set(universe)
    chosen: list[int] = []
    candidates = sorted(edge_ids, key=lambda edge_id: len(edges[edge_id]), reverse=True)
    for edge_id in candidates:
        if not uncovered:
            break
        gain = uncovered & edges[edge_id]
        if gain:
            chosen.append(edge_id)
            uncovered -= gain
    # Greedy by static size is not max-residual-gain greedy; make sure we
    # actually covered everything (we always do: any uncovered item belongs
    # to some candidate edge, which would have been chosen).
    if uncovered:  # pragma: no cover - defensive
        for edge_id in candidates:
            if uncovered & edges[edge_id]:
                chosen.append(edge_id)
                uncovered -= edges[edge_id]
            if not uncovered:
                break

    # Prune to minimality: drop edges whose items are all covered elsewhere.
    coverage = Counter()
    for edge_id in chosen:
        coverage.update(edges[edge_id])
    pruned: list[int] = []
    for edge_id in sorted(chosen, key=lambda eid: len(edges[eid])):
        if all(coverage[item] > 1 for item in edges[edge_id]):
            for item in edges[edge_id]:
                coverage[item] -= 1
        else:
            pruned.append(edge_id)
    return pruned


def unique_items(cover: list[int], edges: list[frozenset[int]]) -> dict[int, int]:
    """Map each cover edge to one item unique to it within the cover."""
    coverage = Counter()
    for edge_id in cover:
        coverage.update(edges[edge_id])
    assignment: dict[int, int] = {}
    for edge_id in cover:
        for item in edges[edge_id]:
            if coverage[item] == 1:
                assignment[edge_id] = item
                break
    return assignment


class Layering(PricingAlgorithm):
    """Fast B-approximation via layered minimal set covers."""

    name = "layering"

    def compute_pricing(self, instance: PricingInstance) -> tuple[PricingFunction, dict]:
        edges = instance.edges
        valuations = instance.valuations
        remaining = [index for index in range(instance.num_edges) if edges[index]]

        best_layer: list[int] = []
        best_value = 0.0
        num_layers = 0

        while remaining:
            cover = minimal_cover(remaining, edges)
            num_layers += 1
            layer_value = float(valuations[cover].sum()) if cover else 0.0
            if layer_value > best_value:
                best_value = layer_value
                best_layer = cover
            covered = set(cover)
            remaining = [index for index in remaining if index not in covered]

        weights = np.zeros(instance.num_items)
        assignment = unique_items(best_layer, edges)
        for edge_id, item in assignment.items():
            weights[item] = float(valuations[edge_id])

        return ItemPricing(weights), {
            "num_layers": num_layers,
            "best_layer_size": len(best_layer),
            "best_layer_value": best_value,
        }
