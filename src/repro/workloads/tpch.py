"""TPC-H-shaped dataset and the 220-query workload (Appendix C).

The paper generates 220 queries from seven TPC-H templates:

- Q1, Q4, Q6, Q12 parameterized by year        -> 20 queries,
- Q2 parameterized by region                   ->  5 queries,
- Q2 parameterized by material (p_type suffix) ->  5 queries,
- Q16 parameterized over the 150 p_type values -> 150 queries,
- Q17 parameterized over the 40 containers     ->  40 queries.

The original templates contain subqueries/EXISTS; like the authors (who could
only run the Qirana-supported subset) we use join/aggregate phrasings that
keep the same parameterization and data access pattern. Dataset cardinalities
are laptop-scale but preserve the domains that matter: exactly 150 part
types, 40 containers, 25 brands — with fewer part rows than types, so a
handful of Q16 queries have empty conflict sets, reproducing the paper's
"eleven edges with size zero" structure (Figure 4c).
"""

from __future__ import annotations

import numpy as np

from repro.db.database import Database
from repro.db.query import Query, sql_query
from repro.db.relation import Relation
from repro.db.schema import Column, ColumnType, TableSchema
from repro.workloads.base import Workload

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
MATERIALS = ("BRASS", "TIN", "COPPER", "STEEL", "NICKEL")
TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
CONTAINER_SYLLABLE_1 = ("SM", "LG", "MED", "JUMBO", "WRAP")
CONTAINER_SYLLABLE_2 = ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
YEARS = (1993, 1994, 1995, 1996, 1997)
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
SHIP_MODES = ("AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR")


def part_types() -> list[str]:
    """All 150 TPC-H part types (6 x 5 x 5 syllables)."""
    return [
        f"{a} {b} {c}"
        for a in TYPE_SYLLABLE_1
        for b in TYPE_SYLLABLE_2
        for c in MATERIALS
    ]


def containers() -> list[str]:
    """All 40 TPC-H containers (5 x 8 syllables)."""
    return [f"{a} {b}" for a in CONTAINER_SYLLABLE_1 for b in CONTAINER_SYLLABLE_2]


def tpch_database(scale: float = 1.0, seed: int = 17) -> Database:
    """Laptop-scale TPC-H-shaped database (``scale`` multiplies row counts)."""
    rng = np.random.default_rng(seed)
    num_parts = max(150, int(400 * scale))
    num_suppliers = max(25, int(100 * scale))
    num_partsupp = max(num_parts, int(800 * scale))
    num_orders = max(50, int(600 * scale))
    num_lineitems = max(num_orders, int(2400 * scale))

    region = Relation(
        TableSchema(
            "Region",
            (Column("r_regionkey", ColumnType.INT), Column("r_name", ColumnType.TEXT)),
            primary_key=("r_regionkey",),
        )
    )
    for key, name in enumerate(REGIONS):
        region.insert((key, name))

    nation = Relation(
        TableSchema(
            "Nation",
            (
                Column("n_nationkey", ColumnType.INT),
                Column("n_name", ColumnType.TEXT),
                Column("n_regionkey", ColumnType.INT),
            ),
            primary_key=("n_nationkey",),
        )
    )
    for key in range(25):
        nation.insert((key, f"NATION{key:02d}", key % len(REGIONS)))

    all_types = part_types()
    all_containers = containers()
    brands = [f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6)]
    part = Relation(
        TableSchema(
            "Part",
            (
                Column("p_partkey", ColumnType.INT),
                Column("p_name", ColumnType.TEXT),
                Column("p_brand", ColumnType.TEXT),
                Column("p_type", ColumnType.TEXT),
                Column("p_container", ColumnType.TEXT),
                Column("p_size", ColumnType.INT),
                Column("p_retailprice", ColumnType.FLOAT),
            ),
            primary_key=("p_partkey",),
        )
    )
    for key in range(num_parts):
        part.insert(
            (
                key,
                f"part{key:05d}",
                brands[int(rng.integers(len(brands)))],
                all_types[int(rng.integers(len(all_types)))],
                all_containers[int(rng.integers(len(all_containers)))],
                int(rng.integers(1, 51)),
                float(np.round(rng.uniform(900, 2100), 2)),
            )
        )

    supplier = Relation(
        TableSchema(
            "Supplier",
            (
                Column("s_suppkey", ColumnType.INT),
                Column("s_name", ColumnType.TEXT),
                Column("s_nationkey", ColumnType.INT),
                Column("s_acctbal", ColumnType.FLOAT),
            ),
            primary_key=("s_suppkey",),
        )
    )
    for key in range(num_suppliers):
        supplier.insert(
            (
                key,
                f"Supplier{key:04d}",
                int(rng.integers(25)),
                float(np.round(rng.uniform(-999, 9999), 2)),
            )
        )

    partsupp = Relation(
        TableSchema(
            "PartSupp",
            (
                Column("ps_partkey", ColumnType.INT),
                Column("ps_suppkey", ColumnType.INT),
                Column("ps_availqty", ColumnType.INT),
                Column("ps_supplycost", ColumnType.FLOAT),
            ),
            primary_key=("ps_partkey", "ps_suppkey"),
        )
    )
    seen_pairs: set[tuple[int, int]] = set()
    while len(seen_pairs) < num_partsupp:
        pair = (int(rng.integers(num_parts)), int(rng.integers(num_suppliers)))
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        partsupp.insert(
            (
                pair[0],
                pair[1],
                int(rng.integers(1, 10_000)),
                float(np.round(rng.uniform(1, 1000), 2)),
            )
        )

    orders = Relation(
        TableSchema(
            "Orders",
            (
                Column("o_orderkey", ColumnType.INT),
                Column("o_custkey", ColumnType.INT),
                Column("o_orderyear", ColumnType.INT),
                Column("o_orderpriority", ColumnType.TEXT),
                Column("o_totalprice", ColumnType.FLOAT),
            ),
            primary_key=("o_orderkey",),
        )
    )
    for key in range(num_orders):
        orders.insert(
            (
                key,
                int(rng.integers(1, 1000)),
                int(rng.choice(YEARS)),
                ORDER_PRIORITIES[int(rng.integers(len(ORDER_PRIORITIES)))],
                float(np.round(rng.uniform(1000, 500_000), 2)),
            )
        )

    lineitem = Relation(
        TableSchema(
            "LineItem",
            (
                Column("l_orderkey", ColumnType.INT),
                Column("l_partkey", ColumnType.INT),
                Column("l_suppkey", ColumnType.INT),
                Column("l_quantity", ColumnType.INT),
                Column("l_extendedprice", ColumnType.FLOAT),
                Column("l_discount", ColumnType.FLOAT),
                Column("l_returnflag", ColumnType.TEXT),
                Column("l_linestatus", ColumnType.TEXT),
                Column("l_shipyear", ColumnType.INT),
                Column("l_shipmode", ColumnType.TEXT),
            ),
        )
    )
    for _ in range(num_lineitems):
        lineitem.insert(
            (
                int(rng.integers(num_orders)),
                int(rng.integers(num_parts)),
                int(rng.integers(num_suppliers)),
                int(rng.integers(1, 51)),
                float(np.round(rng.uniform(900, 105_000), 2)),
                float(np.round(rng.uniform(0.0, 0.10), 2)),
                "R" if rng.random() < 0.25 else ("A" if rng.random() < 0.5 else "N"),
                "O" if rng.random() < 0.5 else "F",
                int(rng.choice(YEARS)),
                SHIP_MODES[int(rng.integers(len(SHIP_MODES)))],
            )
        )

    return Database(
        "tpch", [region, nation, part, supplier, partsupp, orders, lineitem]
    )


def tpch_queries() -> list[str]:
    """The 220-query workload from the paper's seven templates."""
    texts: list[str] = []
    # Q1 / Q4 / Q6 / Q12 by year: 4 x 5 = 20 queries.
    for year in YEARS:
        texts.append(
            "select l_returnflag, l_linestatus, sum(l_quantity), "
            "sum(l_extendedprice), avg(l_discount), count(*) "
            f"from LineItem where l_shipyear = {year} "
            "group by l_returnflag, l_linestatus"
        )
        texts.append(
            "select o_orderpriority, count(*) from Orders "
            f"where o_orderyear = {year} group by o_orderpriority"
        )
        texts.append(
            "select sum(l_extendedprice * l_discount) from LineItem "
            f"where l_shipyear = {year} "
            "and l_discount between 0.05 and 0.07 and l_quantity < 24"
        )
        texts.append(
            "select L.l_shipmode, count(*) from Orders O, LineItem L "
            f"where O.o_orderkey = L.l_orderkey and L.l_shipyear = {year} "
            "group by L.l_shipmode"
        )
    # Q2 by region: 5 queries.
    for region_name in REGIONS:
        texts.append(
            "select S.s_name, S.s_acctbal from Supplier S, Nation N, Region R "
            "where S.s_nationkey = N.n_nationkey "
            "and N.n_regionkey = R.r_regionkey "
            f"and R.r_name = '{region_name}'"
        )
    # Q2 by material: 5 queries.
    for material in MATERIALS:
        texts.append(
            "select S.s_name, P.p_partkey from Part P, PartSupp PS, Supplier S "
            "where P.p_partkey = PS.ps_partkey "
            "and PS.ps_suppkey = S.s_suppkey "
            f"and P.p_type like '%{material}'"
        )
    # Q16 over all 150 part types.
    for type_name in part_types():
        texts.append(
            "select P.p_brand, count(distinct PS.ps_suppkey) "
            "from Part P, PartSupp PS "
            "where P.p_partkey = PS.ps_partkey "
            f"and P.p_type = '{type_name}' group by P.p_brand"
        )
    # Q17 over all 40 containers.
    for container in containers():
        texts.append(
            "select avg(L.l_quantity) from LineItem L, Part P "
            "where P.p_partkey = L.l_partkey "
            f"and P.p_container = '{container}'"
        )
    return texts


def tpch_workload(scale: float = 1.0, seed: int = 17) -> Workload:
    """The 220-query TPC-H workload."""
    database = tpch_database(scale=scale, seed=seed)
    queries: list[Query] = [sql_query(text, database) for text in tpch_queries()]
    return Workload(
        name="tpch",
        database=database,
        queries=queries,
        description="TPC-H-shaped schema, 220 queries from 7 templates (Appendix C)",
        default_support_size=2000,
    )
