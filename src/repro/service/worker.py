"""The shard worker process of :class:`ProcessShardedPricingService`.

One worker owns one shard: a :class:`~repro.qirana.broker.QueryMarket` over
the shard's partition plus a bounded partial-bundle cache, driven by a
single-threaded request/response loop over a ``multiprocessing`` pipe. The
protocol ships only small, picklable values — query texts, canonical-key
fingerprints, conflict-set id arrays, delta wire dicts — never tensors or
support sets; the big arrays live in shared memory (:mod:`repro.service.shm`)
or were inherited copy-on-write at fork time.

Request kinds:

``compute``
    ``[(key, text), ...]`` → one sorted int64 array of *global* instance
    ids per entry (the shard's partial conflict set). Deduplicated within
    the batch and memoized per canonical key, mirroring the in-process
    shard worker exactly.
``apply_delta``
    A validated delta (wire dict) plus its coordinator-computed routing
    (footprint, added-id homes, retired ids). Applied to the worker's own
    partition copy; single-threaded dispatch *is* the version boundary —
    every compute answered before the ack ran pre-delta, every one after it
    post-delta. Acks the shard's new support ``data_version``.
``seed``
    ``[(key, ids), ...]`` partial-bundle warm-up (snapshot restore and
    crash replay).
``stats`` / ``ping`` / ``shutdown``
    Counters snapshot, heartbeat, graceful exit.

Errors never kill the loop: the response carries the exception's class name
and message, and the coordinator re-raises the matching typed error from
:mod:`repro.exceptions` (:func:`resurrect_error`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro import exceptions
from repro.exceptions import ReproError, ServiceError

__all__ = [
    "WorkerRequest",
    "WorkerResponse",
    "resurrect_error",
    "worker_main",
]


@dataclass(frozen=True)
class WorkerRequest:
    """One framed request on the coordinator → worker pipe."""

    kind: str
    request_id: int
    payload: object = None


@dataclass(frozen=True)
class WorkerResponse:
    """One framed response on the worker → coordinator pipe."""

    request_id: int
    ok: bool
    result: object = None
    error_type: str = ""
    error_message: str = ""


def resurrect_error(response: WorkerResponse) -> ReproError:
    """Rebuild a typed exception from a worker's error response.

    The class is looked up by name in :mod:`repro.exceptions`; anything
    unknown (a worker-side ``KeyError``, say) degrades to
    :class:`ServiceError` with the original type folded into the message,
    so the coordinator never re-raises an arbitrary class from the wire.
    """
    error_class = getattr(exceptions, response.error_type, None)
    if isinstance(error_class, type) and issubclass(error_class, ReproError):
        return error_class(response.error_message)
    return ServiceError(
        f"shard worker failed with {response.error_type}: "
        f"{response.error_message}"
    )


class _WorkerState:
    """Everything one worker process owns: market, caches, counters."""

    def __init__(self, partition, config):
        from repro.qirana.broker import QueryMarket
        from repro.service.cache import LRUCache, QuoteCache
        from repro.service.shm import SegmentRegistry, attach_tensor

        self.partition = partition
        self.shard_id = config["shard_id"]
        self.num_shards = config["num_shards"]
        self.registry = SegmentRegistry()
        # Re-attach every shared tensor by name and install the attached
        # views: the worker's mapping is then explicitly its own (counted in
        # its registry) rather than an accident of fork, and a segment the
        # coordinator already unlinked fails loudly with the typed error.
        for table, layout in config.get("layouts", {}).items():
            inherited = partition.support._delta_tensors.get(table)
            values = (
                {
                    column: patches.values
                    for column, patches in inherited.column_patches.items()
                }
                if inherited is not None
                else {}
            )
            partition.support._delta_tensors[table] = attach_tensor(
                layout, values, self.registry
            )
        self.market = QueryMarket(
            partition.support, conflict_backend=config["conflict_backend"]
        )
        self._bundles = QuoteCache(config["bundle_cache_capacity"])
        self._plans = LRUCache(config["plan_memo_capacity"])
        self.batches = 0
        self.batched_requests = 0

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------

    def _plan(self, text: str):
        from repro.db.query import sql_query

        planned = self._plans.get(text)
        if planned is None:
            planned = sql_query(text, self.market.base)
            self._plans.put(text, planned)
        return planned

    def compute(self, items: list[tuple[str, str]]) -> list[np.ndarray]:
        """Partial conflict sets (global ids) for ``[(key, text), ...]``."""
        from repro.qirana.backends import referenced_columns

        self.batches += 1
        self.batched_requests += len(items)
        resolved: dict[str, np.ndarray] = {}
        missing: dict[str, object] = {}
        for key, text in items:
            if key in resolved or key in missing:
                continue
            partial = self._bundles.get(key)
            if partial is None:
                missing[key] = self._plan(text)
            else:
                resolved[key] = partial
        if missing:
            hypergraph = self.market.engine.build_hypergraph(list(missing.values()))
            for (key, planned), edge in zip(missing.items(), hypergraph.edges):
                local = np.fromiter(edge, dtype=np.int64, count=len(edge))
                partial = np.sort(self.partition.global_ids[local])
                columns = frozenset(referenced_columns(planned, self.market.base))
                self._bundles.put(key, partial, columns=columns)
                resolved[key] = partial
        return [resolved[key] for key, _ in items]

    # ------------------------------------------------------------------
    # apply_delta
    # ------------------------------------------------------------------

    def apply_delta(self, payload: dict) -> dict:
        """Mirror a coordinator-validated delta onto this shard's copy.

        The coordinator already validated the op against the full support
        and computed its effect; this side re-plays the shard-local part:
        base mutations hit the worker's (fork-private) database copy, adds
        route here only when this shard is the round-robin home, retires
        map global → local through the partition's id map.
        """
        from repro.delta import delta_from_dict
        from repro.delta.types import AddInstance, InsertBaseRows, PatchBase
        from repro.support.delta import SupportInstance

        op = delta_from_dict(payload["op"])
        support = self.partition.support
        if isinstance(op, PatchBase):
            support.patch_base(op.table, op.row_index, op.column, op.value)
        elif isinstance(op, InsertBaseRows):
            support.insert_base_rows(op.table, [tuple(row) for row in op.rows])
        elif isinstance(op, AddInstance):
            for global_id in payload["added"]:
                if global_id % self.num_shards != self.shard_id:
                    continue
                local = len(support.instances)
                support.append_instances(
                    [SupportInstance(local, tuple(op.deltas))]
                )
                self.partition = dataclasses.replace(
                    self.partition,
                    global_ids=np.append(
                        self.partition.global_ids, np.int64(global_id)
                    ),
                )
        else:  # RetireInstances
            local_ids = [
                int(np.searchsorted(self.partition.global_ids, global_id))
                for global_id in payload["retired"]
                if self._owns(global_id)
            ]
            if local_ids:
                support.retire_instances(local_ids)
        whole_tables = frozenset(payload["whole_tables"])
        column_pairs = frozenset(
            (table, column) for table, column in payload["column_pairs"]
        )
        if payload["base_changed"]:
            self.market.engine.invalidate_tables(
                frozenset(table for table, _ in column_pairs) | whole_tables
            )
        self._bundles.invalidate(column_pairs, whole_tables)
        return {
            "data_version": support.data_version,
            "live_size": support.live_size,
        }

    def _owns(self, global_id: int) -> bool:
        ids = self.partition.global_ids
        index = int(np.searchsorted(ids, global_id))
        return index < len(ids) and int(ids[index]) == global_id

    # ------------------------------------------------------------------
    # seed / stats
    # ------------------------------------------------------------------

    def seed(self, entries: list[tuple[str, object]]) -> int:
        for key, ids in entries:
            self._bundles.put(key, np.asarray(ids, dtype=np.int64))
        return len(entries)

    def stats(self) -> dict:
        return {
            "bundles": self._bundles.stats().as_dict(),
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "support_size": len(self.partition.support),
            "live_size": self.partition.support.live_size,
            "data_version": self.partition.support.data_version,
        }

    def close(self) -> None:
        self.registry.close()


def worker_main(conn, partition, config: dict) -> None:
    """The worker process entry point: serve the pipe until shutdown/EOF.

    Runs in a freshly forked child. Every request is handled on this one
    thread, so requests are processed — and deltas take effect — in exact
    arrival order: the version-boundary guarantee the coordinator's
    fan-out relies on.
    """
    state = _WorkerState(partition, config)
    try:
        while True:
            try:
                request = conn.recv()
            except (EOFError, OSError):
                return  # coordinator went away; nothing to ack
            try:
                if request.kind == "compute":
                    result = state.compute(request.payload)
                elif request.kind == "apply_delta":
                    result = state.apply_delta(request.payload)
                elif request.kind == "seed":
                    result = state.seed(request.payload)
                elif request.kind == "stats":
                    result = state.stats()
                elif request.kind == "ping":
                    result = "pong"
                elif request.kind == "shutdown":
                    conn.send(WorkerResponse(request.request_id, ok=True))
                    return
                else:
                    raise ServiceError(f"unknown worker request {request.kind!r}")
                response = WorkerResponse(request.request_id, ok=True, result=result)
            except Exception as exc:
                response = WorkerResponse(
                    request.request_id,
                    ok=False,
                    error_type=type(exc).__name__,
                    error_message=str(exc),
                )
            try:
                conn.send(response)
            except (BrokenPipeError, OSError):
                return
    finally:
        state.close()
        try:
            conn.close()
        except OSError:
            pass
