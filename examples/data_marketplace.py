"""A day in a data marketplace: the paper's motivating scenario at full size.

The seller lists the ``world`` dataset; data analysts (the paper's "Alice")
issue targeted SQL queries instead of buying the whole dataset. The broker:

1. samples a Qirana support set,
2. learns buyer demand (the skewed 986-query workload with an additive
   valuation model — some parts of the data are worth more than others),
3. optimizes an arbitrage-free item pricing,
4. serves a mixed stream of buyers, rejecting none of the arbitrage attacks.

Run:  python examples/data_marketplace.py        (about a minute)
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms import LPIP, UBP
from repro.qirana import QueryMarket, verify_arbitrage_freeness
from repro.valuations import AdditiveValuations
from repro.workloads.world import world_workload


def main() -> None:
    # --- 1. the listing --------------------------------------------------
    workload = world_workload(scale=0.2)  # 986 queries, smaller data
    database = workload.database
    print(f"listed dataset: {database.name} "
          f"({', '.join(f'{r.schema.name}({len(r)})' for r in database.tables())})")

    support = workload.support(size=400, seed=0, cells_per_instance=2)
    market = QueryMarket(support)
    print(f"support set: {len(support)} neighboring instances\n")

    # --- 2. demand research ----------------------------------------------
    texts = [query.text for query in workload.queries]
    hypergraph = workload.hypergraph(support)
    model = AdditiveValuations(k=10, assigner="uniform")
    valuations = model.generate(hypergraph, np.random.default_rng(1))
    print(f"market research: {len(texts)} queries, "
          f"total willingness-to-pay {valuations.sum():.0f}")

    # --- 3. pricing optimization -----------------------------------------
    instance = model.instance(hypergraph, rng=np.random.default_rng(1))
    flat = UBP().run(instance)
    smart = LPIP(max_programs=60).run(instance)
    print(f"flat fee (status quo):  revenue {flat.revenue:9.1f} "
          f"({flat.revenue / valuations.sum():.1%} of demand)")
    print(f"item pricing (LPIP):    revenue {smart.revenue:9.1f} "
          f"({smart.revenue / valuations.sum():.1%} of demand)")
    print(f"uplift from query-based pricing: "
          f"{smart.revenue / max(flat.revenue, 1e-9):.2f}x\n")
    market.set_pricing(smart.pricing)
    # Prime the broker's bundle cache with the workload's conflict sets.
    market.build_instance(workload.queries, valuations)

    # --- 4. serving buyers -------------------------------------------------
    rng = np.random.default_rng(2)
    buyers = rng.choice(len(texts), size=25, replace=False)
    for position, query_index in enumerate(buyers[:6]):
        sql = texts[query_index]
        budget = float(valuations[query_index])
        answer, quote = market.purchase(sql, buyer=f"analyst-{position}", valuation=budget)
        outcome = f"bought for {quote.price:.2f}" if answer else "walked away"
        print(f"analyst-{position}: budget {budget:7.2f}, {outcome}")
        print(f"  {sql[:90]}")

    print(f"\nledger: {len(market.transactions)} sales, "
          f"revenue {market.revenue:.2f}")

    # --- 5. no arbitrage ---------------------------------------------------
    violations = verify_arbitrage_freeness(
        market.pricing, len(support), trials=300, rng=3
    )
    print(f"arbitrage check over 600 sampled bundle pairs: "
          f"{'no violations' if not violations else violations[:1]}")

    # Information arbitrage, concretely: a narrower query never costs more.
    narrow = market.quote("select count(Name) from Country where Continent = 'Asia'")
    broad = market.quote(
        "select Continent, count(Name) from Country group by Continent"
    )
    print(f"narrow query: {narrow.price:.2f}, broader query: {broad.price:.2f} "
          f"(subset bundle: {narrow.bundle <= broad.bundle})")


if __name__ == "__main__":
    main()
