"""Prometheus exposition tests: histogram, rendering, parsing, stability."""

import math
import threading

import pytest

from repro.qirana.broker import QueryMarket
from repro.qirana.weighted import uniform_calibrated_pricing
from repro.service import PricingService, ShardedPricingService
from repro.service.observability import (
    DEFAULT_BUCKETS,
    LatencyHistogram,
    parse_exposition,
    render_metrics,
)

QUERIES = [
    "select Name from Country",
    "select avg(Population) from Country",
    "select Name from City where Population > 1000000",
]

#: Counter/gauge names dashboards key on — renaming any of these is a
#: breaking change to every scrape config pointed at /metrics.
STABLE_NAMES = {
    "repro_quote_cache_hits_total",
    "repro_quote_cache_misses_total",
    "repro_quote_cache_evictions_total",
    "repro_quote_cache_stale_drops_total",
    "repro_quote_cache_size",
    "repro_requests_accepted_total",
    "repro_requests_shed_total",
    "repro_batch_batches_total",
    "repro_batch_requests_total",
    "repro_plan_memo_hits_total",
    "repro_plan_memo_misses_total",
    "repro_transactions_total",
}


@pytest.fixture
def service(mini_support):
    market = QueryMarket(mini_support)
    market.set_pricing(uniform_calibrated_pricing(mini_support, 100.0))
    return PricingService(market, start=False)


class TestLatencyHistogram:
    def test_counts_are_cumulative(self):
        histogram = LatencyHistogram(buckets=(0.001, 0.01, 0.1))
        for seconds in (0.0005, 0.005, 0.005, 0.05, 5.0):
            histogram.observe(seconds)
        cumulative, total_sum, count = histogram.snapshot()
        assert cumulative == [1, 3, 4, 5]  # le=0.001, 0.01, 0.1, +Inf
        assert count == 5
        assert total_sum == pytest.approx(5.0605)
        assert len(histogram) == 5

    def test_boundary_observation_lands_at_or_below(self):
        histogram = LatencyHistogram(buckets=(0.001, 0.01))
        histogram.observe(0.001)  # le is inclusive
        cumulative, _, _ = histogram.snapshot()
        assert cumulative == [1, 1, 1]

    def test_concurrent_observers_lose_nothing(self):
        histogram = LatencyHistogram()
        threads = [
            threading.Thread(
                target=lambda: [histogram.observe(0.0002) for _ in range(500)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        _, _, count = histogram.snapshot()
        assert count == 4000

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="ascending"):
            LatencyHistogram(buckets=(0.1, 0.01))
        with pytest.raises(ValueError, match="non-empty"):
            LatencyHistogram(buckets=())


class TestRenderAndParse:
    def test_exposition_parses_and_carries_the_counters(self, service):
        service.quote(QUERIES[0])
        service.quote(QUERIES[0])
        service.purchase(QUERIES[1], buyer="alice")
        text = render_metrics(service)
        samples = parse_exposition(text)
        def value(name):
            return {s.labels_dict.get("shard", ""): s.value for s in samples[name]}
        assert value("repro_quote_cache_hits_total") == {"0": 1.0}
        assert value("repro_quote_cache_misses_total") == {"0": 2.0}
        assert samples["repro_transactions_total"][0].value == 1.0

    def test_metric_names_stable_across_scrapes(self, service):
        first = set(parse_exposition(render_metrics(service)))
        service.quote(QUERIES[0])
        service.purchase(QUERIES[1], buyer="bob")
        second = set(parse_exposition(render_metrics(service)))
        # Traffic must never add/remove families mid-flight — dashboards
        # key on names; the whole stable set is present on every scrape.
        assert first == second
        assert STABLE_NAMES <= first

    def test_sharded_tier_renders_same_names_per_shard(self, mini_support):
        service = ShardedPricingService(mini_support, num_shards=2, start=False)
        service.install_pricing(uniform_calibrated_pricing(mini_support, 100.0))
        try:
            for sql in QUERIES:
                service.quote(sql)
            samples = parse_exposition(render_metrics(service))
        finally:
            service.close()
        assert STABLE_NAMES <= set(samples)
        shards = {s.labels_dict["shard"] for s in samples["repro_quote_cache_hits_total"]}
        assert shards == {"0", "1"}

    def test_histogram_block_renders_the_classic_triple(self, service):
        histogram = LatencyHistogram()
        histogram.observe(0.0002)
        histogram.observe(0.3)
        text = render_metrics(
            service,
            latency={"0": histogram},
            http_requests={("/quote", 200): 2},
            ready=True,
        )
        samples = parse_exposition(text)
        buckets = samples["repro_request_duration_seconds_bucket"]
        assert len(buckets) == len(DEFAULT_BUCKETS) + 1
        by_le = {s.labels_dict["le"]: s.value for s in buckets}
        assert by_le["+Inf"] == 2.0
        assert by_le["0.5"] == 2.0
        assert by_le["0.25"] == 1.0
        assert samples["repro_request_duration_seconds_count"][0].value == 2.0
        assert samples["repro_request_duration_seconds_sum"][0].value == pytest.approx(
            0.3002
        )
        assert samples["repro_service_ready"][0].value == 1.0
        http = samples["repro_http_requests_total"][0]
        assert http.labels_dict == {"endpoint": "/quote", "status": "200"}

    def test_ready_gauge_flips(self, service):
        ready = parse_exposition(render_metrics(service, ready=True))
        draining = parse_exposition(render_metrics(service, ready=False))
        assert ready["repro_service_ready"][0].value == 1.0
        assert draining["repro_service_ready"][0].value == 0.0


class TestParser:
    def test_rejects_undeclared_samples(self):
        with pytest.raises(ValueError, match="no # TYPE"):
            parse_exposition("mystery_total 3\n")

    def test_rejects_malformed_comments(self):
        with pytest.raises(ValueError, match="malformed comment"):
            parse_exposition("# NONSENSE\n")

    def test_label_escapes_round_trip(self):
        text = (
            "# HELP x_total t.\n"
            "# TYPE x_total counter\n"
            'x_total{q="a\\"b\\\\c\\nd"} 1\n'
        )
        sample = parse_exposition(text)["x_total"][0]
        assert sample.labels_dict["q"] == 'a"b\\c\nd'

    def test_inf_bound_parses(self):
        text = (
            "# HELP h t.\n"
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 1.5\n"
            "h_count 4\n"
        )
        samples = parse_exposition(text)
        assert samples["h_bucket"][0].labels_dict["le"] == "+Inf"
        assert samples["h_bucket"][0].value == 4.0
        assert math.isfinite(samples["h_sum"][0].value)
