"""Unit tests for canonical query answers."""

import pytest

from repro.db.result import QueryResult


class TestEquality:
    def test_order_insensitive(self):
        a = QueryResult(["x"], [(1,), (2,)])
        b = QueryResult(["x"], [(2,), (1,)])
        assert a == b
        assert hash(a) == hash(b)

    def test_multiplicity_sensitive(self):
        a = QueryResult(["x"], [(1,), (1,)])
        b = QueryResult(["x"], [(1,)])
        assert a != b

    def test_ordered_results_compare_in_order(self):
        a = QueryResult(["x"], [(1,), (2,)], ordered=True)
        b = QueryResult(["x"], [(2,), (1,)], ordered=True)
        assert a != b

    def test_mixed_types_sortable(self):
        a = QueryResult(["x"], [(None,), ("s",), (1,)])
        b = QueryResult(["x"], [(1,), (None,), ("s",)])
        assert a == b

    def test_different_values_differ(self):
        assert QueryResult(["x"], [(1,)]) != QueryResult(["x"], [(2,)])

    def test_not_equal_to_other_types(self):
        assert QueryResult(["x"], []) != 42


class TestAccessors:
    def test_scalar(self):
        assert QueryResult(["n"], [(7,)]).scalar() == 7

    def test_scalar_requires_1x1(self):
        with pytest.raises(ValueError):
            QueryResult(["n"], [(7,), (8,)]).scalar()

    def test_column_case_insensitive(self):
        result = QueryResult(["Name", "Pop"], [("a", 1), ("b", 2)])
        assert result.column("name") == ["a", "b"]

    def test_column_missing(self):
        with pytest.raises(KeyError):
            QueryResult(["a"], []).column("b")

    def test_num_rows(self):
        assert QueryResult(["a"], [(1,), (2,)]).num_rows == 2

    def test_to_text_truncates(self):
        result = QueryResult(["a"], [(i,) for i in range(30)])
        text = result.to_text(max_rows=5)
        assert "more rows" in text

    def test_to_text_renders_null(self):
        assert "NULL" in QueryResult(["a"], [(None,)]).to_text()
