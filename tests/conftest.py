"""Shared fixtures: a small deterministic database, support set, instances."""

from __future__ import annotations

import shutil
from pathlib import Path

import numpy as np
import pytest

from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.db.database import Database
from repro.db.relation import Relation
from repro.db.schema import Column, ColumnType, TableSchema
from repro.support.generator import NeighborSampler

#: Where the parity/revenue fuzzers drop standalone repro scripts on a
#: mismatch. CI uploads these on failure only, but the upload step globs the
#: whole directories — stale repros from a previous local run must not ride
#: along and masquerade as this run's failure.
_FUZZ_ARTIFACT_DIRS = (
    Path(__file__).resolve().parent / "artifacts" / "parity_fuzz",
    Path(__file__).resolve().parent / "artifacts" / "revenue_fuzz",
)


@pytest.fixture(scope="session", autouse=True)
def _clear_stale_fuzz_repros():
    """Delete leftover fuzz repro scripts once, at session start.

    The fuzz suites re-create their artifact directory when (and only when)
    they actually have a mismatch to report, so after this fixture the
    directories' contents are exactly this session's failures.
    """
    for directory in _FUZZ_ARTIFACT_DIRS:
        if directory.is_dir():
            shutil.rmtree(directory)
    yield


@pytest.fixture
def country_schema() -> TableSchema:
    return TableSchema(
        "Country",
        (
            Column("Code", ColumnType.TEXT),
            Column("Name", ColumnType.TEXT),
            Column("Continent", ColumnType.TEXT),
            Column("Region", ColumnType.TEXT),
            Column("Population", ColumnType.INT),
            Column("LifeExpectancy", ColumnType.FLOAT),
        ),
        primary_key=("Code",),
    )


@pytest.fixture
def mini_db_factory(country_schema):
    """Builder for independent copies of the mini-world database.

    The delta differential tests mutate one copy in place and rebuild an
    oracle over a second, so a single shared ``mini_db`` would alias them.
    """

    def build() -> Database:
        return _build_mini_db(country_schema)

    return build


@pytest.fixture
def mini_db(mini_db_factory) -> Database:
    """Four countries, four cities, three languages — small but join-able."""
    return mini_db_factory()


def _build_mini_db(country_schema) -> Database:
    country = Relation(country_schema)
    country.insert_many(
        [
            ("USA", "United States", "North America", "Northern America", 278357000, 77.1),
            ("GRC", "Greece", "Europe", "Southern Europe", 10545700, 78.4),
            ("FRA", "France", "Europe", "Western Europe", 59225700, 78.8),
            ("IND", "India", "Asia", "Southern Asia", 1013662000, 62.5),
        ]
    )
    city = Relation(
        TableSchema(
            "City",
            (
                Column("ID", ColumnType.INT),
                Column("Name", ColumnType.TEXT),
                Column("CountryCode", ColumnType.TEXT),
                Column("Population", ColumnType.INT),
            ),
            primary_key=("ID",),
        )
    )
    city.insert_many(
        [
            (1, "Athens", "GRC", 745514),
            (2, "Paris", "FRA", 2125246),
            (3, "New York", "USA", 8008278),
            (4, "Mumbai", "IND", 10500000),
        ]
    )
    language = Relation(
        TableSchema(
            "CountryLanguage",
            (
                Column("CountryCode", ColumnType.TEXT),
                Column("Language", ColumnType.TEXT),
                Column("Percentage", ColumnType.FLOAT),
            ),
            primary_key=("CountryCode", "Language"),
        )
    )
    language.insert_many(
        [
            ("GRC", "Greek", 98.5),
            ("USA", "English", 86.2),
            ("FRA", "French", 93.6),
        ]
    )
    return Database("mini-world", [country, city, language])


@pytest.fixture
def mini_support(mini_db):
    sampler = NeighborSampler(mini_db, rng=np.random.default_rng(11))
    return sampler.generate(40)


@pytest.fixture
def delta_rebuild_oracle(mini_db_factory):
    """Rebuild-from-scratch market over an identically-mutated mini db.

    ``build(instances, retired, applied, base_pricing, texts)`` replays the
    base mutations of ``applied`` onto a fresh database copy, wraps the
    caller's frozen instance objects in a new support set, and replays the
    live tier's per-add ``extend_pricing`` evolution — the bit-exact oracle
    the delta differential and concurrency tests compare against.
    """
    from repro.core.pricing import extend_pricing
    from repro.delta import AddInstance, InsertBaseRows, PatchBase
    from repro.qirana.broker import QueryMarket
    from repro.support.generator import SupportSet

    def build(instances, retired, applied, base_pricing, texts):
        db = mini_db_factory()
        support = SupportSet(db, list(instances))
        pricing = base_pricing
        size = len(support) - sum(
            1 for op in applied if isinstance(op, AddInstance)
        )
        for op in applied:
            if isinstance(op, PatchBase):
                db.table(op.table).set_cell(op.row_index, op.column, op.value)
            elif isinstance(op, InsertBaseRows):
                for row in op.rows:
                    db.table(op.table).insert(tuple(row))
            elif isinstance(op, AddInstance):
                size += 1
                pricing = extend_pricing(pricing, size)
        support.retire_instances(sorted(retired))
        market = QueryMarket(support)
        market.set_pricing(pricing)
        market.build_hypergraph(texts)
        return market

    return build


@pytest.fixture
def small_instance() -> PricingInstance:
    """Hand-built 5-item, 6-edge instance with known-good prices."""
    edges = [
        {0},          # v = 10
        {1},          # v = 6
        {0, 1},       # v = 14
        {2, 3},       # v = 8
        {2, 3, 4},    # v = 9
        set(),        # v = 5 (empty conflict set)
    ]
    valuations = np.array([10.0, 6.0, 14.0, 8.0, 9.0, 5.0])
    return PricingInstance(Hypergraph(5, edges), valuations, "small")


@pytest.fixture
def random_instance_factory():
    """Factory for random instances with a given seed (hypothesis-free)."""

    def make(num_items=30, num_edges=20, seed=0, high=50.0):
        from repro.workloads.synthetic import random_instance

        return random_instance(
            num_items, num_edges, valuation_high=high, rng=seed
        )

    return make
