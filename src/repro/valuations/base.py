"""Valuation model interface."""

from __future__ import annotations

import numpy as np

from repro.core.hypergraph import Hypergraph, PricingInstance


class ValuationModel:
    """Generates one non-negative valuation per hyperedge.

    Models are deterministic given the rng, so experiments are reproducible
    run to run.
    """

    #: Short name used in experiment labels (e.g. ``"uniform[1,100]"``).
    name = "abstract"

    def generate(
        self, hypergraph: Hypergraph, rng: np.random.Generator
    ) -> np.ndarray:
        """Valuation vector of length ``hypergraph.num_edges``."""
        raise NotImplementedError

    def instance(
        self,
        hypergraph: Hypergraph,
        rng: np.random.Generator | int | None = None,
        name: str | None = None,
    ) -> PricingInstance:
        """Convenience: attach generated valuations to the hypergraph."""
        rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        valuations = self.generate(hypergraph, rng)
        return PricingInstance(hypergraph, valuations, name or self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name})"


def clip_non_negative(valuations: np.ndarray) -> np.ndarray:
    """Clamp at zero (normal-model draws can dip below)."""
    return np.maximum(valuations, 0.0)
