"""Staged online market mutations (accept → validate → apply / cancel).

See :mod:`repro.delta.types` for the op vocabulary,
:mod:`repro.delta.log` for the staged log with monotone version stamps, and
:mod:`repro.delta.apply` for validation and the in-place apply path.
"""

from repro.delta.apply import DeltaEffect, apply_to_support, validate_op
from repro.delta.log import (
    APPLIED,
    CANCELLED,
    REJECTED,
    STAGED,
    DeltaLog,
    DeltaLogCounters,
    DeltaRecord,
)
from repro.delta.types import (
    AddInstance,
    DeltaOp,
    InsertBaseRows,
    PatchBase,
    RetireInstances,
    delta_from_dict,
    delta_to_dict,
)

__all__ = [
    "APPLIED",
    "CANCELLED",
    "REJECTED",
    "STAGED",
    "AddInstance",
    "DeltaEffect",
    "DeltaLog",
    "DeltaLogCounters",
    "DeltaOp",
    "DeltaRecord",
    "InsertBaseRows",
    "PatchBase",
    "RetireInstances",
    "apply_to_support",
    "delta_from_dict",
    "delta_to_dict",
    "validate_op",
]
