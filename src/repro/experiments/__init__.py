"""Experiment harness: reproduce every table and figure of the paper.

Each figure/table has a config-driven experiment in
:mod:`repro.experiments.figures`; :mod:`repro.experiments.runner` executes the
algorithm suite over (workload, valuation-model, parameter) grids and
:mod:`repro.experiments.report` renders the same rows/series the paper plots.

Scale note: defaults are laptop-sized (see DESIGN.md §2.4); pass larger
``support_size``/``scale`` for closer-to-paper instances.
"""

from repro.experiments.runner import (
    ExperimentResult,
    SeriesPoint,
    run_algorithms,
    run_parameter_sweep,
)
from repro.experiments.report import format_series_table, format_table

__all__ = [
    "ExperimentResult",
    "SeriesPoint",
    "format_series_table",
    "format_table",
    "run_algorithms",
    "run_parameter_sweep",
]
