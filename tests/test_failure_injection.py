"""Failure injection: LP-backed algorithms must degrade, not crash.

LPIP, CIP and the exact oracles all call the LP solver many times; a single
numerically-hostile program must cost at most that one candidate, never the
whole run. These tests monkeypatch the solver to fail — selectively or
always — and check each algorithm still returns a valid (possibly zero)
pricing.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.lp.solver as lp_solver
from repro.core.algorithms import CIP, LPIP, UBPRefine
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.core.pricing import ItemPricing
from repro.exceptions import LPInfeasibleError, LPSolverError
from repro.lp import LPModel


@pytest.fixture
def instance():
    edges = [{0}, {0, 1}, {1, 2}, {2, 3}, {3}]
    return PricingInstance(Hypergraph(4, edges), [4.0, 6.0, 5.0, 3.0, 2.0])


def _patch_solver(monkeypatch, decide):
    """Replace ScipySolver.solve with one that may raise per model."""
    original = lp_solver.ScipySolver.solve

    def fake_solve(self, model: LPModel):
        failure = decide(model)
        if failure is not None:
            raise failure
        return original(self, model)

    monkeypatch.setattr(lp_solver.ScipySolver, "solve", fake_solve)


class TestPartialFailures:
    def test_lpip_skips_failing_thresholds(self, monkeypatch, instance):
        calls = {"count": 0}

        def fail_every_other(model):
            calls["count"] += 1
            if calls["count"] % 2 == 0:
                return LPSolverError("injected numerical failure")
            return None

        _patch_solver(monkeypatch, fail_every_other)
        result = LPIP().run(instance)
        assert isinstance(result.pricing, ItemPricing)
        assert result.revenue >= 0.0
        # Some programs were solved, some skipped — metadata reflects it.
        assert 0 < result.metadata["num_programs"] < calls["count"]

    def test_cip_skips_failing_capacities(self, monkeypatch, instance):
        def fail_small_capacity(model):
            if model.name.endswith("k1"):
                return LPInfeasibleError("injected")
            return None

        _patch_solver(monkeypatch, fail_small_capacity)
        result = CIP(epsilon=1.0).run(instance)
        assert result.revenue >= 0.0

    def test_ubp_refine_falls_back_to_plain_ubp(self, monkeypatch, instance):
        from repro.core.algorithms import UBP

        plain = UBP().run(instance).revenue
        _patch_solver(monkeypatch, lambda model: LPSolverError("injected"))
        refined = UBPRefine().run(instance)
        # The LP step is dead; the result must still be at least as good as
        # something valid — the implementation falls back to the uniform
        # bundle sweep it started from.
        assert refined.revenue >= 0.0
        assert refined.revenue <= plain + 1e-9 or refined.revenue >= plain - 1e-9


class TestTotalFailure:
    def test_lpip_returns_zero_pricing_when_all_lps_fail(
        self, monkeypatch, instance
    ):
        _patch_solver(monkeypatch, lambda model: LPSolverError("injected"))
        result = LPIP().run(instance)
        assert result.revenue == 0.0
        assert result.metadata["num_programs"] == 0

    def test_cip_returns_zero_pricing_when_all_lps_fail(
        self, monkeypatch, instance
    ):
        _patch_solver(monkeypatch, lambda model: LPInfeasibleError("injected"))
        result = CIP(epsilon=1.0).run(instance)
        assert result.revenue == 0.0
        pricing = result.pricing
        assert isinstance(pricing, ItemPricing)
        assert np.all(pricing.weights == 0)


class TestTabularPersistence:
    def test_tabular_round_trip(self, tmp_path):
        from repro.core.algorithms import ExactSubadditivePricing
        from repro.qirana.persistence import load_pricing, save_pricing

        instance = PricingInstance(
            Hypergraph(3, [{0}, {1, 2}, set()]), [2.0, 3.5, 1.0]
        )
        pricing = ExactSubadditivePricing().run(instance).pricing
        path = tmp_path / "tabular.json"
        save_pricing(pricing, path)
        loaded = load_pricing(path)
        for bundle in (set(), {0}, {1, 2}, {0, 1, 2}, {2, 99}):
            assert loaded.price(bundle) == pytest.approx(pricing.price(bundle))
