"""The Qirana pricing system: conflict sets, the broker, arbitrage checks.

This package glues the database substrate to the pricing core:

- :mod:`repro.qirana.conflict` computes ``CS(Q, D)`` — the hyperedge of a
  query — with table/column pruning over delta-encoded support instances,
- :mod:`repro.qirana.broker` is the data-market front desk: quote prices,
  sell query answers, keep the ledger,
- :mod:`repro.qirana.validation` empirically checks monotonicity and
  subadditivity (arbitrage-freeness via Theorem 1).
"""

from repro.qirana.backends import (
    ConflictBackend,
    ConflictComputation,
    available_backends,
    get_backend,
    register_backend,
)
from repro.qirana.broker import PriceQuote, QueryMarket, Transaction
from repro.qirana.conflict import ConflictSetEngine
from repro.qirana.history import HistoryAwareLedger, MarginalQuote
from repro.qirana.persistence import (
    MarketState,
    load_market_state,
    load_pricing,
    save_market_state,
    save_pricing,
)
from repro.qirana.validation import (
    check_monotonicity,
    check_subadditivity,
    verify_arbitrage_freeness,
)
from repro.qirana.weighted import (
    degree_weighted_pricing,
    uniform_calibrated_pricing,
)

__all__ = [
    "ConflictBackend",
    "ConflictComputation",
    "ConflictSetEngine",
    "HistoryAwareLedger",
    "MarginalQuote",
    "MarketState",
    "PriceQuote",
    "QueryMarket",
    "Transaction",
    "available_backends",
    "check_monotonicity",
    "check_subadditivity",
    "degree_weighted_pricing",
    "get_backend",
    "load_market_state",
    "load_pricing",
    "register_backend",
    "save_market_state",
    "save_pricing",
    "uniform_calibrated_pricing",
    "verify_arbitrage_freeness",
]
