"""Running the algorithm suite over instances and parameter sweeps,
plus conflict-backend comparisons over hypergraph construction."""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.algorithms.base import PricingAlgorithm, PricingResult
from repro.core.bounds import subadditive_upper_bound
from repro.core.hypergraph import Hypergraph, PricingInstance
from repro.db.query import Query
from repro.exceptions import PricingError
from repro.qirana.conflict import ConflictSetEngine
from repro.support.generator import SupportSet
from repro.valuations.base import ValuationModel


@dataclass(frozen=True)
class HypergraphBuild:
    """One timed hypergraph construction with one conflict backend."""

    backend: str
    hypergraph: Hypergraph
    seconds: float
    diagnostics: dict[str, dict[str, float]]


def time_hypergraph_builds(
    support: SupportSet,
    queries: Sequence[Query],
    backends: Sequence[str] = ("naive", "incremental", "vectorized", "auto"),
    check_parity: bool = True,
) -> list[HypergraphBuild]:
    """Build the same workload hypergraph with each backend, timed.

    With ``check_parity`` the hyperedges of every backend are compared
    against the first one's; a mismatch is a correctness bug and raises.
    The support set's caches (materialized neighbors, delta tensors) are
    cleared before each build, so every backend pays its own setup and the
    timings are directly comparable.
    """
    builds: list[HypergraphBuild] = []
    for backend in backends:
        support.clear_cache()
        engine = ConflictSetEngine(support, backend=backend)
        start = time.perf_counter()
        hypergraph = engine.build_hypergraph(list(queries))
        seconds = time.perf_counter() - start
        builds.append(
            HypergraphBuild(backend, hypergraph, seconds, engine.diagnostics)
        )
    if check_parity and builds:
        reference = builds[0]
        for build in builds[1:]:
            if build.hypergraph.edges != reference.hypergraph.edges:
                raise PricingError(
                    f"conflict backend {build.backend!r} disagrees with "
                    f"{reference.backend!r} on the workload hypergraph"
                )
    return builds


@dataclass
class ExperimentResult:
    """Results of running a suite of algorithms on one instance."""

    instance_name: str
    total_valuation: float
    subadditive_bound: float | None
    results: dict[str, PricingResult] = field(default_factory=dict)

    def normalized(self, algorithm: str) -> float:
        """Revenue / sum-of-valuations — the y-axis of every figure."""
        if self.total_valuation <= 0:
            return 0.0
        return self.results[algorithm].revenue / self.total_valuation

    def normalized_series(self) -> dict[str, float]:
        series = {name: self.normalized(name) for name in self.results}
        if self.subadditive_bound is not None and self.total_valuation > 0:
            series["subadditive bound"] = self.subadditive_bound / self.total_valuation
        return series

    def runtimes(self) -> dict[str, float]:
        return {
            name: result.runtime_seconds for name, result in self.results.items()
        }


def run_algorithms(
    instance: PricingInstance,
    algorithms: Sequence[PricingAlgorithm],
    compute_bound: bool = True,
    bound_max_cover_size: int = 32,
) -> ExperimentResult:
    """Run every algorithm on ``instance``; optionally add the LP bound."""
    bound = (
        subadditive_upper_bound(instance, max_cover_size=bound_max_cover_size)
        if compute_bound
        else None
    )
    outcome = ExperimentResult(
        instance_name=instance.name,
        total_valuation=instance.total_valuation(),
        subadditive_bound=bound,
    )
    for algorithm in algorithms:
        outcome.results[algorithm.name] = algorithm.run(instance)
    return outcome


@dataclass(frozen=True)
class SeriesPoint:
    """One (parameter value, experiment result) pair of a sweep."""

    parameter: object
    result: ExperimentResult


def run_parameter_sweep(
    hypergraph: Hypergraph,
    models: Sequence[tuple[object, ValuationModel]],
    algorithms: Sequence[PricingAlgorithm],
    seed: int = 1,
    compute_bound: bool = True,
    repetitions: int = 1,
) -> list[SeriesPoint]:
    """The paper's figure pattern: one hypergraph, a family of valuation
    models indexed by a parameter, all algorithms on each.

    With ``repetitions > 1`` the reported revenue for each algorithm is the
    mean over fresh valuation draws (the paper averages 5 runs).
    """
    points: list[SeriesPoint] = []
    for offset, (parameter, model) in enumerate(models):
        merged: ExperimentResult | None = None
        for repetition in range(repetitions):
            rng = np.random.default_rng(seed + 1000 * offset + repetition)
            instance = model.instance(hypergraph, rng=rng)
            outcome = run_algorithms(
                instance, algorithms, compute_bound=compute_bound
            )
            if merged is None:
                merged = outcome
            else:
                merged = _merge_mean(merged, outcome, repetition)
        points.append(SeriesPoint(parameter, merged))
    return points


def _merge_mean(
    accumulated: ExperimentResult, new: ExperimentResult, repetition: int
) -> ExperimentResult:
    """Running mean of revenues/bounds across repetitions.

    Only scalar summaries are averaged; the pricing objects kept are from the
    first repetition (they are representative, and figures only use scalars).
    """
    weight = repetition / (repetition + 1)
    accumulated.total_valuation = (
        weight * accumulated.total_valuation + (1 - weight) * new.total_valuation
    )
    if accumulated.subadditive_bound is not None and new.subadditive_bound is not None:
        accumulated.subadditive_bound = (
            weight * accumulated.subadditive_bound
            + (1 - weight) * new.subadditive_bound
        )
    for name, result in accumulated.results.items():
        fresh = new.results[name]
        result.report = type(result.report)(
            revenue=weight * result.report.revenue + (1 - weight) * fresh.report.revenue,
            num_sold=result.report.num_sold,
            num_edges=result.report.num_edges,
            prices=result.report.prices,
            sold=result.report.sold,
        )
        result.runtime_seconds = (
            weight * result.runtime_seconds + (1 - weight) * fresh.runtime_seconds
        )
    return accumulated


def sweep_series(
    points: Sequence[SeriesPoint],
) -> tuple[list[object], dict[str, list[float]]]:
    """Reshape sweep points into (parameter values, name -> series)."""
    parameters = [point.parameter for point in points]
    names: list[str] = []
    for point in points:
        for name in point.result.normalized_series():
            if name not in names:
                names.append(name)
    series = {
        name: [point.result.normalized_series().get(name, float("nan")) for point in points]
        for name in names
    }
    return parameters, series
