"""History-aware (marginal) pricing with refunds.

Related work the paper builds on (Upadhyaya et al., "Price-optimal querying
with data APIs") charges returning buyers only for the *new* information a
query reveals: a buyer who already owns bundles with union ``H`` pays

    marginal(e | H) = f(H ∪ e) - f(H)

for a new bundle ``e``. For monotone ``f`` the marginal price is
non-negative, and for subadditive ``f`` it never exceeds the fresh price
``f(e)`` — the difference is the refund. Cumulative payments telescope to
``f(H_final)``, so a buyer can never do better by splitting a query across
sessions: the combination-arbitrage guarantee extends across a purchase
history.

:class:`HistoryAwareLedger` tracks per-buyer owned bundles and computes
marginal quotes against any :class:`~repro.core.pricing.PricingFunction`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.pricing import PricingFunction
from repro.exceptions import PricingError


@dataclass(frozen=True)
class MarginalQuote:
    """A history-aware quote: fresh price, marginal price, implied refund."""

    fresh_price: float
    marginal_price: float

    @property
    def refund(self) -> float:
        return self.fresh_price - self.marginal_price


@dataclass
class HistoryAwareLedger:
    """Per-buyer purchase history with marginal pricing.

    The ledger is pricing-function-agnostic: it consults the installed
    :class:`PricingFunction` at quote time, so re-optimizing prices mid-season
    simply changes future marginals.
    """

    pricing: PricingFunction
    owned: dict[str, frozenset[int]] = field(default_factory=dict)
    total_paid: dict[str, float] = field(default_factory=dict)

    def holdings(self, buyer: str) -> frozenset[int]:
        """The union of bundles the buyer already purchased."""
        return self.owned.get(buyer, frozenset())

    def quote(self, buyer: str, bundle: frozenset[int]) -> MarginalQuote:
        """Marginal price of ``bundle`` for ``buyer``."""
        fresh = self.pricing.price(bundle)
        held = self.holdings(buyer)
        if not held:
            return MarginalQuote(fresh, fresh)
        marginal = self.pricing.price(held | bundle) - self.pricing.price(held)
        if marginal < -1e-9:
            raise PricingError(
                "negative marginal price: the installed pricing function "
                "is not monotone"
            )
        return MarginalQuote(fresh, max(0.0, marginal))

    def record_purchase(self, buyer: str, bundle: frozenset[int]) -> MarginalQuote:
        """Quote, then commit the purchase to the buyer's history."""
        quote = self.quote(buyer, bundle)
        self.owned[buyer] = self.holdings(buyer) | bundle
        self.total_paid[buyer] = self.total_paid.get(buyer, 0.0) + quote.marginal_price
        return quote

    def cumulative_price_consistent(self, buyer: str, tolerance: float = 1e-6) -> bool:
        """Check the telescoping invariant: total paid = f(holdings) - f(∅).

        This is what makes history-aware pricing arbitrage-free across
        sessions — the buyer ends up paying exactly the one-shot price of
        everything they own, regardless of how they split their purchases.
        """
        held = self.holdings(buyer)
        expected = self.pricing.price(held) - self.pricing.price(frozenset())
        return abs(self.total_paid.get(buyer, 0.0) - expected) <= tolerance
