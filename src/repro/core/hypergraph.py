"""Hypergraphs over the support set and priced instances.

Following Section 3.3 of the paper: the support set ``S`` is the vertex set
(items are integers ``0..n-1``), each buyer's query maps to the hyperedge
``CS(Q, D)`` (its conflict set), and a *pricing instance* attaches one
valuation per hyperedge. Key structural parameters used throughout:

- ``n`` — number of items (support size),
- ``m`` — number of hyperedges (buyers/queries),
- ``k`` — size of the largest hyperedge,
- ``B`` — maximum number of hyperedges any item belongs to (max degree).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import PricingError


class Hypergraph:
    """An immutable hypergraph with integer items ``0..num_items-1``.

    Edges are stored as frozensets; per-item incidence lists are built lazily
    and cached (the Layering algorithm and CIP use them heavily).
    """

    __slots__ = ("num_items", "edges", "labels", "_degrees", "_incidence")

    def __init__(
        self,
        num_items: int,
        edges: Iterable[Iterable[int]],
        labels: Sequence[str] | None = None,
    ):
        if num_items < 0:
            raise PricingError("num_items must be non-negative")
        self.num_items = num_items
        self.edges: list[frozenset[int]] = []
        for edge in edges:
            edge_set = frozenset(edge)
            for item in edge_set:
                if not 0 <= item < num_items:
                    raise PricingError(
                        f"item {item} out of range [0, {num_items}) in edge "
                        f"{len(self.edges)}"
                    )
            self.edges.append(edge_set)
        if labels is not None and len(labels) != len(self.edges):
            raise PricingError(
                f"{len(labels)} labels for {len(self.edges)} edges"
            )
        self.labels = list(labels) if labels is not None else None
        self._degrees: np.ndarray | None = None
        self._incidence: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # Structural parameters
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        """m — the number of hyperedges."""
        return len(self.edges)

    @property
    def degrees(self) -> np.ndarray:
        """Array of item degrees (number of edges containing each item)."""
        if self._degrees is None:
            degrees = np.zeros(self.num_items, dtype=np.int64)
            for edge in self.edges:
                for item in edge:
                    degrees[item] += 1
            self._degrees = degrees
        return self._degrees

    @property
    def max_degree(self) -> int:
        """B — the maximum item degree (0 for an empty hypergraph)."""
        if self.num_items == 0 or self.num_edges == 0:
            return 0
        return int(self.degrees.max())

    @property
    def max_edge_size(self) -> int:
        """k — the size of the largest hyperedge."""
        return max((len(edge) for edge in self.edges), default=0)

    @property
    def avg_edge_size(self) -> float:
        """Mean hyperedge size (0 for no edges)."""
        if not self.edges:
            return 0.0
        return sum(len(edge) for edge in self.edges) / len(self.edges)

    @property
    def incidence(self) -> list[list[int]]:
        """For each item, the indices of edges containing it."""
        if self._incidence is None:
            incidence: list[list[int]] = [[] for _ in range(self.num_items)]
            for edge_index, edge in enumerate(self.edges):
                for item in edge:
                    incidence[item].append(edge_index)
            self._incidence = incidence
        return self._incidence

    def edge_sizes(self) -> np.ndarray:
        """Array of hyperedge sizes in edge order."""
        return np.array([len(edge) for edge in self.edges], dtype=np.int64)

    def used_items(self) -> list[int]:
        """Items with degree >= 1, ascending."""
        return [item for item, degree in enumerate(self.degrees) if degree > 0]

    def edges_with_unique_item(self) -> list[int]:
        """Indices of edges containing at least one item of degree 1.

        The paper uses this statistic to explain when Layering performs well
        (Section 6.2/6.3).
        """
        degrees = self.degrees
        return [
            index
            for index, edge in enumerate(self.edges)
            if any(degrees[item] == 1 for item in edge)
        ]

    def stats(self) -> "HypergraphStats":
        """Summary row matching Table 3 of the paper."""
        return HypergraphStats(
            num_items=self.num_items,
            num_edges=self.num_edges,
            max_degree=self.max_degree,
            max_edge_size=self.max_edge_size,
            avg_edge_size=self.avg_edge_size,
            num_empty_edges=sum(1 for edge in self.edges if not edge),
            num_edges_with_unique_item=len(self.edges_with_unique_item()),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Hypergraph(n={self.num_items}, m={self.num_edges})"


@dataclass(frozen=True)
class HypergraphStats:
    """Structural summary of a hypergraph (Table 3 columns and more)."""

    num_items: int
    num_edges: int
    max_degree: int
    max_edge_size: int
    avg_edge_size: float
    num_empty_edges: int
    num_edges_with_unique_item: int


class PricingInstance:
    """A hypergraph plus one buyer valuation per hyperedge.

    This is the input to every pricing algorithm. Valuations must be
    non-negative and finite.
    """

    __slots__ = ("hypergraph", "valuations", "name", "__weakref__")

    def __init__(
        self,
        hypergraph: Hypergraph,
        valuations: Sequence[float] | np.ndarray,
        name: str = "instance",
    ):
        valuations = np.asarray(valuations, dtype=np.float64)
        if valuations.shape != (hypergraph.num_edges,):
            raise PricingError(
                f"expected {hypergraph.num_edges} valuations, "
                f"got shape {valuations.shape}"
            )
        if not np.all(np.isfinite(valuations)) or np.any(valuations < 0):
            raise PricingError("valuations must be finite and non-negative")
        self.hypergraph = hypergraph
        self.valuations = valuations
        self.name = name

    @property
    def num_items(self) -> int:
        return self.hypergraph.num_items

    @property
    def num_edges(self) -> int:
        return self.hypergraph.num_edges

    @property
    def edges(self) -> list[frozenset[int]]:
        return self.hypergraph.edges

    def total_valuation(self) -> float:
        """Sum of all buyer valuations — the coarse revenue upper bound."""
        return float(self.valuations.sum())

    def edges_by_valuation(self, descending: bool = True) -> list[int]:
        """Edge indices sorted by valuation."""
        order = np.argsort(self.valuations, kind="stable")
        if descending:
            order = order[::-1]
        return [int(index) for index in order]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PricingInstance({self.name!r}, n={self.num_items}, "
            f"m={self.num_edges})"
        )
