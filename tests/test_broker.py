"""Integration tests for the QueryMarket broker."""

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.pricing import UniformBundlePricing
from repro.exceptions import PricingError
from repro.qirana.broker import QueryMarket

WORKLOAD = [
    "select count(Name) from Country where Continent = 'Asia'",
    "select Continent, max(Population) from Country group by Continent",
    "select avg(Population) from Country",
    "select Name from Country where Population between 10000000 and 60000000",
    "select * from Country where Continent='Europe'",
    "select Name, Language from Country , CountryLanguage where Code = CountryCode",
]
VALUATIONS = [10.0, 40.0, 25.0, 15.0, 80.0, 30.0]


@pytest.fixture
def market(mini_support):
    return QueryMarket(mini_support)


class TestSetup:
    def test_quote_requires_pricing(self, market):
        with pytest.raises(PricingError, match="no pricing"):
            market.quote(WORKLOAD[0])

    def test_flat_fee(self, market):
        market.set_flat_fee(12.0)
        assert market.quote(WORKLOAD[0]).price == 12.0
        assert market.quote(WORKLOAD[4]).price == 12.0

    def test_build_instance_mismatched_lengths(self, market):
        with pytest.raises(PricingError):
            market.build_instance(WORKLOAD, [1.0])


class TestOptimization:
    def test_optimize_installs_pricing(self, market):
        result = market.optimize_pricing(WORKLOAD, VALUATIONS, get_algorithm("lpip"))
        assert market.pricing is result.pricing
        assert result.revenue > 0

    def test_quotes_respect_optimized_prices(self, market):
        market.optimize_pricing(WORKLOAD, VALUATIONS, get_algorithm("lpip"))
        for sql, valuation in zip(WORKLOAD, VALUATIONS):
            quote = market.quote(sql)
            # LPIP sells most buyers; anything sold satisfies p <= v.
            if quote.price <= valuation:
                assert quote.price >= 0

    def test_instance_edges_cached_for_quotes(self, market):
        market.optimize_pricing(WORKLOAD, VALUATIONS, get_algorithm("ubp"))
        quote_first = market.quote(WORKLOAD[0])
        quote_second = market.quote(WORKLOAD[0])
        assert quote_first.bundle == quote_second.bundle


class TestPurchases:
    def test_purchase_returns_answer_and_records(self, market, mini_db):
        market.set_flat_fee(5.0)
        answer, quote = market.purchase(WORKLOAD[2], buyer="alice")
        assert answer is not None
        assert answer.scalar() == pytest.approx(
            np.mean(mini_db.table("Country").column_values("Population"))
        )
        assert market.revenue == 5.0
        assert market.transactions[0].buyer == "alice"

    def test_buyer_walks_away_when_too_expensive(self, market):
        market.set_flat_fee(50.0)
        answer, quote = market.purchase(WORKLOAD[0], buyer="bob", valuation=10.0)
        assert answer is None
        assert market.revenue == 0.0
        assert market.transactions == []

    def test_buyer_buys_at_valuation(self, market):
        market.set_flat_fee(10.0)
        answer, _ = market.purchase(WORKLOAD[0], buyer="carol", valuation=10.0)
        assert answer is not None

    def test_ad_hoc_query_gets_arbitrage_free_price(self, market):
        """A query never seen during optimization still gets a price."""
        market.optimize_pricing(WORKLOAD, VALUATIONS, get_algorithm("lpip"))
        quote = market.quote("select min(LifeExpectancy) from Country")
        assert quote.price >= 0.0

    def test_information_arbitrage_on_quotes(self, market):
        """A query whose conflict set is a subset must not cost more."""
        market.optimize_pricing(WORKLOAD, VALUATIONS, get_algorithm("lpip"))
        narrow = market.quote("select count(Name) from Country where Continent = 'Asia'")
        broad = market.quote("select Continent, count(Name) from Country group by Continent")
        if narrow.bundle <= broad.bundle:
            assert narrow.price <= broad.price + 1e-9


class TestPricingFunctionSwap:
    def test_set_custom_pricing(self, market):
        market.set_pricing(UniformBundlePricing(3.0))
        assert market.quote(WORKLOAD[0]).price == 3.0
