"""Unit tests for support-set deltas and the neighbor sampler."""

import pytest

from repro.exceptions import SupportError
from repro.support.delta import CellDelta, SupportInstance
from repro.support.generator import NeighborSampler, SupportSet


class TestCellDelta:
    def test_key_lowercases(self):
        delta = CellDelta("Country", 3, "Population", 42)
        assert delta.key() == ("country", 3, "population")


class TestSupportInstance:
    def test_requires_deltas(self):
        with pytest.raises(SupportError):
            SupportInstance(0, ())

    def test_rejects_duplicate_cell(self):
        delta = CellDelta("Country", 0, "Population", 1)
        dup = CellDelta("country", 0, "population", 2)
        with pytest.raises(SupportError, match="twice"):
            SupportInstance(0, (delta, dup))

    def test_touched_tables_and_columns(self):
        instance = SupportInstance(
            0,
            (
                CellDelta("Country", 0, "Population", 1),
                CellDelta("City", 1, "Name", "X"),
            ),
        )
        assert instance.touched_tables == {"country", "city"}
        assert ("city", "name") in instance.touched_columns

    def test_materialize_patches_cell(self, mini_db):
        instance = SupportInstance(0, (CellDelta("Country", 0, "Population", 7),))
        patched = instance.materialize(mini_db)
        assert patched.table("Country").cell(0, "Population") == 7
        assert mini_db.table("Country").cell(0, "Population") == 278357000

    def test_materialize_shares_untouched_tables(self, mini_db):
        instance = SupportInstance(0, (CellDelta("Country", 0, "Population", 7),))
        patched = instance.materialize(mini_db)
        assert patched.table("City") is mini_db.table("City")

    def test_materialize_rejects_noop_delta(self, mini_db):
        instance = SupportInstance(
            0, (CellDelta("Country", 0, "Population", 278357000),)
        )
        with pytest.raises(SupportError, match="does not change"):
            instance.materialize(mini_db)


class TestSupportSet:
    def test_ids_must_be_consecutive(self, mini_db):
        bad = [SupportInstance(5, (CellDelta("Country", 0, "Population", 7),))]
        with pytest.raises(SupportError, match="consecutive"):
            SupportSet(mini_db, bad)

    def test_index_by_table_and_column(self, mini_support):
        for table in ("country", "city", "countrylanguage"):
            for instance_id in mini_support.instances_touching_table(table):
                instance = mini_support.instance(instance_id)
                assert table in instance.touched_tables

    def test_materialize_cached(self, mini_support):
        first = mini_support.materialize(0)
        assert mini_support.materialize(0) is first
        mini_support.clear_cache()
        assert mini_support.materialize(0) is not first

    def test_restrict_prefix(self, mini_support):
        smaller = mini_support.restrict(10)
        assert len(smaller) == 10
        assert smaller.instance(3) is mini_support.instance(3)

    def test_restrict_bad_size(self, mini_support):
        with pytest.raises(SupportError):
            mini_support.restrict(10_000)


class TestNeighborSampler:
    def test_every_instance_differs_from_base(self, mini_db):
        sampler = NeighborSampler(mini_db, rng=0)
        support = sampler.generate(50)
        for instance in support:
            patched = instance.materialize(mini_db)  # raises if no-op
            assert patched is not mini_db

    def test_deterministic_given_seed(self, mini_db):
        a = NeighborSampler(mini_db, rng=7).generate(20)
        b = NeighborSampler(mini_db, rng=7).generate(20)
        assert [i.deltas for i in a] == [i.deltas for i in b]

    def test_respects_cells_per_instance(self, mini_db):
        sampler = NeighborSampler(mini_db, rng=1, cells_per_instance=3)
        support = sampler.generate(10)
        assert all(len(instance.deltas) == 3 for instance in support)

    def test_primary_keys_untouched_by_default(self, mini_db):
        support = NeighborSampler(mini_db, rng=2).generate(100)
        for instance in support:
            for delta in instance.deltas:
                table = mini_db.table(delta.table)
                pk = {c.lower() for c in table.schema.primary_key}
                assert delta.column.lower() not in pk

    def test_perturb_primary_keys_flag(self, mini_db):
        sampler = NeighborSampler(
            mini_db, rng=3, perturb_primary_keys=True
        )
        targets = {column.lower() for _, column in sampler._targets}
        assert "code" in targets

    def test_types_preserved(self, mini_db):
        support = NeighborSampler(mini_db, rng=4).generate(100)
        for instance in support:
            for delta in instance.deltas:
                schema = mini_db.table(delta.table).schema
                dtype = schema.column(delta.column).dtype
                assert dtype.accepts(delta.value)

    def test_invalid_cells_per_instance(self, mini_db):
        with pytest.raises(SupportError):
            NeighborSampler(mini_db, cells_per_instance=0)

    def test_negative_size_rejected(self, mini_db):
        with pytest.raises(SupportError):
            NeighborSampler(mini_db, rng=0).generate(-1)

    def test_cell_proportional_sampling(self, mini_db):
        # City (4 rows) and Country (4 rows) should both be hit; with row
        # weighting no table with rows is starved over a large sample.
        support = NeighborSampler(mini_db, rng=5).generate(300)
        touched = set()
        for instance in support:
            touched |= instance.touched_tables
        assert touched == {"country", "city", "countrylanguage"}
