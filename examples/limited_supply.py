"""Limited supply: selling exclusive access to query answers.

The paper treats query answers as digital goods with unlimited supply. Real
data products are often sold with *exclusivity*: "at most k customers get
this signal". In the conflict-set model that is a per-item capacity — each
support database may only be 'ruled out' for k buyers.

This example prices the skewed workload under exclusivity tiers and shows
the scarcity premium: tighter capacity means fewer sales at higher prices,
with the capacitated welfare LP as the ceiling.

Run:  python examples/limited_supply.py
"""

from __future__ import annotations

from repro.core.algorithms import UIP
from repro.limited import (
    LimitedCIP,
    LimitedSupplyInstance,
    LimitedUniformPricing,
    fractional_max_welfare,
    greedy_integral_welfare,
)
from repro.valuations import UniformValuations
from repro.workloads.world import world_workload


def main() -> None:
    workload = world_workload(scale=0.15, expanded=False)
    support = workload.support(size=300, seed=0, cells_per_instance=2)
    hypergraph = workload.hypergraph(support)
    instance = UniformValuations(100).instance(hypergraph, rng=1)

    max_degree = hypergraph.max_degree
    print(f"skewed slice: {instance.num_edges} buyers, "
          f"{instance.num_items} items, max degree B = {max_degree}")
    print(f"unlimited-supply UIP revenue: {UIP().run(instance).revenue:.1f}\n")

    print(f"{'capacity':>8}  {'welfare LP':>10}  {'greedy welfare':>14}  "
          f"{'limited-CIP':>11}  {'limited-UIP':>11}  {'CIP sold':>8}")
    for capacity in (1, 2, 4, 8, 16, max_degree):
        market = LimitedSupplyInstance.uniform(instance, capacity)
        welfare = fractional_max_welfare(market).welfare
        greedy = greedy_integral_welfare(market).welfare
        cip = LimitedCIP(scale_range=12).run(market)
        uip = LimitedUniformPricing().run(market)
        print(f"{capacity:>8}  {welfare:>10.1f}  {greedy:>14.1f}  "
              f"{cip.revenue:>11.1f}  {uip.revenue:>11.1f}  "
              f"{cip.report.num_served:>8}")

    print("\nexclusive tier (capacity 1): every support instance can be")
    print("revealed to at most one buyer — the broker sells scarcity, and")
    print("the capacity duals of the welfare LP price it automatically.")


if __name__ == "__main__":
    main()
