"""Figure 5a: sampled valuations (Uniform[1,k], zipf(a)) on the world
workloads (skewed + uniform).

Reproduction note (see EXPERIMENTS.md for the full analysis): with
structure-independent valuations, the broad queries of the skewed workload
(`select * from Country`, full-table aggregates) have conflict sets that are
*supersets* of every selective query's conflict set. Whenever such a broad
edge lands in LPIP's forced frontier with a low sampled valuation, it caps
the total price of all selective edges underneath it, so threshold-LPIP
cannot reproduce the dominance the paper reports for this panel — the
capacity-based CIP (and the XOS combination) lead instead, with UBP a strong
baseline. The paper's LPIP-wins finding *does* reproduce in Figures 5b/6b/7
where valuations correlate with bundle size.
"""

import numpy as np
import pytest

from repro.experiments.figures import figure5a_uniform, figure5a_zipf

from benchmarks.conftest import save_artifact

#: Full LP sweep - heavy; runs only with --runslow (tier-1 stays fast).
pytestmark = pytest.mark.slow



def _series_means(artifact):
    return {name: float(np.mean(vals)) for name, vals in artifact.data["series"].items()}


@pytest.mark.parametrize("workload_name", ["skewed", "uniform"])
def test_fig5a_uniform_valuations(benchmark, workload_name):
    artifact = benchmark.pedantic(
        figure5a_uniform, args=(workload_name,), rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    means = _series_means(artifact)

    # All normalized revenues are valid fractions of sum-of-valuations.
    for name, value in means.items():
        if name != "subadditive bound":
            assert 0.0 <= value <= 1.0 + 1e-6, name

    # The LP/capacity algorithms beat the uniform item price by a wide
    # margin (the paper's "huge gap" between refined and uniform pricing).
    assert max(means["cip"], means["lpip"]) > means["uip"]

    # XOS tracks (at least) its best component's ballpark.
    assert means["xos"] >= 0.8 * max(means["lpip"], means["cip"]) - 0.05


@pytest.mark.parametrize("workload_name", ["skewed", "uniform"])
def test_fig5a_zipf_valuations(benchmark, workload_name):
    artifact = benchmark.pedantic(
        figure5a_zipf, args=(workload_name,), rounds=1, iterations=1
    )
    print("\n" + str(artifact))
    save_artifact(artifact)
    means = _series_means(artifact)
    # UBP is competitive under zipf (paper: "UBP comes a close second").
    assert means["ubp"] >= 0.2 * max(
        v for k, v in means.items() if k != "subadditive bound"
    )
