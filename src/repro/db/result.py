"""Canonical query answers.

Conflict-set computation compares ``Q(D)`` with ``Q(D')``; SQL answers without
``ORDER BY`` are *bags*, so equality must be order-insensitive but
multiplicity-sensitive. :class:`QueryResult` stores rows in execution order
(for display and LIMIT determinism) and compares via a canonical sorted form
that tolerates mixed types and NULLs.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.db.schema import Value


def _sort_key(value: Value) -> tuple[int, object]:
    """Total order over heterogeneous values: NULL < numbers < strings."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, float(value))
    if isinstance(value, (int, float)):
        return (1, float(value))
    return (2, value)


def _row_key(row: tuple[Value, ...]) -> tuple[tuple[int, object], ...]:
    return tuple(_sort_key(value) for value in row)


class QueryResult:
    """The answer of a query: named columns plus a bag of rows."""

    __slots__ = ("columns", "rows", "ordered", "_canonical")

    def __init__(
        self,
        columns: list[str],
        rows: Iterable[tuple[Value, ...]],
        ordered: bool = False,
    ):
        self.columns = list(columns)
        self.rows = [tuple(row) for row in rows]
        #: When True (query had ORDER BY) row order is semantically relevant.
        self.ordered = ordered
        self._canonical: tuple[tuple[Value, ...], ...] | None = None

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    def canonical(self) -> tuple[tuple[Value, ...], ...]:
        """Rows in a canonical order (identity for ordered results)."""
        if self._canonical is None:
            if self.ordered:
                self._canonical = tuple(self.rows)
            else:
                self._canonical = tuple(sorted(self.rows, key=_row_key))
        return self._canonical

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QueryResult):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return NotImplemented if result is NotImplemented else not result

    def __hash__(self) -> int:
        return hash(self.canonical())

    def scalar(self) -> Value:
        """The single value of a 1x1 result (aggregates without GROUP BY)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"scalar() requires a 1x1 result, got "
                f"{len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def column(self, name: str) -> list[Value]:
        """All values of a named output column."""
        lowered = [c.lower() for c in self.columns]
        try:
            index = lowered.index(name.lower())
        except ValueError:
            raise KeyError(f"no output column {name!r}") from None
        return [row[index] for row in self.rows]

    def to_text(self, max_rows: int = 20) -> str:
        """Plain-text rendering for examples and debugging."""
        header = " | ".join(self.columns)
        divider = "-" * len(header)
        lines = [header, divider]
        for row in self.rows[:max_rows]:
            lines.append(" | ".join("NULL" if v is None else str(v) for v in row))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryResult(columns={self.columns}, rows={len(self.rows)})"
