"""Linear-programming substrate.

The paper's implementation uses CVXPY; this package provides the small slice
of functionality the pricing algorithms need — building LPs declaratively and
solving them with dual values — on top of ``scipy.optimize.linprog`` (HiGHS).

Public API::

    model = LPModel(name="lpip", sense=Sense.MAXIMIZE)
    w = [model.add_variable(f"w{j}", lower=0.0) for j in range(n)]
    model.set_objective(LinExpr.sum_of(w))
    model.add_constraint(w[0] + w[1] <= 5.0, name="edge-0")
    solution = model.solve()
    solution.value(w[0]); solution.objective; solution.dual("edge-0")
"""

from repro.lp.model import (
    Constraint,
    ConstraintBlock,
    LinExpr,
    LPModel,
    Relation,
    Sense,
    Variable,
)
from repro.lp.solution import LPSolution, SolveStats
from repro.lp.solver import ScipySolver, solve_model

__all__ = [
    "Constraint",
    "ConstraintBlock",
    "LinExpr",
    "LPModel",
    "LPSolution",
    "Relation",
    "ScipySolver",
    "Sense",
    "SolveStats",
    "Variable",
    "solve_model",
]
