"""Datasets and query workloads.

Four workloads mirror the paper's experimental design space (Table 2):

- :mod:`repro.workloads.world` — the ``world`` database (3 tables, 21
  attributes) with the 34-query skewed workload of Table 7, template-expanded
  to exactly 986 queries,
- :mod:`repro.workloads.uniform` — 1000 selection/projection queries of equal
  selectivity over the same database (concentrated, highly-overlapping
  hyperedges),
- :mod:`repro.workloads.tpch` — a TPC-H-shaped star schema with the paper's 7
  query templates expanded to 220 queries,
- :mod:`repro.workloads.ssb` — a Star-Schema-Benchmark-shaped schema with
  templates expanded to 701 queries,

plus :mod:`repro.workloads.synthetic` with the lower-bound constructions of
Lemmas 2-4 and random hypergraph generators.

The real datasets (MySQL ``world``, dbgen TPC-H at SF1, SSB) are replaced by
deterministic synthetic generators with the same schemas and query templates;
see DESIGN.md for why this preserves the hypergraph shapes that drive the
paper's results.
"""

from repro.workloads.base import Workload, build_support, build_workload_instance
from repro.workloads.world import world_database, world_workload
from repro.workloads.uniform import uniform_workload
from repro.workloads.tpch import tpch_database, tpch_workload
from repro.workloads.ssb import ssb_database, ssb_workload
from repro.workloads import synthetic

__all__ = [
    "Workload",
    "build_support",
    "build_workload_instance",
    "ssb_database",
    "ssb_workload",
    "synthetic",
    "tpch_database",
    "tpch_workload",
    "uniform_workload",
    "world_database",
    "world_workload",
]


def get_workload(name: str, scale: float = 1.0) -> Workload:
    """Look up one of the four paper workloads by name."""
    from repro.exceptions import WorkloadError

    factories = {
        "skewed": world_workload,
        "uniform": uniform_workload,
        "tpch": tpch_workload,
        "ssb": ssb_workload,
    }
    try:
        factory = factories[name.lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r} (known: {sorted(factories)})"
        ) from None
    return factory(scale=scale)
