"""Incremental conflict checks (delta evaluation).

Deciding whether ``Q(D') != Q(D)`` for a neighbor ``D'`` that differs from
``D`` in a few cells does not require re-running ``Q``: for common plan
shapes the change is a local function of the modified rows — the same insight
incremental view maintenance uses. This module compiles a query into an
:class:`IncrementalChecker` when its plan matches a supported shape::

    [Sort] Project [Filter(HAVING)] [Aggregate] [Filter] <source>
    <source> ::= TableScan | Filter(TableScan)
               | HashJoin(<side>, <side>)        (two distinct tables)
    <side>   ::= TableScan | Filter(TableScan)

- **Flat plans**: the bag answer changes iff some modified row's
  *contribution* — the multiset of (projected) rows it induces — changes
  between its old and new version.
- **Aggregated plans**: per-group ``(count, value-multiset per aggregate)``
  state is precomputed from the base; the modified rows' old/new
  contributions are applied as edits and the affected groups' output rows
  compared. COUNT/SUM/AVG/MIN/MAX are all exact.
- **Joins**: contributions are found via a hash index on the opposite side,
  so a dimension-row patch costs O(matching fact rows) instead of a full
  join.

A checker returns ``True``/``False``, or ``None`` when it cannot decide for
this particular instance (e.g. a patch touching both sides of a join at
once) — the caller then falls back to full re-evaluation for that instance.
Unsupported plans (3-way joins, DISTINCT, LIMIT, self-joins) yield no checker
at all. Soundness is paramount: a decided answer must equal the truth of
``Q(D') != Q(D)``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.db.aggregates import compute_aggregate
from repro.db.database import Database
from repro.db.expr import Scope
from repro.db.plan import Aggregate, Filter, PlanNode, Project, TableScan
from repro.db.query import Query
from repro.db.schema import Value
from repro.qirana.shapes import QueryShape, resolve_shape
from repro.support.delta import SupportInstance

#: A compiled checker: does this instance's patch change the query answer?
#: ``None`` means "cannot decide incrementally for this instance".
IncrementalChecker = Callable[[SupportInstance], bool | None]


# ---------------------------------------------------------------------------
# Contribution sources
# ---------------------------------------------------------------------------


class _SingleTableSource:
    """Rows entering the project/aggregate stage for a one-table plan."""

    def __init__(self, base: Database, scan: TableScan, predicate: Filter | None):
        self.base = base
        self.table = scan.table.lower()
        self.tables = {self.table}
        self.scope = scan.output_scope(base)
        self.predicate_eval = (
            predicate.predicate.bind(self.scope) if predicate is not None else None
        )

    def base_rows(self) -> Iterable[tuple[Value, ...]]:
        rows = self.base.table(self.table).rows
        if self.predicate_eval is None:
            return rows
        return (row for row in rows if self.predicate_eval(row))

    def contributions(self, table: str, row: tuple[Value, ...]) -> list[tuple[Value, ...]]:
        if self.predicate_eval is not None and not self.predicate_eval(row):
            return []
        return [row]


class _JoinTreeSource:
    """Rows entering the project/aggregate stage for a left-deep join tree.

    The tree is decomposed into the leftmost side plus one ``(join, right
    side)`` level per HashJoin, bottom-up. Precomputed per level:

    - ``right_index`` — right-side rows (filtered) keyed by the join key,
    - ``left_index`` — the materialized sub-join below the level, keyed by
      the level's left join key,

    so a patched row on *any* participating table contributes in
    O(its matches): probe left_index once if the table is a right side, then
    cascade through the right indexes of the levels above. A residual filter
    above the join applies to every produced row.
    """

    def __init__(self, base: Database, shape: QueryShape):
        self.base = base
        self.leftmost_scan = shape.leftmost.scan
        self.leftmost_filter_node = shape.leftmost.predicate

        self.leftmost_table = self.leftmost_scan.table.lower()
        scope = self.leftmost_scan.output_scope(base)
        self.leftmost_filter = (
            self.leftmost_filter_node.predicate.bind(scope)
            if self.leftmost_filter_node
            else None
        )

        #: Per level: dict with bound evaluators, indexes, and table name.
        self.levels: list[dict] = []
        tables = {self.leftmost_table}
        rows = [
            row
            for row in base.table(self.leftmost_table).rows
            if self.leftmost_filter is None or self.leftmost_filter(row)
        ]

        for level in shape.levels:
            join = level.join
            right_scan, right_filter_node = level.right.scan, level.right.predicate
            right_table = right_scan.table.lower()
            tables.add(right_table)

            right_scope = right_scan.output_scope(base)
            right_filter = (
                right_filter_node.predicate.bind(right_scope)
                if right_filter_node
                else None
            )
            left_keys = [key.bind(scope) for key in join.left_keys]
            right_keys = [key.bind(right_scope) for key in join.right_keys]

            right_index = _build_key_index(
                base.table(right_table).rows, right_filter, right_keys
            )
            left_index = _build_key_index(rows, None, left_keys)

            self.levels.append(
                {
                    "table": right_table,
                    "right_filter": right_filter,
                    "left_keys": left_keys,
                    "right_keys": right_keys,
                    "right_index": right_index,
                    "left_index": left_index,
                }
            )
            # Materialize this level's join for the next level's left_index.
            next_rows: list[tuple[Value, ...]] = []
            for left_row in rows:
                key = tuple(evaluate(left_row) for evaluate in left_keys)
                if any(part is None for part in key):
                    continue
                for right_row in right_index.get(key, ()):
                    next_rows.append(left_row + right_row)
            rows = next_rows
            scope = scope.concat(right_scope)

        self.tables = tables
        self._scope = scope
        self.residual_eval = (
            shape.residual.predicate.bind(scope)
            if shape.residual is not None
            else None
        )
        self._base_join_rows = rows

    @property
    def scope(self) -> Scope:
        return self._scope

    def base_rows(self) -> Iterable[tuple[Value, ...]]:
        if self.residual_eval is None:
            return iter(self._base_join_rows)
        return (row for row in self._base_join_rows if self.residual_eval(row))

    def _cascade(
        self, rows: list[tuple[Value, ...]], start_level: int
    ) -> list[tuple[Value, ...]]:
        """Probe ``rows`` through the right indexes of levels >= start_level."""
        for level in self.levels[start_level:]:
            left_keys = level["left_keys"]
            right_index = level["right_index"]
            joined: list[tuple[Value, ...]] = []
            for row in rows:
                key = tuple(evaluate(row) for evaluate in left_keys)
                if any(part is None for part in key):
                    continue
                for match in right_index.get(key, ()):
                    joined.append(row + match)
            rows = joined
            if not rows:
                break
        return rows

    def contributions(self, table: str, row: tuple[Value, ...]) -> list[tuple[Value, ...]]:
        if table == self.leftmost_table:
            if self.leftmost_filter is not None and not self.leftmost_filter(row):
                joined: list[tuple[Value, ...]] = []
            else:
                joined = self._cascade([row], 0)
        else:
            position = next(
                index
                for index, level in enumerate(self.levels)
                if level["table"] == table
            )
            level = self.levels[position]
            if level["right_filter"] is not None and not level["right_filter"](row):
                joined = []
            else:
                key = tuple(evaluate(row) for evaluate in level["right_keys"])
                if any(part is None for part in key):
                    joined = []
                else:
                    matched = level["left_index"].get(key, ())
                    joined = self._cascade(
                        [left_row + row for left_row in matched], position + 1
                    )
        if self.residual_eval is not None:
            joined = [j for j in joined if self.residual_eval(j)]
        return joined


def _build_key_index(rows, predicate, key_evals):
    index: dict[tuple, list[tuple[Value, ...]]] = {}
    for row in rows:
        if predicate is not None and not predicate(row):
            continue
        key = tuple(evaluate(row) for evaluate in key_evals)
        if any(part is None for part in key):
            continue
        index.setdefault(key, []).append(row)
    return index


# ---------------------------------------------------------------------------
# Plan-shape matching (shared matcher + database binding)
# ---------------------------------------------------------------------------


@dataclass
class _Shape:
    """A matched :class:`QueryShape` with its source bound to a database."""

    project: Project
    aggregate: Aggregate | None
    source: _SingleTableSource | _JoinTreeSource
    having: Filter | None = None
    ordered: bool = False


def _match_shape(plan: PlanNode, base: Database) -> _Shape | None:
    """Match ``plan`` via the shared matcher and bind its source to ``base``.

    The structural rules (what counts as a source, HAVING, residual filter,
    left-deep join tree, orderedness) live in :mod:`repro.qirana.shapes`;
    this wrapper only constructs the database-bound contribution source.
    """
    shape = resolve_shape(plan)
    if shape is None:
        return None
    if shape.single is not None:
        source: _SingleTableSource | _JoinTreeSource = _SingleTableSource(
            base, shape.single.scan, shape.single.predicate
        )
    else:
        source = _JoinTreeSource(base, shape)
    return _Shape(
        shape.project, shape.aggregate, source, shape.having, shape.ordered
    )


def build_incremental_checker(
    query: Query, base: Database
) -> IncrementalChecker | None:
    """Compile ``query`` into a per-instance conflict checker.

    Returns ``None`` when the plan shape is unsupported (the caller then
    falls back to full evaluation for every instance).
    """
    shape = _match_shape(query.plan, base)
    if shape is None:
        return None
    # Orderedness can come from the plan (a Sort node) or be declared on the
    # query itself (programmatic plans); either makes the answer a sequence.
    shape.ordered = shape.ordered or query.ordered
    if shape.aggregate is None:
        return _FlatChecker(base, shape).check
    return _GroupedChecker(base, shape).check


# ---------------------------------------------------------------------------
# Checkers
# ---------------------------------------------------------------------------


def _patched_rows(
    base: Database, table: str, instance: SupportInstance
) -> dict[int, tuple[Value, ...]]:
    """Row index -> new row version for this instance's patches on ``table``."""
    relation = base.table(table)
    schema = relation.schema
    patched: dict[int, list[Value]] = {}
    for delta in instance.deltas:
        if delta.table.lower() != table.lower():
            continue
        row = patched.get(delta.row_index)
        if row is None:
            row = list(relation.rows[delta.row_index])
            patched[delta.row_index] = row
        row[schema.column_index(delta.column)] = delta.value
    return {index: tuple(row) for index, row in patched.items()}


class _CheckerBase:
    """Shared patch decomposition: which source table does the patch hit?"""

    def __init__(self, base: Database, shape: _Shape):
        self.base = base
        self.source = shape.source

    def _patch(self, instance: SupportInstance) -> tuple[str, dict] | None:
        """The (table, patched-rows) of this instance within the source.

        ``None`` signals "cannot decide": the instance patches more than one
        source table, so old/new contributions would interact.
        """
        touched = instance.touched_tables & self.source.tables
        if len(touched) != 1:
            if not touched:
                return "", {}
            return None
        table = next(iter(touched))
        return table, _patched_rows(self.base, table, instance)


class _FlatChecker(_CheckerBase):
    """Plans without aggregation: compare projected contribution multisets."""

    def __init__(self, base: Database, shape: _Shape):
        super().__init__(base, shape)
        self.ordered = shape.ordered
        self.is_join = isinstance(shape.source, _JoinTreeSource)
        scope = shape.source.scope
        self.project_evals = [item.expr.bind(scope) for item in shape.project.items]

    def _projected(self, rows: list[tuple[Value, ...]]) -> Counter:
        return Counter(
            tuple(evaluate(row) for evaluate in self.project_evals) for row in rows
        )

    def check(self, instance: SupportInstance) -> bool | None:
        patch = self._patch(instance)
        if patch is None:
            return None
        table, rows = patch
        if not rows:
            return False
        relation = self.base.table(table)
        # Compare the combined contribution multiset of ALL patched rows:
        # per-row comparison would flag two rows swapping values even though
        # the answer bag is unchanged.
        old: Counter = Counter()
        new: Counter = Counter()
        any_row_changed = False
        for row_index, new_row in rows.items():
            row_old = self._projected(self.source.contributions(table, relation.rows[row_index]))
            row_new = self._projected(self.source.contributions(table, new_row))
            any_row_changed = any_row_changed or row_old != row_new
            old.update(row_old)
            new.update(row_new)
        if old != new:
            # A bag change conflicts regardless of output order.
            return True
        if self.ordered and (any_row_changed or self.is_join):
            # ORDER BY answers are sequences: a bag-preserving change can
            # still reorder a tie group. Single-table single-row patches
            # never reach here (one row has one contribution at a fixed
            # position, so an unchanged bag means an unchanged answer), but
            # multi-row swaps can — and on a *join*, even a patch whose
            # projected contributions look unchanged can re-attach them to
            # different left partners at different output positions (the
            # projected bags cannot tell value-identical partners apart),
            # so any join-side patch is undecidable here.
            return None
        return False


class _GroupedChecker(_CheckerBase):
    """Plans with GROUP BY/aggregates: per-group state + edits.

    Base state per group: row count and, per aggregate, a Counter of input
    values (a multiset — supports exact COUNT/SUM/AVG/MIN/MAX under removal).
    """

    def __init__(self, base: Database, shape: _Shape):
        super().__init__(base, shape)
        self.ordered = shape.ordered
        self.is_join = isinstance(shape.source, _JoinTreeSource)
        aggregate = shape.aggregate
        scope = self.source.scope
        self.group_evals = [item.expr.bind(scope) for item in aggregate.group_items]
        self.has_groups = bool(aggregate.group_items)
        self.specs = aggregate.aggregates
        self.arg_evals = [
            spec.arg.bind(scope) if spec.arg is not None else None
            for spec in self.specs
        ]
        # The comparison always uses the *projected* row of each visible
        # group: HAVING may force extra aggregates the SELECT list never
        # shows (a hidden-aggregate-only change is not an answer change),
        # and the projection may omit the group keys — in which case two
        # groups can swap visible rows while the answer bag is unchanged,
        # so per-group comparison alone would report false conflicts.
        aggregate_scope = aggregate.output_scope(base)
        self.having_eval = (
            shape.having.predicate.bind(aggregate_scope)
            if shape.having is not None
            else None
        )
        self.project_evals = [
            item.expr.bind(aggregate_scope) for item in shape.project.items
        ]
        self._build_state()

    def _visible(self, output: tuple | None) -> tuple | None:
        """The projected row of a group, or None when the group is hidden."""
        if output is None:
            return None
        if self.having_eval is not None and not self.having_eval(output):
            return None
        return tuple(evaluate(output) for evaluate in self.project_evals)

    def _build_state(self) -> None:
        self.counts: dict[tuple, int] = {}
        self.values: dict[tuple, list[Counter]] = {}
        for row in self.source.base_rows():
            key = tuple(evaluate(row) for evaluate in self.group_evals)
            self.counts[key] = self.counts.get(key, 0) + 1
            counters = self.values.get(key)
            if counters is None:
                counters = [Counter() for _ in self.specs]
                self.values[key] = counters
            for counter, evaluate in zip(counters, self.arg_evals):
                if evaluate is not None:
                    counter[evaluate(row)] += 1

    def _group_output(
        self, key: tuple, count: int, counters: list[Counter]
    ) -> tuple | None:
        """Output row for a group, or None when the group is absent."""
        if count <= 0:
            if self.has_groups:
                return None
            counters = [Counter() for _ in self.specs]
        outputs: list[Value] = []
        for spec, counter in zip(self.specs, counters):
            if spec.arg is None:
                outputs.append(max(count, 0))
                continue
            expanded = (
                value for value, times in counter.items() for _ in range(times)
            )
            outputs.append(
                compute_aggregate(spec.func, expanded, distinct=spec.distinct)
            )
        return key + tuple(outputs)

    def check(self, instance: SupportInstance) -> bool | None:
        patch = self._patch(instance)
        if patch is None:
            return None
        table, rows = patch
        if not rows:
            return False
        relation = self.base.table(table)

        edits: dict[tuple, tuple[int, list[Counter]]] = {}

        def apply(joined_rows: list[tuple[Value, ...]], sign: int) -> list[tuple]:
            keys: list[tuple] = []
            for row in joined_rows:
                key = tuple(evaluate(row) for evaluate in self.group_evals)
                keys.append(key)
                count_delta, counters = edits.get(key, (0, None))
                if counters is None:
                    counters = [Counter() for _ in self.specs]
                for counter, evaluate in zip(counters, self.arg_evals):
                    if evaluate is not None:
                        counter[evaluate(row)] += sign
                edits[key] = (count_delta + sign, counters)
            return keys

        key_order_changed = False
        for row_index, new_row in rows.items():
            old_keys = apply(self.source.contributions(table, relation.rows[row_index]), -1)
            new_keys = apply(self.source.contributions(table, new_row), +1)
            key_order_changed = key_order_changed or old_keys != new_keys

        # Compare the affected groups' visible rows as *multisets*: when the
        # projection omits the group keys, two groups can exchange visible
        # rows (e.g. counts swapping between groups) leaving the answer bag
        # unchanged — a per-group comparison would flag a false conflict.
        # Unaffected groups contribute identically to both sides and cancel.
        old_bag: Counter = Counter()
        new_bag: Counter = Counter()
        any_visible_change = False
        for key, (count_delta, counter_deltas) in edits.items():
            base_count = self.counts.get(key, 0)
            base_counters = self.values.get(key) or [Counter() for _ in self.specs]
            old_output = self._group_output(key, base_count, base_counters)
            # Merge counter deltas by hand: Counter.__add__ silently drops
            # non-positive entries mid-merge, which would corrupt multisets
            # containing legitimate removals.
            new_counters = []
            for base_counter, delta_counter in zip(base_counters, counter_deltas):
                merged = Counter(base_counter)
                for value, times in delta_counter.items():
                    merged[value] += times
                    if merged[value] <= 0:
                        del merged[value]
                new_counters.append(merged)
            new_output = self._group_output(key, base_count + count_delta, new_counters)
            old_visible = self._visible(old_output)
            new_visible = self._visible(new_output)
            if old_visible != new_visible:
                any_visible_change = True
            if old_visible is not None:
                old_bag[old_visible] += 1
            if new_visible is not None:
                new_bag[new_visible] += 1
        if old_bag != new_bag:
            # A bag change conflicts regardless of output order.
            return True
        if self.ordered and self.has_groups and (
            key_order_changed or any_visible_change or self.is_join
        ):
            # ORDER BY ties among output rows are broken by group *insertion*
            # order (first occurrence in the source output). The visible bag
            # is unchanged, but a patch that moves contributions (or visible
            # rows) between groups can reorder a tie block — and on a join,
            # even key-sequence-identical contributions can re-attach to
            # different partners, moving a group's first occurrence.
            # Undecidable here.
            return None
        return False
