"""Shared benchmark configuration.

Each benchmark reproduces one table/figure of the paper at laptop scale and
prints its textual rendering (run with ``-s`` to see them, or check the
``data`` captured in the benchmark's ``extra_info``). ``benchmark.pedantic``
with a single round is used throughout: the experiments are deterministic
given their seeds, and the interesting measurement is the one-shot wall time.

Two levers keep the default (tier-1) run fast:

- the heaviest parametrizations carry ``@pytest.mark.slow`` and only run
  with ``--runslow`` (see the repository-level conftest),
- the figure defaults are shrunk to CI scale below; set ``REPRO_BENCH_FULL=1``
  to benchmark at the original laptop-scale defaults.

The tracked CSVs under ``artifacts/`` are laptop-scale (paper-shaped) data,
written only under ``REPRO_BENCH_FULL=1``; default CI-scale runs write to
the untracked ``artifacts/ci/`` so they never clobber the reference data.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: Where figure/table data lands as CSV (machine-readable twin of the text).
ARTIFACT_DIR = Path(__file__).resolve().parent / "artifacts"

#: CI-scale figure defaults: (data scale, support size) per workload. The
#: qualitative shapes the benchmarks assert (edge-size distributions, degree
#: orderings, algorithm runtime orderings) are preserved at this scale.
CI_SCALES = {
    "skewed": (0.15, 1200),
    "uniform": (0.2, 600),
    "tpch": (0.6, 700),
    "ssb": (0.35, 600),
}


@pytest.fixture(scope="session", autouse=True)
def _ci_scale_figure_defaults():
    """Shrink the figure defaults while benchmark tests run.

    A fixture (not ``pytest_configure``) so the override activates only when
    a benchmark actually executes — merely collecting this directory leaves
    ``figures.DEFAULT_SCALES`` untouched — and is restored on teardown.
    """
    if os.environ.get("REPRO_BENCH_FULL"):
        yield
        return
    from repro.experiments import figures

    saved = dict(figures.DEFAULT_SCALES)
    figures.DEFAULT_SCALES.update(CI_SCALES)
    yield
    figures.DEFAULT_SCALES.clear()
    figures.DEFAULT_SCALES.update(saved)


def run_once(benchmark, function, *args, **kwargs):
    """Benchmark ``function`` with exactly one warm round."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def bench_once():
    return run_once


def _artifact_target() -> Path:
    """Where this run's artifacts land.

    CI-scale runs use the untracked ``artifacts/ci/`` so the committed
    laptop-scale reference data stays pristine.
    """
    target = (
        ARTIFACT_DIR if os.environ.get("REPRO_BENCH_FULL") else ARTIFACT_DIR / "ci"
    )
    target.mkdir(parents=True, exist_ok=True)
    return target


def save_artifact(artifact) -> None:
    """Export a FigureData's data as CSV under ``benchmarks/artifacts/``.

    Silently skips artifacts whose data shape has no exporter — every bench
    can call this unconditionally.
    """
    from repro.experiments.export import (
        export_histogram_csv,
        export_runtimes_csv,
        export_series_csv,
    )

    base = _artifact_target() / artifact.figure_id
    if "series" in artifact.data:
        export_series_csv(artifact, base.with_suffix(".csv"))
    if "counts" in artifact.data and "bin_edges" in artifact.data:
        export_histogram_csv(artifact, base.with_suffix(".hist.csv"))
    if "runtimes" in artifact.data:
        export_runtimes_csv(artifact, base.with_suffix(".runtimes.csv"))


def save_bench_json(artifact, filename: str) -> Path:
    """Write a benchmark artifact's ``BENCH_*.json`` summary.

    These files (wall times, speedup ratios, n/m/k/B stats, backend/strategy
    counters) are uploaded as CI workflow artifacts so the perf trajectory
    is tracked across PRs instead of living only in pytest asserts.
    """
    from repro.experiments.export import export_bench_json

    return export_bench_json(artifact, _artifact_target() / filename)
